"""Chaos suite for online migration: kill either worker or the
coordinator at every protocol step; placement must stay sound.

The invariant under test (docs/sharding.md, "Elastic shards"): at
*every* crash point the sharding manifest points at a shard that
actually holds the document — the copy lands on the destination
before the flip, and the source copy is removed only after — and
:meth:`~repro.shard.ShardCluster.reconcile` restores a single-copy
layout whose query results are bit-identical to the pre-crash corpus.

Coordinator death is simulated with :class:`~repro.storage.faults`
injection at the coordinator-side ``migrate.*`` crashpoints
(:class:`InjectedCrash` is a ``BaseException``, exactly as
un-catchable as a real process death mid-protocol); worker death uses
the same crashpoints as synchronization hooks to hard-kill the real
worker process at the worst moment.
"""

import os
import threading
import time

import pytest

from repro.shard import DocumentMovedError, ShardCluster, ShardError, \
    ShardDownError
from repro.shard.manifest import ShardingManifest
from repro.storage import faults

from ..concurrent.harness import fixture_xml
from .conftest import make_cluster

PROBES = ("//p[.//age = 7]", '//p[.//name = "n3"]', "//p[.//age >= 12]")

#: Every coordinator-side step of the migration protocol, in order.
CRASHPOINTS = (
    "migrate.after_sync",
    "migrate.before_import",
    "migrate.after_import",
    "migrate.before_flip",
    "migrate.after_flip",
)


def _snapshot(cluster):
    return [cluster.query_pres(text) for text in PROBES]


def _holdings(cluster):
    """shard → set of documents the worker actually holds."""
    return {
        shard: set(cluster._routed(shard, lambda c: c.hello())["documents"])
        for shard in sorted(cluster._workers)
    }


def _assert_owner_holds(cluster):
    held = _holdings(cluster)
    for name, owner in cluster.manifest.placement.items():
        assert name in held.get(owner, set()), (
            f"manifest points {name!r} at shard {owner}, which does not "
            f"hold it (holdings: {held})"
        )


class TestCoordinatorDeath:
    @pytest.mark.parametrize("point", CRASHPOINTS)
    def test_crash_at_every_point_reconciles(self, tmp_path, point):
        cluster = make_cluster(tmp_path, shards=2)
        try:
            cluster.load("mover", fixture_xml(), shard=0)
            cluster.load("anchor", fixture_xml(24), shard=1)
            before = _snapshot(cluster)

            with faults.injected(
                    faults.FaultInjector(faults.CrashPlan(point))):
                with pytest.raises(faults.InjectedCrash):
                    cluster.migrate_document("mover", 1, method="snapshot")

            # Invariant before any repair: whatever the manifest says,
            # that shard holds the document.
            _assert_owner_holds(cluster)
            # The update gate must not stay wedged by the dead run.
            assert not cluster._paused_shards

            # A restarted coordinator reconciles stray copies away...
            report = cluster.reconcile()
            held = _holdings(cluster)
            assert sum("mover" in docs for docs in held.values()) == 1
            _assert_owner_holds(cluster)
            if point in ("migrate.after_import", "migrate.before_flip"):
                # Copy landed on dst but the flip never happened: the
                # redundant destination copy is swept.
                assert (1, "mover") in report["unloaded"]

            # ...and the corpus answers exactly as before the crash.
            assert _snapshot(cluster) == before

            # Updates and a retried migration work post-recovery.
            row = cluster.query("//age/text()", document="mover")[0]
            cluster.update_text("mover", row[2], "4321")
            assert cluster.query_pres("//p[.//age = 4321]")
            retried = cluster.migrate_document("mover", 1, method="direct")
            assert retried["moved"] or cluster.manifest.placement["mover"] == 1
            _assert_owner_holds(cluster)
        finally:
            cluster.stop()

    def test_fresh_coordinator_start_reconciles(self, tmp_path):
        """A crash after the import (doc on both shards, manifest on
        src) repaired by a *new* coordinator's start(), not by the
        surviving object."""
        cluster = make_cluster(tmp_path, shards=2)
        root = cluster.root
        try:
            cluster.load("mover", fixture_xml(), shard=0)
            before = _snapshot(cluster)
            with faults.injected(faults.FaultInjector(
                    faults.CrashPlan("migrate.after_import"))):
                with pytest.raises(faults.InjectedCrash):
                    cluster.migrate_document("mover", 1, method="direct")
        finally:
            cluster.stop()

        reopened = ShardCluster(root, transport="thread",
                                checkpoint_every=0).start()
        try:
            _assert_owner_holds(reopened)
            held = _holdings(reopened)
            assert sum("mover" in docs for docs in held.values()) == 1
            assert _snapshot(reopened) == before
        finally:
            reopened.stop()


class _KillWorkerAt(faults.FaultInjector):
    """Hard-kill a worker when the coordinator crosses a migrate
    crashpoint — the worker dies at the worst protocol step, while
    the coordinator itself keeps running into the failure."""

    def __init__(self, cluster, point: str, shard: int):
        super().__init__()
        self._cluster = cluster
        self._point = point
        self._shard = shard

    def on_crashpoint(self, point: str) -> None:
        super().on_crashpoint(point)
        if point == self._point:
            self._cluster.kill_shard(self._shard)


@pytest.fixture
def process_cluster(tmp_path):
    cluster = ShardCluster(
        str(tmp_path / "cluster"), shards=2, transport="process",
        checkpoint_every=0,
    ).start()
    yield cluster
    cluster.stop()


class TestWorkerDeath:
    def test_kill_source_mid_copy(self, tmp_path, process_cluster):
        cluster = process_cluster
        cluster.load("mover", fixture_xml(), shard=0)
        cluster.load("anchor", fixture_xml(24), shard=1)
        row = cluster.query("//age/text()", document="mover")[0]
        cluster.update_text("mover", row[2], "1111")  # acked pre-kill
        before = cluster.query_pres("//p[.//age >= 0]", document="mover")

        with faults.injected(
                _KillWorkerAt(cluster, "migrate.after_sync", 0)):
            with pytest.raises(ShardDownError):
                cluster.migrate_document("mover", 1, method="snapshot")

        # Migration aborted: the manifest still points at the (dead)
        # source — the snapshot that may be missing an acked tail was
        # thrown away, never promoted.
        assert cluster.manifest.placement["mover"] == 0
        assert not cluster._paused_shards

        cluster.restart_shard(0)
        cluster.reconcile()
        _assert_owner_holds(cluster)
        # The acked update survived in the source WAL.
        assert cluster.query_pres("//p[.//age = 1111]")
        assert cluster.query_pres("//p[.//age >= 0]",
                                  document="mover") == before

        report = cluster.migrate_document("mover", 1, method="snapshot")
        assert report["moved"]
        _assert_owner_holds(cluster)
        assert cluster.query_pres("//p[.//age >= 0]",
                                  document="mover") == before

    def test_kill_destination_mid_import(self, tmp_path, process_cluster):
        cluster = process_cluster
        cluster.load("mover", fixture_xml(), shard=0)
        before = _snapshot(cluster)

        with faults.injected(
                _KillWorkerAt(cluster, "migrate.before_import", 1)):
            with pytest.raises(ShardDownError):
                cluster.migrate_document("mover", 1, method="snapshot")

        # The flip never happened; the source still owns and serves.
        assert cluster.manifest.placement["mover"] == 0
        assert not cluster._paused_shards
        assert _snapshot(cluster) == before

        cluster.restart_shard(1)
        cluster.reconcile()
        _assert_owner_holds(cluster)
        report = cluster.migrate_document("mover", 1, method="snapshot")
        assert report["moved"]
        assert _snapshot(cluster) == before


class TestStaleManifest:
    def test_restart_shard_rereads_sharding_manifest(self, tmp_path):
        """Regression: restart_shard used to keep routing from the
        in-memory placement it was spawned under.  After another
        coordinator (here: forged by rewinding the in-memory copy)
        migrates a document, the restart must re-read SHARDING.json —
        pre-fix this query raises ``doc_moved`` forever."""
        cluster = make_cluster(tmp_path, shards=2)
        try:
            cluster.load("a", fixture_xml(), shard=0)
            cluster.load("b", fixture_xml(24), shard=1)
            before = _snapshot(cluster)
            assert cluster.migrate_document("b", 0,
                                            method="direct")["moved"]
            # Forge a coordinator that never observed the flip: disk
            # says b→0, this object believes b→1.
            cluster.manifest.placement["b"] = 1

            cluster.restart_shard(1)

            disk = ShardingManifest.load(cluster.root)
            assert cluster.manifest.placement == disk.placement
            assert cluster.manifest.version == disk.version
            assert _snapshot(cluster) == before
        finally:
            cluster.stop()


SOAK_SECONDS = float(os.environ.get("REPRO_STRESS_SECONDS", "0"))


@pytest.mark.skipif(SOAK_SECONDS <= 0,
                    reason="set REPRO_STRESS_SECONDS to run the "
                           "migration soak")
def test_migration_soak(tmp_path):
    """REPRO_STRESS_SECONDS of migrations racing readers and a writer;
    every read bit-identical to the frozen corpus, every update either
    acked-and-visible or cleanly rejected as ``doc_moved``."""
    cluster = make_cluster(tmp_path, shards=3)
    failures: list[str] = []
    stop = threading.Event()
    try:
        cluster.load("mover", fixture_xml(), shard=0)
        cluster.load("anchor", fixture_xml(24), shard=1)
        structure = cluster.query_pres("//p")

        def reader():
            while not stop.is_set():
                try:
                    if cluster.query_pres("//p") != structure:
                        failures.append("reader diverged")
                        return
                except ShardError as exc:
                    failures.append(f"reader failed: {exc}")
                    return

        def writer():
            i = 0
            while not stop.is_set():
                try:
                    row = cluster.query("//age/text()",
                                        document="mover")[0]
                    cluster.update_text("mover", row[2], str(i % 50))
                except DocumentMovedError:
                    continue  # transient, by contract
                except ShardError as exc:
                    failures.append(f"writer failed: {exc}")
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(2)]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + SOAK_SECONDS
        where = 0
        moves = 0
        while time.monotonic() < deadline and not failures:
            target = (where + 1) % 3
            cluster.migrate_document("mover", target, method="snapshot")
            where = target
            moves += 1
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures
        assert moves > 0
        _assert_owner_holds(cluster)
        assert cluster.query_pres("//p") == structure
    finally:
        stop.set()
        cluster.stop()
