"""Coordinator behavior over in-process (thread-transport) workers."""

import pytest

from repro.database import Database
from repro.shard import ShardCluster, ShardError
from repro.shard.manifest import ShardingManifest

from ..concurrent.harness import classified_text_nids, fixture_xml
from .conftest import make_cluster


def _local_nids(xml: str, shard: int = 0):
    """nids the fixture doc gets when loaded first into shard ``shard``
    (shredding is deterministic and each shard mints from its own
    range, so these are the shard-local nids)."""
    import tempfile

    from repro.shard.engine import NID_RANGE_BITS

    base = shard << NID_RANGE_BITS
    with tempfile.TemporaryDirectory() as tmp:
        with Database(tmp + "/probe") as db:
            ages, names = classified_text_nids(db.load("probe", xml))
    return [n + base for n in ages], [n + base for n in names]


class TestPlacementAndRouting:
    def test_load_places_and_saves_manifest(self, tmp_path, cluster2):
        cluster2.load("people", fixture_xml(), shard=1)
        reloaded = ShardingManifest.load(cluster2.root)
        assert reloaded.placement == {"people": 1}
        assert reloaded.doc_order == ["people"]

    def test_update_routed_to_owner(self, cluster2):
        xml = fixture_xml()
        ages, _names = _local_nids(xml, shard=1)
        cluster2.load("people", xml, shard=1)
        cluster2.update_text("people", ages[0], "1234")
        rows = cluster2.query("//p[.//age = 1234]")
        assert len(rows) == 1
        assert rows[0][0] == "people"

    def test_update_unknown_document_rejected(self, cluster2):
        with pytest.raises(ShardError, match="unknown document"):
            cluster2.update_text("nope", 1, "x")

    def test_unload_releases_placement(self, cluster2):
        cluster2.load("people", fixture_xml(), shard=0)
        cluster2.unload("people")
        assert cluster2.query("//p") == []
        # The name may now be re-placed anywhere.
        cluster2.load("people", fixture_xml(), shard=1)
        assert cluster2.query("//p")

    def test_reopen_existing_cluster(self, tmp_path):
        cluster = make_cluster(tmp_path, shards=2)
        try:
            cluster.load("people", fixture_xml(), shard=1)
            before = cluster.query_pres("//p[.//age = 7]")
        finally:
            cluster.stop()
        reopened = ShardCluster(str(tmp_path / "cluster"),
                                transport="thread").start()
        try:
            assert reopened.manifest.shards == 2
            assert reopened.query_pres("//p[.//age = 7]") == before
        finally:
            reopened.stop()

    def test_conflicting_shard_count_rejected(self, tmp_path):
        cluster = make_cluster(tmp_path, shards=2)
        cluster.stop()
        with pytest.raises(ShardError, match="cannot reopen"):
            ShardCluster(str(tmp_path / "cluster"), shards=3)


class TestScatterGather:
    def test_global_order_matches_single_engine(self, tmp_path, cluster2):
        # Interleave placements so the merge actually has to interleave.
        docs = [("d0", 0), ("d1", 1), ("d2", 0), ("d3", 1)]
        with Database(str(tmp_path / "oracle")) as oracle:
            for name, shard in docs:
                xml = fixture_xml(persons=6)
                cluster2.load(name, xml, shard=shard)
                oracle.load(name, xml)
            expected = [(d, p) for d, p, _n in oracle.query_rows("//p")]
        assert cluster2.query_pres("//p") == expected

    def test_document_scoped_query_hits_one_shard(self, cluster2):
        cluster2.load("a", fixture_xml(persons=3), shard=0)
        cluster2.load("b", fixture_xml(persons=3), shard=1)
        rows = cluster2.query("//p", document="b")
        assert rows and all(doc == "b" for doc, _p, _n in rows)

    def test_empty_cluster_queries_empty(self, cluster2):
        assert cluster2.query("//p") == []

    def test_explain_wraps_shard_plans(self, cluster2):
        cluster2.load("a", fixture_xml(), shard=0)
        cluster2.load("b", fixture_xml(), shard=1)
        explained = cluster2.explain("//p[.//age = 7]")
        assert "ScatterGather[2 shard(s)]" in explained["summary"]
        assert "RemotePlan[shard=0" in explained["summary"]
        assert explained["tree"]["op"] == "ScatterGather"
        assert set(explained["shards"]) == {0, 1}


class TestClusterViews:
    def test_view_pins_epoch_vector(self, cluster2):
        cluster2.load("people", fixture_xml(), shard=0)
        with cluster2.read_view() as view:
            assert set(view.epochs) == {0, 1}

    def test_view_isolates_from_later_updates(self, cluster2):
        xml = fixture_xml()
        ages, _ = _local_nids(xml)
        cluster2.load("people", xml, shard=0)
        before = cluster2.query_pres("//p[.//age = 7]")
        assert before
        with cluster2.read_view() as view:
            cluster2.update_text("people", ages[7], "5555")
            # Unpinned read sees the update...
            assert cluster2.query_pres("//p[.//age = 5555]")
            # ...the pinned cross-shard view does not.
            assert cluster2.query_pres("//p[.//age = 7]",
                                       view=view) == before
            assert cluster2.query_pres("//p[.//age = 5555]",
                                       view=view) == []


    def test_pin_vector_failure_releases_partial_pins(self, cluster2):
        """Regression: a mid-loop open_view failure must not leak the
        pins already opened on earlier shards — a leaked session pin
        wedges that shard's overlay pruning for the process lifetime."""
        cluster2.load("people", fixture_xml(), shard=0)
        controller = cluster2._workers[0].engine.manager.concurrency
        assert not controller._pins
        # Kill shard 1 after shard 0 is pinned: the pin loop walks
        # shards in order, so shard 0's view opens, then shard 1 raises.
        cluster2._workers[1].stop()
        with pytest.raises(ShardError):
            with cluster2.read_view():
                pass  # pragma: no cover - pinning must fail
        assert not controller._pins, "shard 0 session pin leaked"

    def test_pin_vector_instability_releases_pins(self, cluster2):
        """The retry path must also drop each attempt's pins (it did
        pre-refactor; keep it honest)."""
        xml = fixture_xml()
        cluster2.load("people", xml, shard=0)
        controller = cluster2._workers[0].engine.manager.concurrency
        ages, _names = _local_nids(xml)
        real_routed = cluster2._routed

        def racing_routed(shard, fn):
            result = real_routed(shard, fn)
            if isinstance(result, dict) and "view" in result:
                # An update lands right after every pin: no attempt can
                # ever verify a stable vector.
                real_routed(0, lambda c: c.update_text(ages[0], "99"))
            return result

        cluster2._routed = racing_routed
        try:
            with pytest.raises(ShardError, match="no consistent"):
                with cluster2.read_view(attempts=2):
                    pass  # pragma: no cover - pinning must fail
        finally:
            cluster2._routed = real_routed
        assert not controller._pins


class TestMaintenance:
    def test_checkpoint_all_shards(self, cluster2):
        cluster2.load("people", fixture_xml(), shard=0)
        epochs = cluster2.checkpoint()
        assert set(epochs) == {0, 1}
        assert all(isinstance(e, int) for e in epochs.values())

    def test_metrics_aggregate_sums_counters(self, cluster2):
        cluster2.load("a", fixture_xml(), shard=0)
        cluster2.load("b", fixture_xml(), shard=1)
        cluster2.query("//p[.//age = 7]")
        snapshot = cluster2.metrics()
        assert set(snapshot["shards"]) == {0, 1}
        total = sum(
            shard["counters"].get("query.executed", 0)
            for shard in snapshot["shards"].values()
        )
        assert snapshot["aggregate"]["counters"]["query.executed"] == total
        assert total >= 2

    def test_addresses_lists_every_worker(self, cluster2):
        addresses = cluster2.addresses()
        assert set(addresses) == {0, 1}
        assert all(port > 0 for _host, port in addresses.values())
