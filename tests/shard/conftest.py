"""Shared fixtures for the shard-per-core suite.

Thread-transport clusters by default: every worker is an in-process
:class:`~repro.server.ServerThread` over a real
:class:`~repro.shard.engine.ShardEngine`, which exercises the whole
wire/coordinator/merge path without process-spawn latency.  The fault
tests (``tests/concurrent/test_shard_faults.py``) use the process
transport — a kill has to take down a real OS process.
"""

import pytest

from repro.shard import ShardCluster

from ..concurrent.harness import fixture_xml

__all__ = ["fixture_xml", "make_cluster"]


def make_cluster(tmp_path, shards: int, **kwargs) -> ShardCluster:
    kwargs.setdefault("transport", "thread")
    kwargs.setdefault("checkpoint_every", 0)
    return ShardCluster(str(tmp_path / "cluster"), shards=shards,
                        **kwargs).start()


@pytest.fixture
def cluster2(tmp_path):
    cluster = make_cluster(tmp_path, shards=2)
    yield cluster
    cluster.stop()
