"""Sharding manifest: placement, ordering, persistence."""

import json
import os

import pytest

from repro.shard.manifest import SHARDING_FILE, ShardingManifest


class TestPlacement:
    def test_hash_placement_is_deterministic(self):
        a = ShardingManifest(4)
        b = ShardingManifest(4)
        for name in ("XMark1", "DBLP", "PSD", "Wiki"):
            assert a.shard_of(name) == b.shard_of(name)
            assert 0 <= a.shard_of(name) < 4

    def test_explicit_placement_wins_over_hash(self):
        manifest = ShardingManifest(4)
        hashed = manifest.shard_of("doc")
        explicit = (hashed + 1) % 4
        assert manifest.place("doc", explicit) == explicit
        assert manifest.shard_of("doc") == explicit

    def test_place_records_global_load_order(self):
        manifest = ShardingManifest(2)
        for name in ("c", "a", "b"):
            manifest.place(name)
        assert manifest.doc_order == ["c", "a", "b"]
        assert manifest.global_index("a") == 1

    def test_documents_on_preserves_order(self):
        manifest = ShardingManifest(2)
        manifest.place("one", 0)
        manifest.place("two", 1)
        manifest.place("three", 0)
        assert manifest.documents_on(0) == ["one", "three"]
        assert manifest.documents_on(1) == ["two"]

    def test_replace_on_other_shard_rejected(self):
        manifest = ShardingManifest(2)
        manifest.place("doc", 0)
        with pytest.raises(ValueError, match="already placed"):
            manifest.place("doc", 1)
        # Re-placing on the same shard is idempotent.
        assert manifest.place("doc", 0) == 0

    def test_out_of_range_shard_rejected(self):
        manifest = ShardingManifest(2)
        with pytest.raises(ValueError, match="out of range"):
            manifest.place("doc", 2)

    def test_unplace(self):
        manifest = ShardingManifest(2)
        manifest.place("doc", 1)
        assert manifest.unplace("doc") == 1
        assert "doc" not in manifest.placement
        assert manifest.doc_order == []


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = ShardingManifest(
            3, config={"string": True, "typed": ["double"]})
        manifest.place("b", 2)
        manifest.place("a")
        manifest.save(str(tmp_path))
        loaded = ShardingManifest.load(str(tmp_path))
        assert loaded.shards == 3
        assert loaded.config == {"string": True, "typed": ["double"]}
        assert loaded.placement == manifest.placement
        assert loaded.doc_order == ["b", "a"]

    def test_exists(self, tmp_path):
        assert not ShardingManifest.exists(str(tmp_path))
        ShardingManifest(1).save(str(tmp_path))
        assert ShardingManifest.exists(str(tmp_path))

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        ShardingManifest(2).save(str(tmp_path))
        assert os.listdir(str(tmp_path)) == [SHARDING_FILE]

    def test_unknown_format_rejected(self, tmp_path):
        ShardingManifest(1).save(str(tmp_path))
        path = tmp_path / SHARDING_FILE
        data = json.loads(path.read_text())
        data["format"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="format"):
            ShardingManifest.load(str(tmp_path))

    def test_inconsistent_doc_order_rejected(self, tmp_path):
        manifest = ShardingManifest(1)
        manifest.place("doc")
        manifest.save(str(tmp_path))
        path = tmp_path / SHARDING_FILE
        data = json.loads(path.read_text())
        data["doc_order"] = []
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="doc_order"):
            ShardingManifest.load(str(tmp_path))

    def test_shard_dir_naming(self, tmp_path):
        manifest = ShardingManifest(2)
        assert manifest.shard_dir(str(tmp_path), 1).endswith("shard-001")
