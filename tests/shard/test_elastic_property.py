"""Differential property suite for elastic clusters.

Hypothesis drives random interleavings of text updates, scatter
queries, online document migrations, and rebalances over a 3-shard
thread-transport cluster.  After every query op — and over a fixed
probe set at the end — the cluster's ``(document, pre)`` rows must be
bit-identical to the naive full-scan oracle
(:func:`repro.query.evaluate_naive`) run over a mirror corpus that saw
exactly the same updates and *none* of the placement churn: placement
is supposed to be invisible to results.

The second property pins a :meth:`read_view` and migrates a document
*while the view is open*: the pinned queries must keep answering from
the pre-flip snapshot (the source copy is retained until the last
view closes), while un-pinned queries follow the moved document.
"""

import shutil
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.query import evaluate_naive, parse_query
from repro.shard import ShardCluster
from repro.shard.engine import NID_RANGE_BITS

from ..concurrent.harness import AGES, NAMES, classified_text_nids, \
    fixture_xml

SHARDS = 3
#: (name, persons, home shard) — one doc per shard so every engine
#: shreds its document first and nid bases stay predictable.
DOCS = [("d0", 18, 0), ("d1", 24, 1), ("d2", 30, 2)]

PROBES = (
    "//p",
    "//p[.//age = 7]",
    '//p[.//name = "n3"]',
    "//p[.//age >= 12]",
)


def _query_text(kind: int, value: int) -> str:
    if kind == 0:
        return f"//p[.//age = {value % AGES}]"
    if kind == 1:
        return f'//p[.//name = "n{value % NAMES}"]'
    if kind == 2:
        return f"//p[.//age >= {value % AGES}]"
    return "//p"


_update = st.tuples(st.just("update"), st.integers(0, len(DOCS) - 1),
                    st.booleans(), st.integers(0, 99))
_query = st.tuples(st.just("query"), st.integers(0, 3),
                   st.integers(0, 99))
_migrate = st.tuples(st.just("migrate"), st.integers(0, len(DOCS) - 1),
                     st.integers(0, SHARDS - 1),
                     st.sampled_from(["direct", "snapshot"]))
_rebalance = st.tuples(st.just("rebalance"),
                       st.sampled_from(["bytes", "nodes"]))

OPS = st.lists(st.one_of(_update, _query, _migrate, _rebalance),
               min_size=4, max_size=20)


class _Rig:
    """Cluster plus its single-engine oracle mirror."""

    def __init__(self):
        self.root = tempfile.mkdtemp(prefix="elastic-prop-")
        self.cluster = ShardCluster(
            self.root + "/cluster", shards=SHARDS, transport="thread",
            checkpoint_every=0,
        ).start()
        self.oracle = Database(self.root + "/oracle")
        self.order = [name for name, _persons, _shard in DOCS]
        #: Nids differ between the two sides: the oracle shreds all
        #: three docs into one engine (sequential numbering) while
        #: each shard shreds its one doc first, minting from the
        #: shard's own nid base — stable even after the doc migrates.
        #: Probe a throwaway engine per doc for the shard-local nids.
        self.oracle_slots = {}
        self.cluster_slots = {}
        self.base = {}
        for name, persons, shard in DOCS:
            xml = fixture_xml(persons)
            self.cluster.load(name, xml, shard=shard)
            self.oracle_slots[name] = classified_text_nids(
                self.oracle.load(name, xml))
            with Database(self.root + f"/probe-{name}") as probe:
                self.cluster_slots[name] = classified_text_nids(
                    probe.load(name, xml))
            self.base[name] = shard << NID_RANGE_BITS

    def close(self):
        try:
            self.cluster.stop()
            self.oracle.close(checkpoint=False)
        finally:
            shutil.rmtree(self.root, ignore_errors=True)

    # -- the two sides of every differential step -------------------

    def update(self, doc_idx: int, is_age: bool, value: int) -> None:
        name = self.order[doc_idx]
        pool = 0 if is_age else 1
        slot = value % len(self.cluster_slots[name][pool])
        text = str(value % (AGES * 2)) if is_age else f"n{value % NAMES}"
        self.cluster.update_text(
            name,
            self.cluster_slots[name][pool][slot] + self.base[name],
            text,
        )
        self.oracle.update_text(self.oracle_slots[name][pool][slot], text)

    def expected(self, text: str) -> list:
        path = parse_query(text).path
        rows = []
        for name in self.order:
            doc = self.oracle.store.document(name)
            rows.extend((name, int(pre))
                        for pre in sorted(evaluate_naive(doc, path)))
        return rows

    def check(self, text: str, context: str) -> None:
        got = self.cluster.query_pres(text)
        want = self.expected(text)
        assert got == want, (
            f"{context}: {text!r} diverged from oracle\n"
            f"  placement={dict(self.cluster.manifest.placement)}\n"
            f"  got ={got}\n  want={want}"
        )
        assert len(set(got)) == len(got), (
            f"{context}: {text!r} produced duplicate rows"
        )


@settings(max_examples=12, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_interleaved_ops_match_oracle(ops):
    rig = _Rig()
    try:
        for step, op in enumerate(ops):
            kind = op[0]
            if kind == "update":
                rig.update(op[1], op[2], op[3])
            elif kind == "query":
                rig.check(_query_text(op[1], op[2]), f"step {step}")
            elif kind == "migrate":
                name = rig.order[op[1]]
                rig.cluster.migrate_document(name, op[2], method=op[3])
                assert rig.cluster.manifest.placement[name] == op[2]
            elif kind == "rebalance":
                rig.cluster.rebalance(weight=op[1], method="direct")
        for probe in PROBES:
            rig.check(probe, "final")
        # Placement stayed a permutation: every doc exactly once.
        assert sorted(rig.cluster.manifest.placement) == sorted(rig.order)
    finally:
        rig.close()


@settings(max_examples=10, deadline=None, derandomize=True,
          suppress_health_check=[HealthCheck.too_slow])
@given(prelude=st.lists(_update, min_size=0, max_size=6),
       moved=st.integers(0, len(DOCS) - 1),
       dst=st.integers(0, SHARDS - 1),
       after=_update)
def test_view_pinned_across_migration(prelude, moved, dst, after):
    """A pinned view answers from its snapshot even when a document is
    migrated — and updated — under it; un-pinned queries follow."""
    rig = _Rig()
    try:
        for op in prelude:
            rig.update(op[1], op[2], op[3])
        frozen = {probe: rig.expected(probe) for probe in PROBES}
        name = rig.order[moved]
        with rig.cluster.read_view() as view:
            report = rig.cluster.migrate_document(name, dst,
                                                  method="snapshot")
            assert report["moved"] == (rig.base[name]
                                       != dst << NID_RANGE_BITS)
            # Post-flip update lands on the new owner (cluster only:
            # the oracle mirror is deliberately left at the snapshot).
            rig.cluster.update_text(
                name, rig.cluster_slots[name][0][0] + rig.base[name],
                "777")
            for probe in PROBES:
                got = rig.cluster.query_pres(probe, view=view)
                assert got == frozen[probe], (
                    f"pinned view drifted on {probe!r} after migrating "
                    f"{name!r}→{dst}: got={got} want={frozen[probe]}"
                )
        # View closed: the un-pinned cluster now shows the update.
        rig.oracle.update_text(rig.oracle_slots[name][0][0], "777")
        for probe in PROBES + ("//p[.//age = 777]",):
            rig.check(probe, "after view close")
    finally:
        rig.close()
