"""The tentpole invariant: ``Database`` is the single-shard deployment
of ``ShardEngine`` — same API, same on-disk layout, interchangeable."""

from repro.database import Database, RecoveryReport
from repro.shard.engine import ShardEngine

from ..concurrent.harness import classified_text_nids, fixture_xml


class TestFacade:
    def test_database_is_a_shard_engine(self):
        assert issubclass(Database, ShardEngine)

    def test_recovery_report_is_shared(self):
        from repro.shard.engine import RecoveryReport as EngineReport

        assert RecoveryReport is EngineReport

    def test_same_on_disk_layout(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            doc = db.load("people", fixture_xml())
            nids = classified_text_nids(doc)[0]
            db.update_text(nids[0], "99")
        # A Database directory opens as a bare ShardEngine...
        with ShardEngine(path) as engine:
            assert engine.query("//p[.//age = 99]")
            engine.update_text(nids[1], "98")
        # ... and the engine's writes come back under Database.
        with Database(path) as db:
            assert db.query("//p[.//age = 98]")

    def test_engine_defaults_standalone(self, tmp_path):
        with ShardEngine(str(tmp_path / "s")) as engine:
            assert engine.shard_id is None
        with ShardEngine(str(tmp_path / "s2"), shard_id=3) as engine:
            assert engine.shard_id == 3


class TestQueryRows:
    def test_rows_carry_document_pre_nid(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            db.load("people", fixture_xml())
            nids = db.query("//p[.//age = 7]")
            rows = db.query_rows("//p[.//age = 7]")
        assert [nid for _doc, _pre, nid in rows] == nids
        assert all(doc == "people" for doc, _pre, _nid in rows)
        pres = [pre for _doc, pre, _nid in rows]
        assert pres == sorted(pres)

    def test_rows_follow_document_load_order(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            db.load("zeta", fixture_xml(persons=4))
            db.load("alpha", fixture_xml(persons=4))
            rows = db.query_rows("//p")
        # Load order, not lexicographic order.
        assert [doc for doc, _pre, _nid in rows] == ["zeta"] * 4 + ["alpha"] * 4

    def test_rows_in_concurrent_mode(self, tmp_path):
        with Database(str(tmp_path / "db"), concurrent=True,
                      checkpoint_every=0) as db:
            db.load("people", fixture_xml())
            rows = db.query_rows("//p[.//age = 7]")
            assert rows
            with db.read_view():
                assert db.query_rows("//p[.//age = 7]") == rows
