"""Cross-shard merge correctness, property style (seeded random).

Random document placements over random shard counts, random queries
from the evaluation workload — the scatter-gathered result must be
bit-identical to the single-engine oracle computed per document with
:func:`repro.query.evaluate_naive`: same ``(document, pre)`` rows, same
global order (document load order, then pre), and no duplicates across
the per-shard ``Union`` boundaries.
"""

import random

import pytest

from repro.query import evaluate_naive, parse_query
from repro.workloads import DATASETS, QUERY_SETS

from .conftest import make_cluster

#: Corpus of the property rounds (small generator scales).
_CORPUS_SPECS = [("XMark1", 0.05), ("DBLP", 0.05), ("PSD", 0.05),
                 ("Wiki", 0.05)]

#: Query pool: every workload query of the corpus datasets.
_POOL = [
    (f"{dataset}/{name}", text)
    for dataset, _scale in _CORPUS_SPECS
    for name, text in QUERY_SETS[dataset]
]


@pytest.fixture(scope="module")
def corpus():
    """(name, xml, Document) per dataset — the oracle evaluates on the
    parsed Document directly, placement-independently."""
    from repro.core.manager import IndexManager

    manager = IndexManager()
    out = []
    for name, scale in _CORPUS_SPECS:
        xml = DATASETS[name].build(scale)
        out.append((name, xml, manager.load(name, xml)))
    return out


def _oracle(corpus, order, text):
    """Naive per-document evaluation in global load order."""
    path = parse_query(text).path
    docs = {name: doc for name, _xml, doc in corpus}
    rows = []
    for name in order:
        rows.extend((name, int(pre))
                    for pre in sorted(evaluate_naive(docs[name], path)))
    return rows


@pytest.mark.parametrize("seed", [1001, 1002, 1003])
def test_random_placement_matches_oracle(tmp_path, corpus, seed):
    rng = random.Random(seed)
    shards = rng.randrange(1, 5)
    names = [name for name, _xml, _doc in corpus]
    rng.shuffle(names)
    cluster = make_cluster(tmp_path, shards=shards)
    try:
        placement = {}
        for name in names:
            xml = next(x for n, x, _d in corpus if n == name)
            placement[name] = rng.randrange(shards)
            cluster.load(name, xml, shard=placement[name])
        for label, text in rng.sample(_POOL, 8):
            got = cluster.query_pres(text)
            expected = _oracle(corpus, names, text)
            assert got == expected, (
                f"seed={seed} shards={shards} placement={placement} "
                f"query={label!r}: scatter-gather diverged from oracle"
            )
            assert len(set(got)) == len(got), (
                f"seed={seed} query={label!r}: duplicate rows across "
                "the shard Union"
            )
    finally:
        cluster.stop()


def test_hash_placement_matches_oracle(tmp_path, corpus):
    """Default (hash) placement, full query pool, 3 shards."""
    cluster = make_cluster(tmp_path, shards=3)
    names = [name for name, _xml, _doc in corpus]
    try:
        for name, xml, _doc in corpus:
            cluster.load(name, xml)
        for _label, text in _POOL:
            assert cluster.query_pres(text) == _oracle(corpus, names, text)
    finally:
        cluster.stop()
