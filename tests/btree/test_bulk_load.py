"""Structural tests for bottom-up bulk loading and bulk removal.

The creation path (paper Figure 7) produces all index entries in one
pass; :meth:`BPlusTree.bulk_load` packs them into leaves bottom-up
instead of inserting one by one.  These tests pin down the structural
contract — packed leaves, correct inner separators — and the
equivalence with an insert-built tree.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.btree.bplus import _Inner


def bulk_loaded(entries, order=8):
    tree = BPlusTree(order=order)
    tree.bulk_load(entries)
    return tree


def leaves_of(tree):
    """Leaves reached through the inner levels, left to right."""
    level = [tree._root]
    while isinstance(level[0], _Inner):
        level = [child for node in level for child in node.children]
    return level


class TestLeafScan:
    def test_scan_covers_every_leaf(self):
        tree = bulk_loaded([(i, None) for i in range(1000)])
        scanned = [k for k, _ in tree.items()]
        from_leaves = [k for leaf in leaves_of(tree) for k in leaf.keys]
        assert scanned == from_leaves

    def test_scan_yields_entries_in_order(self):
        entries = [(i, -i) for i in range(777)]
        tree = bulk_loaded(entries)
        assert list(tree.items()) == entries


class TestFillFactor:
    @pytest.mark.parametrize("order", [4, 8, 64])
    def test_leaves_packed_to_fill(self, order):
        """Every leaf except the last holds exactly fill keys."""
        fill = max(2, (order * 3) // 4)
        tree = bulk_loaded([(i, None) for i in range(10 * fill + 1)],
                           order=order)
        leaves = leaves_of(tree)
        assert all(len(leaf.keys) == fill for leaf in leaves[:-1])
        assert 2 <= len(leaves[-1].keys) <= fill + 1

    def test_no_runt_leaf(self):
        """A trailing 1-key leaf is merged into its left sibling."""
        fill = max(2, (8 * 3) // 4)  # 6
        tree = bulk_loaded([(i, None) for i in range(fill + 1)])
        leaves = leaves_of(tree)
        assert len(leaves) == 1
        assert len(leaves[0].keys) == fill + 1

    @pytest.mark.parametrize("order", [4, 8, 16])
    def test_inner_nodes_never_orphan_a_child(self, order):
        for count in range(0, 400, 7):
            tree = bulk_loaded([(i, None) for i in range(count)],
                               order=order)
            stack = [tree._root]
            while stack:
                node = stack.pop()
                if isinstance(node, _Inner):
                    assert len(node.children) >= 2
                    stack.extend(node.children)


class TestInnerSeparators:
    @pytest.mark.parametrize("count", [10, 100, 1000, 5000])
    def test_separator_is_smallest_key_of_right_subtree(self, count):
        tree = bulk_loaded([(i * 3, None) for i in range(count)], order=4)

        def smallest(node):
            while isinstance(node, _Inner):
                node = node.children[0]
            return node.keys[0]

        stack = [tree._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                for sep, right in zip(node.keys, node.children[1:]):
                    assert sep == smallest(right)
                stack.extend(node.children)

    def test_lookups_after_bulk_load(self):
        keys = list(range(0, 3000, 3))
        tree = bulk_loaded([(k, str(k)) for k in keys], order=4)
        for key in random.Random(2).sample(keys, 200):
            assert tree.get(key) == str(key)
        assert tree.get(1) is None
        assert tree.get(2999) is None


class TestEquivalenceWithInserts:
    @pytest.mark.parametrize("count", [0, 1, 5, 64, 500])
    def test_same_contents_and_scans(self, count):
        entries = [(i, i * i) for i in range(count)]
        bulk = bulk_loaded(entries)
        incremental = BPlusTree(order=8)
        shuffled = entries[:]
        random.Random(9).shuffle(shuffled)
        for key, value in shuffled:
            incremental.insert(key, value)
        assert list(bulk.items()) == list(incremental.items())
        assert list(bulk.items_reversed()) == list(
            incremental.items_reversed()
        )
        assert list(bulk.range(count // 3, 2 * count // 3)) == list(
            incremental.range(count // 3, 2 * count // 3)
        )
        assert len(bulk) == len(incremental)
        bulk.check_invariants()

    def test_mutations_after_bulk_load_behave(self):
        tree = bulk_loaded([(i, None) for i in range(200)], order=4)
        for key in range(0, 200, 2):
            assert tree.delete(key)
        for key in range(200, 260):
            assert tree.insert(key)
        expected = sorted(set(range(1, 200, 2)) | set(range(200, 260)))
        assert [k for k, _ in tree.items()] == expected
        tree.check_invariants()


class TestEdgeCases:
    def test_empty(self):
        tree = bulk_loaded([])
        assert len(tree) == 0
        assert list(tree.items()) == []
        assert tree.get(0) is None
        tree.check_invariants()

    def test_single_key(self):
        tree = bulk_loaded([(7, "seven")])
        assert len(tree) == 1
        assert tree.get(7) == "seven"
        assert tree.height == 1
        tree.check_invariants()

    def test_duplicate_suffix_tuple_keys(self):
        """(value, nid) keys sharing the value prefix stay distinct and
        scan in nid order — the shape every index tree uses."""
        entries = [((42.0, nid), None) for nid in range(50)]
        entries += [((43.0, nid), None) for nid in range(50)]
        tree = bulk_loaded(entries, order=4)
        hits = [k for k, _ in tree.range((42.0, -1), (42.0, 1 << 60))]
        assert hits == [(42.0, nid) for nid in range(50)]
        tree.check_invariants()

    def test_rejects_equal_adjacent_keys(self):
        with pytest.raises(ValueError):
            bulk_loaded([(1, None), (2, None), (2, None)])

    def test_rejects_descending_keys(self):
        with pytest.raises(ValueError):
            bulk_loaded([(3, None), (1, None)])

    def test_reload_replaces_contents(self):
        tree = bulk_loaded([(i, None) for i in range(100)])
        tree.bulk_load([(i, None) for i in range(5)])
        assert [k for k, _ in tree.items()] == list(range(5))
        tree.check_invariants()


@given(
    st.sets(st.integers(-10_000, 10_000), max_size=400),
    st.sampled_from([3, 4, 8, 64]),
)
@settings(max_examples=100, deadline=None)
def test_bulk_load_equals_insert_built(keys, order):
    entries = [(k, k) for k in sorted(keys)]
    bulk = BPlusTree(order=order)
    bulk.bulk_load(entries)
    incremental = BPlusTree(order=order)
    for key, value in entries:
        incremental.insert(key, value)
    assert list(bulk.items()) == list(incremental.items())
    bulk.check_invariants()


class TestRemoveMany:
    def test_small_batch_uses_deletes(self):
        tree = bulk_loaded([(i, None) for i in range(1000)])
        assert tree.remove_many(range(10)) == 10
        assert len(tree) == 990
        assert tree.get(5) is None
        tree.check_invariants()

    def test_large_batch_rebuilds(self):
        tree = bulk_loaded([(i, None) for i in range(1000)])
        assert tree.remove_many(range(0, 1000, 2)) == 500
        assert [k for k, _ in tree.items()] == list(range(1, 1000, 2))
        tree.check_invariants()

    def test_absent_keys_do_not_count(self):
        tree = bulk_loaded([(i, None) for i in range(10)])
        assert tree.remove_many([5, 100, 200]) == 1
        assert len(tree) == 9

    def test_empty_inputs(self):
        tree = bulk_loaded([(i, None) for i in range(10)])
        assert tree.remove_many([]) == 0
        assert BPlusTree(order=4).remove_many([1, 2]) == 0

    def test_remove_everything(self):
        tree = bulk_loaded([(i, None) for i in range(100)])
        assert tree.remove_many(range(100)) == 100
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.check_invariants()

    @given(
        st.sets(st.integers(0, 300)),
        st.sets(st.integers(0, 300)),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_set_difference(self, keys, dropped, order):
        tree = BPlusTree(order=order)
        tree.bulk_load([(k, None) for k in sorted(keys)])
        removed = tree.remove_many(dropped)
        assert removed == len(keys & dropped)
        assert [k for k, _ in tree.items()] == sorted(keys - dropped)
        tree.check_invariants()
