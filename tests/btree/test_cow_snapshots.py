"""Regression tests: cursors vs. concurrent structural changes.

The original tree linked leaves into a forward chain and iterated along
it.  A leaf split *moves* the upper half of a leaf's keys into a new
sibling, so a cursor positioned in the lower half mid-iteration could
skip those keys (it was past them in the old leaf) or, after a
redistribution, see them twice.  The tree is now copy-on-write: every
mutation clones the root-to-leaf path and publishes a new root, and
every cursor runs over the root captured when it was created.  These
tests pin that contract down — first the single-threaded interleaving
that used to corrupt scans, then true multi-threaded hammering.
"""

import random
import threading

from repro.btree import BPlusTree
from repro.btree.bplus import TreeSnapshot


class TestInterleavedMutation:
    """Deterministic interleavings of one cursor and one writer."""

    def test_scan_survives_splits_behind_the_cursor(self):
        tree = BPlusTree(order=4)
        for i in range(0, 100, 2):
            tree.insert(i, i)
        before = [k for k in range(0, 100, 2)]
        it = tree.items()
        seen = []
        for step, (key, _value) in enumerate(it):
            seen.append(key)
            # Odd keys land in leaves the cursor has passed, inside the
            # one it is on, and ahead of it — forcing splits everywhere.
            tree.insert(2 * step + 1, None)
        assert seen == before, "cursor skipped or double-yielded keys"

    def test_scan_survives_deletes_ahead_of_the_cursor(self):
        tree = BPlusTree(order=4)
        for i in range(60):
            tree.insert(i, i)
        seen = []
        for key, _value in tree.items():
            seen.append(key)
            tree.delete(59 - len(seen) % 60)
        assert seen == list(range(60))

    def test_range_cursor_pins_its_snapshot(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, i)
        cursor = tree.range(50, 150)
        tree.remove_many(range(60, 140))
        assert [k for k, _ in cursor] == list(range(50, 151))

    def test_reversed_cursor_pins_its_snapshot(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(i, i)
        cursor = tree.items_reversed()
        tree.bulk_load([(i, None) for i in range(5)])
        assert [k for k, _ in cursor] == list(range(49, -1, -1))

    def test_bulk_load_does_not_disturb_cursor(self):
        tree = BPlusTree(order=8)
        tree.bulk_load([(i, i) for i in range(300)])
        cursor = tree.items()
        tree.bulk_load([(i, -i) for i in range(10)])
        assert [k for k, _ in cursor] == list(range(300))
        assert [k for k, _ in tree.items()] == list(range(10))


class TestExplicitSnapshot:
    def test_snapshot_is_frozen(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert(i, str(i))
        snap = tree.snapshot()
        assert isinstance(snap, TreeSnapshot)
        for i in range(100, 200):
            tree.insert(i, str(i))
        for i in range(0, 100, 2):
            tree.delete(i)
        assert len(snap) == 100
        assert [k for k, _ in snap.items()] == list(range(100))
        assert snap.get(42) == "42"
        assert 43 in snap and 150 not in snap
        assert [k for k, _ in snap.range(10, 20)] == list(range(10, 21))
        assert next(snap.items_reversed())[0] == 99
        assert len(tree) == 150

    def test_snapshots_are_independent_versions(self):
        tree = BPlusTree(order=4)
        versions = []
        for i in range(50):
            tree.insert(i, i)
            versions.append(tree.snapshot())
        for count, snap in enumerate(versions, start=1):
            assert [k for k, _ in snap.items()] == list(range(count))

    def test_overwrite_is_also_copy_on_write(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(i, "old")
        snap = tree.snapshot()
        for i in range(20):
            tree.insert(i, "new")
        assert all(v == "old" for _, v in snap.items())
        assert all(v == "new" for _, v in tree.items())


class TestThreadedScans:
    """Readers iterate while a writer mutates — every scan must come
    out sorted, duplicate-free, and equal to some published version."""

    def test_concurrent_scans_see_consistent_versions(self):
        tree = BPlusTree(order=4)
        for i in range(0, 400, 4):
            tree.insert(i, i)
        stop = threading.Event()
        failures = []

        def reader(seed):
            rng = random.Random(seed)
            while not stop.is_set():
                if rng.random() < 0.5:
                    keys = [k for k, _ in tree.items()]
                else:
                    keys = [k for k, _ in tree.range(40, 360)]
                if keys != sorted(set(keys)):
                    failures.append(keys)
                    return

        threads = [
            threading.Thread(target=reader, args=(seed,), daemon=True)
            for seed in range(3)
        ]
        for t in threads:
            t.start()
        rng = random.Random(1234)
        for _ in range(3000):
            key = rng.randrange(400)
            if rng.random() < 0.5:
                tree.insert(key, key)
            else:
                tree.delete(key)
        stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not failures, f"inconsistent scan: {failures[0][:20]}..."
        tree.check_invariants()

    def test_snapshot_triple_is_atomic_under_writes(self):
        """len(snapshot) must equal the snapshot's actual entry count.

        The (root, size, height) triple is published as one tuple;
        before that fix a snapshot taken off the writer lock could pair
        the old root with the already-bumped size/height, making
        len(snap) disagree with the pinned contents (the statistics
        builders divide by it)."""
        tree = BPlusTree(order=4)
        for i in range(0, 200, 2):
            tree.insert(i, i)
        done = threading.Event()
        failures = []

        def reader():
            while not done.is_set():
                snap = tree.snapshot()
                count = sum(1 for _ in snap.items())
                if count != len(snap):
                    failures.append((len(snap), count))
                    return

        threads = [threading.Thread(target=reader, daemon=True)
                   for _ in range(2)]
        for t in threads:
            t.start()
        rng = random.Random(4321)
        for _ in range(4000):
            key = rng.randrange(200)
            if rng.random() < 0.5:
                tree.insert(key, key)
            else:
                tree.delete(key)
        done.set()
        for t in threads:
            t.join(timeout=30)
        assert not failures, (
            f"snapshot tore: len()={failures[0][0]} but {failures[0][1]} items"
        )
        tree.check_invariants()
