"""Unit and property tests for the B+tree substrate."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree(order=4)
        assert len(tree) == 0
        assert tree.get(1) is None
        assert 1 not in tree
        assert list(tree.items()) == []
        assert list(tree.range(0, 10)) == []

    def test_insert_get(self):
        tree = BPlusTree(order=4)
        assert tree.insert(5, "five")
        assert tree.get(5) == "five"
        assert 5 in tree
        assert len(tree) == 1

    def test_insert_overwrites(self):
        tree = BPlusTree(order=4)
        tree.insert(5, "old")
        assert not tree.insert(5, "new")
        assert tree.get(5) == "new"
        assert len(tree) == 1

    def test_order_too_small(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_many_inserts_sorted_iteration(self):
        tree = BPlusTree(order=4)
        data = list(range(200))
        random.Random(7).shuffle(data)
        for key in data:
            tree.insert(key, key * 2)
        assert [k for k, _ in tree.items()] == list(range(200))
        assert tree.height > 1
        tree.check_invariants()

    def test_tuple_keys(self):
        tree = BPlusTree(order=8)
        tree.insert((42, 1))
        tree.insert((42, 2))
        tree.insert((41, 9))
        assert [k for k, _ in tree.range((42, 0), (42, 1 << 60))] == [
            (42, 1),
            (42, 2),
        ]


class TestRange:
    @pytest.fixture()
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(key, -key)
        return tree

    def test_inclusive(self, tree):
        assert [k for k, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_exclusive_low(self, tree):
        assert [k for k, _ in tree.range(10, 16, include_low=False)] == [
            12,
            14,
            16,
        ]

    def test_exclusive_high(self, tree):
        assert [k for k, _ in tree.range(10, 16, include_high=False)] == [
            10,
            12,
            14,
        ]

    def test_bounds_between_keys(self, tree):
        assert [k for k, _ in tree.range(9, 15)] == [10, 12, 14]

    def test_open_low(self, tree):
        assert [k for k, _ in tree.range(None, 4)] == [0, 2, 4]

    def test_open_high(self, tree):
        assert [k for k, _ in tree.range(94, None)] == [94, 96, 98]

    def test_full_scan(self, tree):
        assert len(list(tree.range())) == 50

    def test_empty_interval(self, tree):
        assert list(tree.range(11, 11)) == []
        assert list(tree.range(50, 40)) == []


class TestDelete:
    def test_delete_present(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key)
        assert tree.delete(25)
        assert 25 not in tree
        assert len(tree) == 49
        tree.check_invariants()

    def test_delete_absent(self):
        tree = BPlusTree(order=4)
        tree.insert(1)
        assert not tree.delete(2)
        assert len(tree) == 1

    def test_delete_everything(self):
        tree = BPlusTree(order=4)
        keys = list(range(100))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key)
        random.Random(4).shuffle(keys)
        for key in keys:
            assert tree.delete(key)
        assert len(tree) == 0
        assert list(tree.items()) == []
        tree.check_invariants()

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(order=4)
        rng = random.Random(11)
        shadow: set[int] = set()
        for _ in range(2000):
            key = rng.randrange(200)
            if key in shadow:
                assert tree.delete(key)
                shadow.discard(key)
            else:
                assert tree.insert(key)
                shadow.add(key)
        assert sorted(shadow) == [k for k, _ in tree.items()]
        tree.check_invariants()


class TestBulkLoad:
    def test_bulk_load_roundtrip(self):
        tree = BPlusTree(order=8)
        entries = [(i, str(i)) for i in range(500)]
        tree.bulk_load(entries)
        assert len(tree) == 500
        assert list(tree.items()) == entries
        tree.check_invariants()

    def test_bulk_load_rejects_unsorted(self):
        tree = BPlusTree(order=8)
        with pytest.raises(ValueError):
            tree.bulk_load([(2, None), (1, None)])

    def test_bulk_load_rejects_duplicates(self):
        tree = BPlusTree(order=8)
        with pytest.raises(ValueError):
            tree.bulk_load([(1, None), (1, None)])

    def test_bulk_load_then_mutate(self):
        tree = BPlusTree(order=4)
        tree.bulk_load([(i, None) for i in range(0, 100, 2)])
        tree.insert(51)
        tree.delete(50)
        keys = [k for k, _ in tree.items()]
        assert 51 in keys and 50 not in keys
        tree.check_invariants()

    @pytest.mark.parametrize("count", [0, 1, 2, 3, 7, 63, 64, 65, 1000])
    def test_bulk_load_sizes(self, count):
        tree = BPlusTree(order=8)
        tree.bulk_load([(i, None) for i in range(count)])
        assert len(tree) == count
        assert [k for k, _ in tree.items()] == list(range(count))
        tree.check_invariants()


class TestByteSize:
    def test_empty_is_zero(self):
        assert BPlusTree(order=4).byte_size() == 0

    def test_grows_with_entries(self):
        tree = BPlusTree(order=16, key_bytes=8, value_bytes=4)
        tree.insert(1, None)
        one = tree.byte_size()
        for key in range(2, 100):
            tree.insert(key, None)
        assert tree.byte_size() > one
        # 99 leaf entries at 12 bytes each, plus inner overhead.
        assert tree.byte_size() >= 99 * 12

    def test_callable_value_bytes(self):
        tree = BPlusTree(order=4, key_bytes=4, value_bytes=len)
        tree.insert(1, "abc")
        tree.insert(2, "")
        assert tree.byte_size() >= 4 + 3 + 4


@given(
    st.lists(
        st.tuples(st.integers(-1000, 1000), st.booleans()), max_size=300
    ),
    st.sampled_from([3, 4, 5, 7, 16, 64]),
)
@settings(max_examples=100, deadline=None)
def test_btree_behaves_like_dict(operations, order):
    """Model-based test: tree == dict under mixed insert/delete."""
    tree = BPlusTree(order=order)
    model: dict[int, int] = {}
    for key, is_insert in operations:
        if is_insert:
            tree.insert(key, key)
            model[key] = key
        else:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert sorted(model.items()) == list(tree.items())
    tree.check_invariants()


@given(
    st.sets(st.integers(0, 500)),
    st.integers(0, 500),
    st.integers(0, 500),
    st.sampled_from([3, 4, 16]),
)
@settings(max_examples=100, deadline=None)
def test_range_matches_filter(keys, a, b, order):
    low, high = min(a, b), max(a, b)
    tree = BPlusTree(order=order)
    for key in keys:
        tree.insert(key)
    expected = sorted(k for k in keys if low <= k <= high)
    assert [k for k, _ in tree.range(low, high)] == expected


class TestReverseIteration:
    def test_descending_order(self):
        tree = BPlusTree(order=4)
        keys = list(range(300))
        random.Random(5).shuffle(keys)
        for key in keys:
            tree.insert(key)
        assert [k for k, _ in tree.items_reversed()] == list(
            reversed(range(300))
        )

    def test_empty(self):
        assert list(BPlusTree(order=4).items_reversed()) == []

    def test_after_bulk_load(self):
        tree = BPlusTree(order=8)
        tree.bulk_load([(i, i) for i in range(100)])
        assert [k for k, _ in tree.items_reversed()] == list(
            reversed(range(100))
        )

    @given(st.sets(st.integers(-100, 100)))
    @settings(max_examples=60, deadline=None)
    def test_reverse_of_forward(self, keys):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert(key)
        forward = [k for k, _ in tree.items()]
        assert [k for k, _ in tree.items_reversed()] == forward[::-1]
