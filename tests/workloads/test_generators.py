"""Tests for the dataset generators: well-formedness, determinism and
Table 1 node-mix calibration."""

import random

import pytest

from repro.core.hashing import hash_string
from repro.workloads import (
    DATASETS,
    collect_stats,
    collision_family,
    dataset,
    random_text_updates,
    text_nids,
)
from repro.xmldb import Store

SCALE = 0.05  # small but statistically stable


@pytest.fixture(scope="module")
def built():
    """All eight datasets shredded at test scale."""
    store = Store()
    stats = {}
    for name, spec in DATASETS.items():
        doc = store.add_document(name, spec.build(SCALE))
        doc.check_invariants()
        stats[name] = collect_stats(doc)
    return store, stats


class TestWellFormedness:
    def test_all_parse_and_validate(self, built):
        store, _stats = built
        assert len(store.documents) == 8

    def test_deterministic(self):
        spec = dataset("XMark1")
        assert spec.build(0.02) == spec.build(0.02)

    def test_scales_differ(self):
        spec = dataset("XMark1")
        assert len(spec.build(0.04)) > len(spec.build(0.02))

    def test_serialization_roundtrip(self, built):
        store, _ = built
        doc = store.document("EPAGeo")
        xml = doc.serialize()
        again = Store().add_document("copy", xml)
        assert again.serialize() == xml


class TestTable1Calibration:
    """Node-mix fractions must be near the paper's Table 1."""

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_text_fraction(self, built, name):
        _store, stats = built
        paper = DATASETS[name].paper_text_pct / 100
        assert abs(stats[name].text_fraction - paper) < 0.05, (
            f"{name}: {stats[name].text_fraction:.0%} vs paper {paper:.0%}"
        )

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_double_fraction(self, built, name):
        _store, stats = built
        paper = DATASETS[name].paper_double_pct / 100
        assert abs(stats[name].double_fraction - paper) < 0.02, (
            f"{name}: {stats[name].double_fraction:.1%} vs paper {paper:.1%}"
        )

    @pytest.mark.parametrize("name", ["XMark1", "XMark2", "XMark4", "XMark8",
                                      "EPAGeo", "Wiki"])
    def test_no_non_leaf_doubles(self, built, name):
        _store, stats = built
        assert stats[name].non_leaf_doubles == 0

    @pytest.mark.parametrize("name", ["DBLP", "PSD"])
    def test_has_non_leaf_doubles(self, built, name):
        _store, stats = built
        assert stats[name].non_leaf_doubles >= 1

    def test_xmark_scale_factors_nest(self, built):
        _store, stats = built
        sizes = [stats[f"XMark{sf}"].total_nodes for sf in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)
        # Roughly doubling at each step.
        for small, large in zip(sizes, sizes[1:]):
            assert 1.5 < large / small < 2.5

    def test_relative_dataset_sizes(self, built):
        _store, stats = built
        # Wiki is the biggest corpus, XMark1 the smallest (as in paper).
        assert stats["Wiki"].total_nodes == max(
            s.total_nodes for s in stats.values()
        )
        assert stats["XMark1"].total_nodes == min(
            s.total_nodes for s in stats.values()
        )


class TestCollisionFamilies:
    def test_members_distinct_but_hash_equal(self):
        rng = random.Random(1)
        for size in range(2, 10):
            family = collision_family(rng, size)
            assert len(set(family)) == size
            assert len({hash_string(u) for u in family}) == 1

    def test_bad_sizes_rejected(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            collision_family(rng, 1)
        with pytest.raises(ValueError):
            collision_family(rng, 10)

    def test_wiki_contains_collisions(self, built):
        store, _ = built
        doc = store.document("Wiki")
        from collections import Counter

        values = {
            doc.text_of(p)
            for p in range(len(doc))
            if doc.text_id[p] >= 0 and doc.text_of(p).startswith("http")
        }
        groups = Counter(hash_string(v) for v in values)
        biggest = max(groups.values())
        assert biggest >= 3  # engineered families survive generation


class TestUpdateWorkload:
    def test_count_and_membership(self, built):
        store, _ = built
        doc = store.document("XMark1")
        updates = random_text_updates(doc, 50, random.Random(3))
        assert len(updates) == 50
        nids = set(text_nids(doc))
        assert all(nid in nids for nid, _ in updates)

    def test_sample_without_replacement_when_possible(self, built):
        store, _ = built
        doc = store.document("XMark1")
        updates = random_text_updates(doc, 50, random.Random(3))
        assert len({nid for nid, _ in updates}) == 50

    def test_oversampling_allowed(self, built):
        store, _ = built
        doc = store.document("XMark1")
        n = len(text_nids(doc))
        updates = random_text_updates(doc, n + 10, random.Random(3))
        assert len(updates) == n + 10

    def test_empty_document_rejected(self):
        store = Store()
        doc = store.add_document("empty", "<a/>")
        with pytest.raises(ValueError):
            random_text_updates(doc, 1)
