"""Edge-case tests across module boundaries."""

import pytest

from repro.core import IndexManager
from repro.core.hashing import hash_string, hash_strings
from repro.errors import DocumentError
from repro.workloads.stats import DatasetStats
from repro.xmldb import Store


class TestHashingEdges:
    def test_batch_accepts_bytes(self):
        values = [b"Arthur", "Dent", b"", "42" * 40]
        assert hash_strings(values) == [hash_string(v) for v in values]

    def test_batch_of_empties(self):
        values = [""] * 20
        assert hash_strings(values) == [0] * 20

    def test_batch_mixed_lengths_spanning_vector_threshold(self):
        values = ["", "a", "b" * 47, "c" * 48, "d" * 500, "e"]
        assert hash_strings(values) == [hash_string(v) for v in values]

    def test_non_ascii_high_bytes_masked(self):
        # Only the 7 low bits of each UTF-8 byte enter the hash.
        assert hash_string("é") == hash_string(bytes(b & 127 for b in "é".encode()))


class TestDocumentEdges:
    def test_serialize_attribute_standalone_rejected(self):
        doc = Store().add_document("a", '<a x="1"/>')
        attr_pre = 2
        with pytest.raises(DocumentError):
            doc.serialize(attr_pre)

    def test_text_of_on_element_rejected(self):
        doc = Store().add_document("a", "<a>x</a>")
        with pytest.raises(DocumentError):
            doc.text_of(doc.root_element())

    def test_name_of_on_text_rejected(self):
        doc = Store().add_document("a", "<a>x</a>")
        with pytest.raises(DocumentError):
            doc.name_of(2)

    def test_root_element_of_commentful_document(self):
        doc = Store().add_document("a", "<!--c--><a/><!--d-->")
        assert doc.name_of(doc.root_element()) == "a"

    def test_deeply_nested_document(self):
        depth = 200
        xml = "".join(f"<n{i}>" for i in range(depth))
        xml += "leaf"
        xml += "".join(f"</n{i}>" for i in reversed(range(depth)))
        manager = IndexManager(typed=("double",))
        doc = manager.load("deep", xml)
        doc.check_invariants()
        assert len(list(manager.lookup_string("leaf"))) == depth + 2
        # An update near the leaf recomputes the whole ancestor chain.
        nid = doc.nid[len(doc) - 1]
        recomputed = manager.update_text(nid, "42")
        assert recomputed == depth + 2
        manager.check_consistency()

    def test_huge_fanout_document(self):
        xml = "<r>" + "".join(f"<c>{i}</c>" for i in range(2000)) + "</r>"
        manager = IndexManager(typed=("double",))
        doc = manager.load("wide", xml)
        doc.check_invariants()
        hits = list(manager.lookup_typed_equal("double", 999.0))
        assert len(hits) == 2  # text + element

    def test_empty_root(self):
        manager = IndexManager(typed=("double",))
        manager.load("e", "<a/>")
        # The empty string value is indexed (hash 0).
        hits = list(manager.lookup_string(""))
        assert len(hits) == 2  # doc node + root element


class TestStatsFormatting:
    def test_header_and_row_align(self):
        stats = DatasetStats("test", 1024 * 1024, 100, 60, 8, 0)
        assert "Size MB" in DatasetStats.header()
        row = stats.row()
        assert "test" in row and "60%" in row

    def test_zero_node_stats(self):
        stats = DatasetStats("empty", 0, 0, 0, 0, 0)
        assert stats.text_fraction == 0.0
        assert stats.double_fraction == 0.0


class TestManagerEdges:
    def test_unload_with_substring_index(self):
        manager = IndexManager(typed=("double",), substring=True)
        manager.load("a", "<r><v>hello world</v></r>")
        manager.load("b", "<r><v>hello there</v></r>")
        manager.unload("a")
        hits = list(manager.lookup_contains("hello"))
        assert len(hits) == 1
        manager.check_consistency()

    def test_update_comment_is_ignored_by_indices(self):
        manager = IndexManager(typed=("double",))
        doc = manager.load("c", "<a><!--note-->x</a>")
        comment = next(
            doc.nid[p] for p in range(len(doc)) if doc.kind[p] == 4
        )
        count = manager.update_text(comment, "new note")
        assert count == 0
        assert doc.string_value(0) == "x"
        manager.check_consistency()

    def test_delete_entire_root_element(self):
        manager = IndexManager(typed=("double",))
        doc = manager.load("d", "<a><b>42</b></a>")
        manager.delete_subtree(doc.nid[doc.root_element()])
        assert len(doc) == 1  # just the document node
        assert list(manager.lookup_typed_equal("double", 42.0)) == []
        # The document node's own value is now empty.
        assert list(manager.lookup_string(""))
        manager.check_consistency()

    def test_insert_into_emptied_document(self):
        manager = IndexManager(typed=("double",))
        doc = manager.load("d", "<a/>")
        manager.delete_subtree(doc.nid[doc.root_element()])
        manager.insert_xml(doc.nid[0], "<b>7</b>")
        assert list(manager.lookup_typed_equal("double", 7.0))
        doc.check_invariants()
        manager.check_consistency()
