"""ReplicaSet routing: reads spread over followers, writes hit the
primary, dead followers are quarantined, real errors pass through."""

import pytest

from repro.client import ClientError
from repro.repl import FollowerServer, ReplicaSet

from .conftest import wait_until


def _queries(engine) -> int:
    return engine.metrics()["counters"].get("query.executed", 0)


@pytest.fixture
def pair(primary, make_follower):
    """Two serving followers of ``primary``; yields their servers."""
    servers = []
    for i in range(2):
        follower = make_follower(name=f"f{i}", start=True)
        server = FollowerServer(follower)
        servers.append((server, server.start()))
    yield servers
    for server, _addr in servers:
        server.stop()


def test_reads_round_robin_over_followers(primary, pair):
    replica_set = ReplicaSet(primary.addr,
                             [addr for _s, addr in pair])
    try:
        before = _queries(primary.db)
        counts = [_queries(server.follower.engine)
                  for server, _addr in pair]
        for _ in range(8):
            assert replica_set.query("//p[.//age = 3]")
        # All eight reads were served by follower engines, 4 each.
        assert _queries(primary.db) == before
        for (server, _addr), count in zip(pair, counts):
            assert _queries(server.follower.engine) >= count + 4
    finally:
        replica_set.close()


def test_writes_route_to_primary_and_replicate(primary, pair):
    replica_set = ReplicaSet(primary.addr,
                             [addr for _s, addr in pair])
    try:
        replica_set.update_text(primary.age_nids[0], "2024")
        assert len(primary.db.query("//p[.//age = 2024]")) == 1
        wait_until(
            lambda: all(
                server.follower.engine.query("//p[.//age = 2024]")
                for server, _addr in pair
            ),
            message="write to reach both followers",
        )
        assert replica_set.query("//p[.//age = 2024]")
    finally:
        replica_set.close()


def test_dead_follower_is_quarantined(primary, pair):
    replica_set = ReplicaSet(primary.addr,
                             [addr for _s, addr in pair])
    try:
        assert replica_set.query("//p[.//age = 3]")
        dead_server, _addr = pair[0]
        dead_server.stop()
        # Every read still answers: the dead member fails over to the
        # survivor (or the primary) and stays out of rotation.
        for _ in range(6):
            assert replica_set.query("//p[.//age = 3]")
        assert replica_set._dead
    finally:
        replica_set.close()


def test_primary_reads_pin_the_primary(primary, pair):
    replica_set = ReplicaSet(primary.addr,
                             [addr for _s, addr in pair],
                             primary_reads=True)
    try:
        counts = [_queries(server.follower.engine)
                  for server, _addr in pair]
        for _ in range(5):
            assert replica_set.query("//p[.//age = 3]")
        assert counts == [_queries(server.follower.engine)
                          for server, _addr in pair]
    finally:
        replica_set.close()


def test_real_errors_are_not_retried(primary, pair):
    replica_set = ReplicaSet(primary.addr,
                             [addr for _s, addr in pair])
    try:
        with pytest.raises(ClientError) as excinfo:
            replica_set.query("//p[.//age ==== 3]")
        assert excinfo.value.code not in ("disconnected", "shutting_down")
        assert not replica_set._dead  # a bad query is not a dead member
    finally:
        replica_set.close()
