"""Time travel: the retained-epoch window, ``as_of`` queries at the
engine and wire levels, and the window's documented edges (process
lifetime, structural invalidation, bounded retention)."""

import pytest

from repro.client import Client, ClientError
from repro.core.concurrency import EpochNotRetained
from repro.database import Database
from repro.wire import E_NO_EPOCH

from ..concurrent.harness import classified_text_nids, fixture_xml
from .conftest import wait_until


@pytest.fixture
def db(tmp_path):
    db = Database(str(tmp_path / "tt"), concurrent=True, retain_epochs=8,
                  checkpoint_every=0, typed=("double",))
    yield db
    db.close(checkpoint=False)


class TestEngineWindow:
    def test_as_of_answers_each_retained_epoch(self, db):
        doc = db.load("people", fixture_xml())
        ages, _names = classified_text_nids(doc)
        history = {}  # epoch -> expected hit count for //p[.//age = 0]
        history[db.manager.epoch] = len(db.query("//p[.//age = 0]"))
        for value in ("0", "0", "1"):
            db.update_text(ages[1], value)
            history[db.manager.epoch] = len(db.query("//p[.//age = 0]"))
        window = db.retained_epochs()
        assert window == sorted(history)
        for epoch, expected in history.items():
            assert len(db.query("//p[.//age = 0]", as_of=epoch)) \
                == expected, epoch
        # Counts actually differ across the window, so the assertions
        # above distinguish epochs rather than passing vacuously.
        assert len(set(history.values())) > 1

    def test_window_is_bounded(self, tmp_path):
        db = Database(str(tmp_path / "small"), concurrent=True,
                      retain_epochs=2, checkpoint_every=0)
        try:
            doc = db.load("people", fixture_xml())
            ages, _names = classified_text_nids(doc)
            epochs = []
            for i in range(6):
                db.update_text(ages[0], str(i))
                epochs.append(db.manager.epoch)
            window = db.retained_epochs()
            # Two retained historical epochs at most, plus the current.
            assert len(window) <= 3
            assert window[-1] == db.manager.epoch
            evicted = epochs[0]
            with pytest.raises(EpochNotRetained, match="not retained"):
                db.query("//p", as_of=evicted)
        finally:
            db.close(checkpoint=False)

    def test_structural_update_clears_history(self, db):
        doc = db.load("people", fixture_xml())
        ages, _names = classified_text_nids(doc)
        db.update_text(ages[0], "42")
        old = db.retained_epochs()[0]
        root_nid = doc.nid[doc.root_element()]
        db.insert_xml(root_nid, "<p><age>7</age></p>")
        # In-place column splices invalidate retained snapshots; only
        # the current epoch survives.
        assert db.retained_epochs() == [db.manager.epoch]
        with pytest.raises(EpochNotRetained):
            db.query("//p", as_of=old)

    def test_retention_requires_concurrency(self, tmp_path):
        with pytest.raises(ValueError, match="concurrent"):
            Database(str(tmp_path / "bad"), retain_epochs=4)

    def test_as_of_requires_concurrency(self, tmp_path):
        with Database(str(tmp_path / "plain")) as db:
            db.load("a", "<a><b>1</b></a>")
            with pytest.raises(ValueError, match="concurrent"):
                db.query("//b", as_of=0)


class TestWireAsOf:
    def test_as_of_over_the_wire(self, tmp_path):
        from repro.server import ServerThread

        db = Database(str(tmp_path / "served"), concurrent=True,
                      retain_epochs=8, checkpoint_every=0)
        doc = db.load("people", fixture_xml())
        ages, _names = classified_text_nids(doc)
        past = db.manager.epoch
        db.update_text(ages[0], "9999")
        thread = ServerThread(db)
        host, port = thread.start()
        try:
            with Client(host, port) as client:
                assert "as_of" in client.handshake()["features"]
                info = client.epochs()
                assert info["epochs"][-1] == info["current"]
                assert past in info["epochs"]
                now_hits = client.query("//p[.//age = 9999]")
                assert len(now_hits) == 1
                assert client.query("//p[.//age = 9999]", as_of=past) == []
                with pytest.raises(ClientError) as excinfo:
                    client.query("//p", as_of=10**6)
                assert excinfo.value.code == E_NO_EPOCH
                with pytest.raises(ClientError) as excinfo:
                    client.call("query", xpath="//p", as_of="yesterday")
                assert excinfo.value.code == "bad_request"
        finally:
            thread.stop()
            db.close(checkpoint=False)

    def test_follower_serves_as_of_locally(self, primary, make_follower):
        """Followers keep their own retention window: historical reads
        scale out with the replica pool."""
        from repro.repl import FollowerServer

        follower = make_follower(name="tt", start=True, retain_epochs=8)
        primary.db.update_text(primary.age_nids[0], "31415")
        wait_until(lambda: follower.engine.query("//p[.//age = 31415]"),
                   message="replication of the probe update")
        past = follower.engine.manager.epoch
        primary.db.update_text(primary.age_nids[0], "27182")
        wait_until(lambda: follower.engine.query("//p[.//age = 27182]"),
                   message="replication of the second update")
        server = FollowerServer(follower)
        host, port = server.start()
        try:
            with Client(host, port) as client:
                assert client.query("//p[.//age = 31415]") == []
                assert len(client.query("//p[.//age = 31415]",
                                        as_of=past)) == 1
        finally:
            server.stop()
