"""Replication meets elasticity: migration churns followers honestly.

A document migration is a bulk load on the destination shard and a
bulk unload on the source — both invisible to the WAL frame stream by
design, so each bumps the shard's ``bulk_stamp`` and any follower
tailing that shard must notice on its next poll and fall back to a
full snapshot resync.  A follower that kept applying frames over a
silently changed corpus would diverge forever; these tests pin the
resync down on both ends of a live migration.
"""

from repro.repl import Follower
from repro.shard import ShardCluster

from ..concurrent.harness import fixture_xml


def _make_cluster(tmp_path):
    return ShardCluster(
        str(tmp_path / "cluster"), shards=2, transport="thread",
        checkpoint_every=0,
    ).start()


def _tail(tmp_path, cluster, shard: int, name: str) -> Follower:
    follower = Follower(str(tmp_path / name), cluster.addresses()[shard])
    follower.sync()
    return follower


def _corpus(engine, document: str):
    return sorted(
        (pre for doc, pre, _nid in engine.query_rows("//p")
         if doc == document),
    )


def test_source_follower_resyncs_after_migration_away(tmp_path):
    cluster = _make_cluster(tmp_path)
    follower = None
    try:
        cluster.load("mover", fixture_xml(), shard=0)
        cluster.load("anchor", fixture_xml(24), shard=0)
        follower = _tail(tmp_path, cluster, 0, "src-follower")
        assert _corpus(follower.engine, "mover")
        resyncs = follower.resyncs

        # A frame-visible update replays without any resync...
        row = cluster.query("//age/text()", document="mover")[0]
        cluster.update_text("mover", row[2], "4242")
        while follower.poll_once():
            pass
        assert follower.resyncs == resyncs
        assert follower.engine.query("//p[.//age = 4242]")

        # ...but migrating the tailed document away is a bulk unload:
        # the next poll must resync, not keep replaying frames.
        assert cluster.migrate_document("mover", 1,
                                        method="direct")["moved"]
        follower.poll_once()
        assert follower.resyncs == resyncs + 1
        assert not _corpus(follower.engine, "mover")
        assert _corpus(follower.engine, "anchor")
        assert follower.engine.verify().ok
    finally:
        if follower is not None:
            follower.close()
        cluster.stop()


def test_destination_follower_resyncs_after_migration_in(tmp_path):
    cluster = _make_cluster(tmp_path)
    follower = None
    try:
        cluster.load("mover", fixture_xml(), shard=0)
        cluster.load("anchor", fixture_xml(24), shard=1)
        expected = [pre for _doc, pre in
                    cluster.query_pres("//p", document="mover")]
        follower = _tail(tmp_path, cluster, 1, "dst-follower")
        resyncs = follower.resyncs
        assert not _corpus(follower.engine, "mover")

        # The import on the destination is a bulk load: resync, after
        # which the follower serves the migrated document too.
        assert cluster.migrate_document("mover", 1,
                                        method="snapshot")["moved"]
        follower.poll_once()
        assert follower.resyncs == resyncs + 1
        assert _corpus(follower.engine, "mover") == expected
        assert follower.engine.verify().ok

        # And the follower keeps tailing the new owner's updates.
        row = cluster.query("//age/text()", document="mover")[0]
        cluster.update_text("mover", row[2], "8888")
        while follower.poll_once():
            pass
        assert follower.engine.query("//p[.//age = 8888]")
    finally:
        if follower is not None:
            follower.close()
        cluster.stop()
