"""Property-style catch-up test: a follower that polls sporadically
through a randomized stream of updates, checkpoints and bulk loads
must always converge to the primary's exact state.

The schedule is seeded and the follower is driven by hand
(``poll_once``), so any failing interleaving replays deterministically.
Checkpoints exercise the truncation/reset protocol, bulk loads the
``bulk_stamp`` resync path, and the final differential check compares
the follower against both the primary and the naive full-scan oracle
on the follower's own replica.
"""

import random

import pytest

from ..concurrent.harness import QUERY_MAKERS, oracle
from .conftest import wait_until


def _drain(follower):
    """Poll until two consecutive polls make no progress."""
    idle = 0
    while idle < 2:
        before = (follower.applied_records, follower.resyncs,
                  follower._cursor_epoch, follower._cursor_offset)
        follower.poll_once()
        after = (follower.applied_records, follower.resyncs,
                 follower._cursor_epoch, follower._cursor_offset)
        idle = idle + 1 if after == before else 0


@pytest.mark.parametrize("seed", [3, 17, 92])
def test_catchup_converges_through_checkpoints_and_loads(
        seed, primary, make_follower):
    rng = random.Random(seed)
    follower = make_follower(name=f"catchup-{seed}")
    loads = 0
    for step in range(120):
        roll = rng.random()
        if roll < 0.05:
            primary.db.checkpoint()
        elif roll < 0.08:
            loads += 1
            primary.db.load(f"doc{seed}x{loads}",
                            f"<d><v>{9_000_000 + loads}</v></d>")
        elif roll < 0.6:
            primary.db.update_text(
                rng.choice(primary.age_nids), str(rng.randrange(25)))
        else:
            primary.db.update_text(
                rng.choice(primary.name_nids), f"n{rng.randrange(12)}")
        if rng.random() < 0.3:
            follower.poll_once()
    _drain(follower)

    # Differential vs the primary: identical rows for every probe.
    probes = ["//p[.//age >= 0]", '//p[.//name = "n3"]']
    probes += [QUERY_MAKERS[i % len(QUERY_MAKERS)](rng) for i in range(6)]
    for probe in probes:
        assert sorted(follower.engine.query_rows(probe)) \
            == sorted(primary.db.query_rows(probe)), (probe, seed)

    # Differential vs the oracle on the follower's own replica.
    doc = follower.engine.store.document("people")
    for probe in probes:
        expected = oracle(doc, probe)
        got = sorted(
            nid for d, _pre, nid in follower.engine.query_rows(probe)
            if d == "people"
        )
        assert got == expected, (probe, seed)

    # Every bulk load went through a snapshot resync and arrived.
    assert follower.resyncs >= 1 + loads
    for i in range(1, loads + 1):
        assert len(follower.engine.query(f"//v[. = {9_000_000 + i}]")) == 1
    assert follower.engine.verify().ok, seed


def test_follower_restart_resyncs_from_scratch(primary, make_follower):
    """A restarted follower holds no cursor state: it rebuilds from the
    latest snapshot and tails on — the crash-safety story is 'resync',
    not cursor persistence."""
    from repro.repl import Follower

    follower = make_follower(name="restarting")
    primary.db.update_text(primary.age_nids[0], "123")
    follower.poll_once()
    assert len(follower.engine.query("//p[.//age = 123]")) == 1
    path = follower.path
    follower.close()

    primary.db.update_text(primary.age_nids[0], "456")
    reborn = Follower(path, primary.addr, poll_interval=0.005)
    reborn.start()
    try:
        wait_until(lambda: reborn.engine.query("//p[.//age = 456]"),
                   message="restarted follower catch-up")
        assert reborn.resyncs == 1
        assert reborn.engine.verify().ok
    finally:
        reborn.close()
