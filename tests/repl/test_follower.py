"""Follower basics: snapshot restore, frame tailing, differential
equivalence with the primary, and serving through a FollowerServer."""

import pytest

from repro.client import Client
from repro.repl import FollowerServer
from repro.repl.follower import ReplicationError

from ..concurrent.harness import QUERY_MAKERS, oracle
from .conftest import wait_until

PROBES = [
    "//p[.//age = 3]",
    '//p[.//name = "n5"]',
    "//p[.//age >= 12]",
]


def _caught_up(follower, primary) -> bool:
    return all(
        sorted(follower.engine.query_rows(probe))
        == sorted(primary.db.query_rows(probe))
        for probe in PROBES
    )


class TestSync:
    def test_sync_restores_committed_snapshot(self, primary, make_follower):
        follower = make_follower()
        assert follower.resyncs == 1
        for probe in PROBES:
            assert sorted(follower.engine.query_rows(probe)) \
                == sorted(primary.db.query_rows(probe))
        assert follower.engine.verify().ok

    def test_uncheckpointed_tail_ships_as_frames(self, primary,
                                                 make_follower):
        """An update after the last checkpoint is NOT in the snapshot —
        it must arrive via the frame stream, not the restore."""
        primary.db.update_text(primary.age_nids[0], "4242")
        follower = make_follower()
        assert follower.engine.query("//p[.//age = 4242]") == []
        assert follower.poll_once() >= 1
        assert len(follower.engine.query("//p[.//age = 4242]")) == 1

    def test_sync_requires_running_server(self, tmp_path, primary):
        from repro.repl import Follower

        primary.stop()
        follower = Follower(str(tmp_path / "orphan"), primary.addr)
        with pytest.raises((ConnectionError, OSError)):
            follower.sync()


class TestTailing:
    def test_tailing_converges(self, primary, make_follower):
        import random

        follower = make_follower(start=True)
        rng = random.Random(7)
        for _ in range(40):
            if rng.random() < 0.7:
                primary.db.update_text(
                    rng.choice(primary.age_nids), str(rng.randrange(25)))
            else:
                primary.db.update_text(
                    rng.choice(primary.name_nids), f"n{rng.randrange(12)}")
        wait_until(lambda: _caught_up(follower, primary),
                   message="follower convergence")
        assert follower.applied_records >= 40
        # The follower's own engine agrees with the naive full-scan
        # oracle on its own replica of the document.
        rng = random.Random(11)
        for _ in range(10):
            text = rng.choice(QUERY_MAKERS)(rng)
            doc = follower.engine.store.document("people")
            assert sorted(follower.engine.query(text)) == oracle(doc, text)
        assert follower.engine.verify().ok

    def test_checkpoint_truncation_resets_cursor(self, primary,
                                                 make_follower):
        follower = make_follower()
        primary.db.update_text(primary.age_nids[0], "777")
        assert follower.poll_once() == 1
        primary.db.checkpoint()  # truncates the primary WAL
        # Cursor now sits exactly at the truncation mark: the poll
        # fast-forwards ("reset") without a snapshot transfer.
        resyncs = follower.resyncs
        follower.poll_once()
        assert follower.resyncs == resyncs
        primary.db.update_text(primary.age_nids[1], "888")
        wait_until(lambda: follower.poll_once() or
                   follower.engine.query("//p[.//age = 888]"),
                   message="post-checkpoint frame")
        assert len(follower.engine.query("//p[.//age = 888]")) == 1

    def test_bulk_load_forces_resync(self, primary, make_follower):
        follower = make_follower()
        resyncs = follower.resyncs
        primary.db.load("extra", "<extra><v>123321</v></extra>")
        follower.poll_once()
        assert follower.resyncs == resyncs + 1
        assert len(follower.engine.query("//v[. = 123321]")) == 1


class TestFollowerServer:
    def test_reads_local_writes_proxied(self, primary, make_follower):
        follower = make_follower(start=True)
        server = FollowerServer(follower)
        host, port = server.start()
        try:
            with Client(host, port) as client:
                client.handshake(("replication", "as_of"))
                # A write against the follower lands on the primary...
                client.update_text(primary.age_nids[0], "31337")
                assert len(primary.db.query("//p[.//age = 31337]")) == 1
                # ...and replication makes it readable here too.
                wait_until(
                    lambda: client.query("//p[.//age = 31337]"),
                    message="proxied write to replicate back",
                )
        finally:
            server.stop()

    def test_unstarted_follower_cannot_serve(self, tmp_path, primary):
        from repro.repl import Follower

        follower = Follower(str(tmp_path / "cold"), primary.addr)
        with pytest.raises(ReplicationError, match="no engine"):
            FollowerServer(follower).start()

    def test_promoted_server_runs_writes_locally(self, primary,
                                                 make_follower):
        follower = make_follower(start=True)
        primary.db.update_text(primary.age_nids[0], "555")
        wait_until(lambda: follower.engine.query("//p[.//age = 555]"),
                   message="pre-promotion replication")
        server = FollowerServer(follower)
        host, port = server.start()
        try:
            primary.stop()
            follower.promote()
            with Client(host, port) as client:
                client.update_text(primary.age_nids[1], "666")
                assert len(client.query("//p[.//age = 666]")) == 1
            # The write never went near the (dead) primary.
            assert len(follower.engine.query("//p[.//age = 666]")) == 1
        finally:
            server.stop()
