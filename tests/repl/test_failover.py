"""Failover: kill the primary process mid-commit, promote a follower.

The primary runs as a real OS process (``repro.shard.worker``) armed
to ``os._exit`` inside a WAL append, leaving a torn frame on disk —
the same shape as a power cut mid group commit.  Replication is
asynchronous, so the contract under test is:

* the promoted follower serves the *shipped prefix* of acked updates
  (bounded staleness, never a torn or reordered state), and
* the dead primary's directory still recovers the *full* acked set
  via ordinary WAL replay — nothing acknowledged is ever lost.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.client import Client, ClientError
from repro.database import Database
from repro.repl import Follower
from repro.shard.worker import KillSwitch

from ..concurrent.harness import classified_text_nids, fixture_xml
from .conftest import wait_until


class WorkerPrimary:
    """A primary served by a ``repro.shard.worker`` subprocess."""

    def __init__(self, path: str, kill_at: str | None = None,
                 keep_bytes: int | None = None):
        argv = [
            sys.executable, "-m", "repro.shard.worker",
            "--path", path, "--checkpoint-every", "0",
            "--no-group-commit",
        ]
        if kill_at is not None:
            argv += ["--kill-at", kill_at]
        if keep_bytes is not None:
            argv += ["--kill-keep-bytes", str(keep_bytes)]
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", "src")
        self.proc = subprocess.Popen(
            argv, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
            text=True, env=env,
        )
        line = self.proc.stdout.readline()
        assert line.startswith("PORT "), f"unexpected worker output {line!r}"
        self.addr = ("127.0.0.1", int(line.split()[1]))

    def wait_dead(self, timeout: float = 15.0) -> int:
        return self.proc.wait(timeout=timeout)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()


@pytest.fixture
def worker_paths(tmp_path):
    return str(tmp_path / "primary"), str(tmp_path / "follower")


def test_promoted_follower_serves_acked_prefix(tmp_path, worker_paths):
    primary_path, follower_path = worker_paths
    # The 6th WAL append dies mid-write with a 7-byte torn prefix:
    # updates 1..5 are acked, update 6 is doomed and never acked.
    primary = WorkerPrimary(primary_path, kill_at="wal.append:6",
                            keep_bytes=7)
    follower = None
    try:
        xml = fixture_xml()
        with Database(str(tmp_path / "probe")) as probe:
            ages, _names = classified_text_nids(probe.load("probe", xml))
        client = Client(*primary.addr)
        client.call("load", name="people", xml=xml)

        follower = Follower(follower_path, primary.addr,
                            poll_interval=0.002)
        follower.start()

        acked = []
        for i in range(1, 6):
            client.update_text(ages[0], str(1000 + i))
            acked.append(1000 + i)
        # Let replication fully drain before the crash, so the shipped
        # prefix is deterministic (the whole acked set).
        wait_until(
            lambda: follower.engine.query(f"//p[.//age = {acked[-1]}]"),
            message="follower to catch up pre-crash",
        )

        with pytest.raises((ClientError, ConnectionError, OSError)):
            client.update_text(ages[0], "6666")  # never acked
        assert primary.wait_dead() == KillSwitch.EXIT_CODE
        client.close()

        # Promote: the follower keeps serving, at the acked prefix.
        engine = follower.promote()
        assert len(engine.query(f"//p[.//age = {acked[-1]}]")) == 1
        assert engine.query("//p[.//age = 6666]") == []
        assert engine.verify().ok

        # The promoted engine accepts writes of its own.
        engine.update_text(ages[0], "7777")
        assert len(engine.query("//p[.//age = 7777]")) == 1

        # And the dead primary's directory recovers every acked update
        # (torn tail discarded) — asynchronous replication lost nothing
        # that was acknowledged.
        with Database(primary_path) as revived:
            assert revived.recovery.torn_tail
            assert len(revived.query(f"//p[.//age = {acked[-1]}]")) == 1
            assert revived.query("//p[.//age = 6666]") == []
            assert revived.verify().ok
    finally:
        if follower is not None:
            follower.close()
        primary.terminate()


def test_follower_survives_primary_restart(worker_paths, tmp_path):
    """A bounced primary (same directory, new process) resumes feeding
    the same follower: the tail loop reconnects and the epoch/offset
    protocol forces a clean resync instead of serving garbage."""
    primary_path, follower_path = worker_paths
    primary = WorkerPrimary(primary_path)
    follower = None
    try:
        xml = fixture_xml()
        with Database(str(tmp_path / "probe")) as probe:
            ages, _names = classified_text_nids(probe.load("probe", xml))
        with Client(*primary.addr) as client:
            client.call("load", name="people", xml=xml)
            client.update_text(ages[0], "111")

        follower = Follower(follower_path, primary.addr,
                            poll_interval=0.002)
        follower.start()
        wait_until(lambda: follower.engine.query("//p[.//age = 111]"),
                   message="initial replication")

        primary.terminate()
        time.sleep(0.1)  # let the tail loop notice the outage
        revived = WorkerPrimary(primary_path)
        try:
            # The follower's primary address is fixed; rebind the new
            # process's port into it (test-only plumbing — production
            # deployments put a stable address in front).
            follower.primary_addr = revived.addr
            with Client(*revived.addr) as client:
                client.update_text(ages[0], "222")
            wait_until(
                lambda: follower.engine.query("//p[.//age = 222]"),
                message="replication after primary restart",
            )
            assert follower.engine.query("//p[.//age = 111]") == []
            assert follower.engine.verify().ok
        finally:
            revived.terminate()
    finally:
        if follower is not None:
            follower.close()
        primary.terminate()
