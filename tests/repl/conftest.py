"""Shared fixtures for the replication tests: a live primary server
plus helpers to grow followers against it and wait for convergence."""

import time

import pytest

from repro.database import Database
from repro.repl import Follower
from repro.server import ServerThread

from ..concurrent.harness import classified_text_nids, fixture_xml


def wait_until(predicate, timeout: float = 15.0, interval: float = 0.01,
               message: str = "condition"):
    """Poll ``predicate`` until truthy; the value is returned."""
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(interval)


class Primary:
    """A concurrent database behind a server thread, fixture loaded."""

    def __init__(self, tmp_path, **db_kwargs):
        db_kwargs.setdefault("typed", ("double",))
        db_kwargs.setdefault("checkpoint_every", 0)
        db_kwargs.setdefault("concurrent", True)
        self.db = Database(str(tmp_path / "primary"), **db_kwargs)
        self.doc = self.db.load("people", fixture_xml())
        self.age_nids, self.name_nids = classified_text_nids(self.doc)
        self.thread = ServerThread(self.db)
        self.host, self.port = self.thread.start()
        self.addr = (self.host, self.port)
        self._stopped = False

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self.thread.stop()


@pytest.fixture
def primary(tmp_path):
    box = Primary(tmp_path)
    yield box
    box.stop()


@pytest.fixture
def make_follower(tmp_path, primary):
    """Factory for followers of the ``primary`` fixture; all closed on
    teardown."""
    followers = []

    def build(name: str = "follower", start: bool = False,
              **kwargs) -> Follower:
        kwargs.setdefault("poll_interval", 0.005)
        follower = Follower(str(tmp_path / name), primary.addr, **kwargs)
        followers.append(follower)
        if start:
            follower.start()
        else:
            follower.sync()
        return follower

    yield build
    for follower in followers:
        follower.close()
