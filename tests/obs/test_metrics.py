"""Tests for the zero-dependency metrics layer."""

from repro.obs import Counter, MetricsRegistry, TimerHistogram, ValueHistogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("hits")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6


class TestTimerHistogram:
    def test_observe_tracks_aggregates(self):
        timer = TimerHistogram("t")
        timer.observe(0.001)
        timer.observe(0.003)
        assert timer.count == 2
        assert timer.total == 0.004
        assert timer.minimum == 0.001
        assert timer.maximum == 0.003
        assert timer.mean == 0.002

    def test_power_of_two_buckets(self):
        timer = TimerHistogram("t")
        timer.observe(0.0)  # bucket 0 (<= 1us)
        timer.observe(3e-6)  # 3us -> bucket 2 (<= 4us)
        timer.observe(1000.0)  # far beyond range -> last bucket
        assert timer.buckets[0] == 1
        assert timer.buckets[2] == 1
        assert timer.buckets[-1] == 1

    def test_time_context_manager(self):
        timer = TimerHistogram("t")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0

    def test_snapshot_shape(self):
        timer = TimerHistogram("t")
        assert timer.snapshot()["min_s"] == 0.0  # empty: no inf leaks out
        timer.observe(3e-6)
        snap = timer.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == {"<4us": 1}


class TestValueHistogram:
    def test_observe_tracks_aggregates(self):
        histogram = ValueHistogram("sizes")
        histogram.observe(1)
        histogram.observe(3)
        assert histogram.count == 2
        assert histogram.total == 4
        assert histogram.minimum == 1
        assert histogram.maximum == 3
        assert histogram.mean == 2

    def test_power_of_two_buckets_over_raw_values(self):
        histogram = ValueHistogram("sizes")
        histogram.observe(0)    # bucket 0 (< 1)
        histogram.observe(3)    # bucket 2 (< 4)
        histogram.observe(2**40)  # beyond range -> last bucket
        assert histogram.buckets[0] == 1
        assert histogram.buckets[2] == 1
        assert histogram.buckets[-1] == 1

    def test_snapshot_shape(self):
        histogram = ValueHistogram("sizes")
        assert histogram.snapshot()["min"] == 0.0  # empty: no inf leaks
        histogram.observe(3)
        snap = histogram.snapshot()
        assert snap["count"] == 1
        assert snap["buckets"] == {"<4": 1}


class TestMetricsRegistry:
    def test_counter_identity_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        registry.timer("latency").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"queries": 3}
        assert snap["timers"]["latency"]["count"] == 1
        import json

        json.dumps(snap)  # must be JSON-serialisable as-is

    def test_reset_clears_values_keeps_names(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(9)
        registry.timer("t").observe(0.1)
        registry.histogram("h").observe(5)
        registry.reset()
        assert counter.value == 0
        assert registry.timer("t").count == 0
        assert registry.histogram("h").count == 0
        # Same objects for counters (callers may hold references).
        assert registry.counter("c") is counter

    def test_histograms_in_snapshot(self):
        registry = MetricsRegistry()
        registry.histogram("wal.group.batch_size").observe(8)
        snap = registry.snapshot()
        assert snap["histograms"]["wal.group.batch_size"]["count"] == 1
        import json

        json.dumps(snap)
