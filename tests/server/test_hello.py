"""Wire-protocol ``hello`` handshake: version + feature negotiation."""

import pytest

from repro import wire
from repro.client import Client, ClientError


class TestCheckHello:
    def test_no_protocol_field_is_accepted(self):
        assert wire.check_hello({}) is None

    def test_matching_protocol_accepted(self):
        assert wire.check_hello({"protocol": wire.PROTOCOL_VERSION}) is None

    def test_mismatched_protocol_rejected(self):
        reason = wire.check_hello({"protocol": wire.PROTOCOL_VERSION + 1})
        assert reason is not None
        assert str(wire.PROTOCOL_VERSION) in reason

    def test_known_features_accepted(self):
        message = {"protocol": wire.PROTOCOL_VERSION,
                   "features": list(wire.FEATURES)}
        assert wire.check_hello(message) is None

    def test_unknown_feature_rejected(self):
        message = {"protocol": wire.PROTOCOL_VERSION,
                   "features": ["rows", "time-travel"]}
        reason = wire.check_hello(message)
        assert reason is not None
        assert "time-travel" in reason

    def test_hello_request_shape(self):
        assert wire.hello_request() == {"protocol": wire.PROTOCOL_VERSION}
        assert wire.hello_request(("rows",)) == {
            "protocol": wire.PROTOCOL_VERSION,
            "features": ["rows"],
        }


class TestServerHandshake:
    def test_legacy_hello_still_answers(self, served):
        with Client(served.host, served.port) as client:
            result = client.hello()
        assert result["protocol"] == wire.PROTOCOL_VERSION
        assert result["features"] == list(wire.FEATURES)
        assert result["documents"] == ["people"]

    def test_handshake_happy_path(self, served):
        with Client(served.host, served.port) as client:
            result = client.handshake(features=("rows", "views"))
        assert result["protocol"] == wire.PROTOCOL_VERSION

    def test_version_mismatch_is_stable_error(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as info:
                client.call("hello", protocol=wire.PROTOCOL_VERSION + 1)
        assert info.value.code == wire.E_UNSUPPORTED_VERSION
        # The rejection advertises what the server does speak.
        assert info.value.response["protocol"] == wire.PROTOCOL_VERSION

    def test_unknown_feature_is_stable_error(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as info:
                client.handshake(features=("rows", "time-travel"))
        assert info.value.code == wire.E_UNSUPPORTED_VERSION
        assert "time-travel" in info.value.message

    def test_connection_survives_rejected_hello(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError):
                client.handshake(features=("time-travel",))
            assert client.ping() == {}

    def test_client_rejects_newer_server(self, served, monkeypatch):
        # A server that (hypothetically) accepted our hello but answers
        # with a different protocol number must be rejected client-side
        # too.  The server module captured PROTOCOL_VERSION at import,
        # so patching the wire module shifts only the client's idea of
        # its own version.
        monkeypatch.setattr(wire, "PROTOCOL_VERSION",
                            wire.PROTOCOL_VERSION + 1)
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as info:
                client.handshake()
        assert info.value.code == wire.E_UNSUPPORTED_VERSION
