"""Differential test: network answers equal naive in-process answers.

Reader threads (each its own connection) repeatedly pin a session
view and run every query twice at that view — once through the
planner/indices (``use_indexes=True``) and once forced down the
full-scan path (``use_indexes=False``), which the executor routes to
:func:`repro.query.evaluate_naive`.  Both run at the *same pinned
epoch*, so any divergence is a real snapshot-isolation or index bug,
not scheduling noise.  Writer threads stream text updates over their
own connections the whole time.
"""

import threading

from repro.client import Client

from ..concurrent.harness import AGES, classified_text_nids
from .conftest import Served

READERS = 3
WRITERS = 2
ROUNDS = 25

_QUERIES = [
    "//p[.//age = 7]",
    '//p[.//name = "n3"]',
    "//p[.//age >= 12]",
]


def test_network_results_match_naive_at_pinned_epoch(tmp_path):
    box = Served(tmp_path, server_kwargs={"max_pending_updates": 64})
    failures: list[str] = []
    checks = 0
    checks_lock = threading.Lock()
    stop = threading.Event()

    def reader(slot: int) -> None:
        nonlocal checks
        with Client(box.host, box.port) as client:
            for round_no in range(ROUNDS):
                view = client.open_view()["view"]
                try:
                    for text in _QUERIES:
                        indexed = client.query(text, view=view,
                                               use_indexes=True)
                        naive = client.query(text, view=view,
                                             use_indexes=False)
                        if indexed != naive:
                            failures.append(
                                f"reader {slot} round {round_no} "
                                f"{text!r}: indexed={indexed} "
                                f"naive={naive}"
                            )
                            return
                        with checks_lock:
                            checks += 1
                finally:
                    client.close_view(view)

    def writer(slot: int) -> None:
        ages, names = classified_text_nids(box.doc)
        nids = ages if slot % 2 == 0 else names
        with Client(box.host, box.port) as client:
            k = 0
            while not stop.is_set():
                nid = nids[(slot + k) % len(nids)]
                value = str(k % AGES) if slot % 2 == 0 else f"n{k % 12}"
                client.update_text(nid, value, busy_retries=50)
                k += 1

    try:
        reader_threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(READERS)
        ]
        writer_threads = [
            threading.Thread(target=writer, args=(slot,))
            for slot in range(WRITERS)
        ]
        for t in writer_threads + reader_threads:
            t.start()
        for t in reader_threads:
            t.join(timeout=300)
        stop.set()
        for t in writer_threads:
            t.join(timeout=300)
    finally:
        stop.set()
        box.stop()

    assert not failures, failures[0]
    assert checks == READERS * ROUNDS * len(_QUERIES)
    # The database survives the workload with indices intact.
    from repro.database import Database

    db = Database(str(tmp_path / "db"), typed=("double",))
    try:
        assert db.verify().ok
    finally:
        db.close()
