"""Drain and crash-recovery round-trips through the server.

The serving contract under test: **every update acknowledged over the
wire is durable** — across a graceful drain (SIGTERM path) and across
a simulated power cut inside the group-commit leader — and a failed
or unacknowledged update never silently half-applies.
"""

import pytest

from repro.client import Client, ClientError
from repro.database import Database
from repro.storage import faults

from ..concurrent.harness import classified_text_nids
from .conftest import Served


def _reopen(tmp_path) -> Database:
    return Database(str(tmp_path / "db"), typed=("double",))


def _text_of(db: Database, nid: int) -> str:
    doc = db.store.documents["people"]
    return doc.text_of(doc.pre_of(nid))


class TestGracefulDrain:
    def test_acked_updates_survive_drain_and_reopen(self, tmp_path):
        box = Served(tmp_path, db_kwargs={"group_commit": True,
                                          "sync": "fsync"})
        acked: dict[int, str] = {}
        try:
            ages, _ = classified_text_nids(box.doc)
            with Client(box.host, box.port) as client:
                for i, nid in enumerate(ages[:8]):
                    value = str(60 + i)  # outside the fixture's range
                    client.update_text(nid, value)
                    acked[nid] = value
        finally:
            box.stop()

        assert box.server.close_error is None
        assert box.server._state == "closed"
        assert box.db._wal._fh.closed

        db = _reopen(tmp_path)
        try:
            assert db.recovery.clean, "graceful drain must checkpoint"
            assert db.recovered_records == 0
            for nid, value in acked.items():
                assert _text_of(db, nid) == value
                assert len(db.query(f"//p[.//age = {value}]")) == 1
            assert db.verify().ok
        finally:
            db.close()

    def test_drain_disconnects_clients(self, tmp_path):
        box = Served(tmp_path)
        client = Client(box.host, box.port)
        try:
            client.ping()
            box.stop()
            with pytest.raises(ClientError) as err:
                client.ping()
            assert err.value.code == "disconnected"
        finally:
            client.close()
            box.stop()

    def test_stop_is_idempotent(self, tmp_path):
        box = Served(tmp_path)
        box.stop()
        box.stop()
        assert box.server._state == "closed"


class TestKillMidCommit:
    def test_crash_in_group_commit_leader_through_server(self, tmp_path):
        """Simulated power cut in the WAL append path, via the wire.

        Acked updates stay durable; the crashed update is *reported*
        as a failure (never a false ack) and is absent after replay;
        the drain records the poison on ``close_error`` but still
        releases the WAL handle; the reopened database replays exactly
        the acknowledged prefix and verifies clean.
        """
        box = Served(tmp_path, db_kwargs={"group_commit": True,
                                          "sync": "fsync"})
        acked: dict[int, str] = {}
        try:
            ages, _ = classified_text_nids(box.doc)
            with Client(box.host, box.port) as client:
                for i, nid in enumerate(ages[:5]):
                    value = str(70 + i)
                    client.update_text(nid, value)
                    acked[nid] = value

                # Power cut inside the next leader write.
                plan = faults.CrashPlan("wal.append", occurrence=1)
                with faults.injected(faults.FaultInjector(crash=plan)):
                    with pytest.raises(ClientError) as err:
                        client.update_text(ages[5], "99")
                    assert err.value.code == "internal"
                    assert "InjectedCrash" in err.value.message

                # The log is poisoned: later updates fail loudly too,
                # but the connection and reads keep working.
                with pytest.raises(ClientError):
                    client.update_text(ages[6], "98")
                assert client.query("//p[.//age = 70]")
        finally:
            box.stop()

        # Drain hit the poisoned close: recorded, WAL still released.
        assert box.server.close_error is not None
        assert isinstance(box.server.close_error, faults.InjectedCrash)
        assert box.db._wal._fh.closed

        db = _reopen(tmp_path)
        try:
            for nid, value in acked.items():
                assert _text_of(db, nid) == value, (
                    "acknowledged commit lost across crash recovery"
                )
            # The crashed and post-poison updates were never acked and
            # never became durable.
            assert db.query("//p[.//age = 99]") == []
            assert db.query("//p[.//age = 98]") == []
            assert db.verify().ok
        finally:
            db.close()

    def test_acked_prefix_under_crash_at_later_batch(self, tmp_path):
        """Crash at the Nth append: exactly the acked prefix replays."""
        box = Served(tmp_path, db_kwargs={"group_commit": True,
                                          "sync": "fsync"})
        acked: dict[int, str] = {}
        try:
            ages, _ = classified_text_nids(box.doc)
            plan = faults.CrashPlan("wal.append", occurrence=4)
            with faults.injected(faults.FaultInjector(crash=plan)):
                with Client(box.host, box.port) as client:
                    failed = False
                    for i, nid in enumerate(ages[:6]):
                        value = str(80 + i)
                        try:
                            client.update_text(nid, value)
                        except ClientError:
                            failed = True
                            break
                        acked[nid] = value
                    assert failed, "crash plan never fired"
                    assert len(acked) == 3
        finally:
            box.stop()

        db = _reopen(tmp_path)
        try:
            for nid, value in acked.items():
                assert _text_of(db, nid) == value
            assert db.query("//p[.//age = 83]") == []
            assert db.verify().ok
        finally:
            db.close()
