"""Shared helpers for the network serving tests."""

import pytest

from repro.database import Database
from repro.server import ServerThread

from ..concurrent.harness import fixture_xml


def open_db(tmp_path, **kwargs) -> Database:
    kwargs.setdefault("typed", ("double",))
    kwargs.setdefault("checkpoint_every", 0)
    kwargs.setdefault("concurrent", True)
    return Database(str(tmp_path / "db"), **kwargs)


class Served:
    """A database behind a live server thread, with teardown."""

    def __init__(self, tmp_path, db_kwargs=None, server_kwargs=None):
        self.db = open_db(tmp_path, **(db_kwargs or {}))
        self.doc = self.db.load("people", fixture_xml())
        self.thread = ServerThread(self.db, **(server_kwargs or {}))
        self.host, self.port = self.thread.start()
        self._stopped = False

    def stop(self) -> None:
        if not self._stopped:
            self._stopped = True
            self.thread.stop()

    @property
    def server(self):
        return self.thread.server


@pytest.fixture
def served(tmp_path):
    box = Served(tmp_path)
    yield box
    box.stop()
