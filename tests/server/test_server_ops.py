"""Integration tests for the server's request operations.

Each test drives a live :class:`~repro.server.ServerThread` over real
sockets with the blocking :class:`~repro.client.Client`.
"""

import time

import pytest

from repro import wire
from repro.client import Client, ClientError

from ..concurrent.harness import classified_text_nids


class TestHandshake:
    def test_hello_reports_protocol_and_documents(self, served):
        with Client(served.host, served.port) as client:
            hello = client.hello()
        assert hello["protocol"] == wire.PROTOCOL_VERSION
        assert hello["documents"] == ["people"]
        assert hello["session"] >= 1

    def test_ping(self, served):
        with Client(served.host, served.port) as client:
            assert client.ping() == {}

    def test_sessions_get_distinct_ids(self, served):
        with Client(served.host, served.port) as first:
            with Client(served.host, served.port) as second:
                assert (first.hello()["session"]
                        != second.hello()["session"])


class TestQueries:
    def test_query_matches_in_process_result(self, served):
        with Client(served.host, served.port) as client:
            over_wire = client.query("//p[.//age = 7]")
        assert over_wire == served.db.query("//p[.//age = 7]")
        assert over_wire  # fixture guarantees hits

    def test_indexed_and_naive_agree_over_wire(self, served):
        with Client(served.host, served.port) as client:
            indexed = client.query("//p[.//age >= 20]", use_indexes=True)
            naive = client.query("//p[.//age >= 20]", use_indexes=False)
        assert indexed == naive

    def test_update_visibility(self, served):
        ages, _names = classified_text_nids(served.doc)
        with Client(served.host, served.port) as client:
            before = client.query("//p[.//age = 97]")
            assert before == []
            ack = client.update_text(ages[0], "97")
            assert ack["recomputed"] >= 1
            after = client.query("//p[.//age = 97]")
        assert len(after) == 1

    def test_lookup_modes(self, served):
        with Client(served.host, served.port) as client:
            strings = client.lookup("string", value="n3")
            typed = client.lookup("typed_range", low=5, high=7)
            contains = client.lookup("contains", value="n1")
        assert sorted(strings) == sorted(served.db.lookup_string("n3"))
        in_process = [
            nid for _v, nid in served.db.lookup_typed_range("double", 5, 7)
        ]
        assert sorted(typed) == sorted(in_process)
        assert contains

    def test_explain(self, served):
        with Client(served.host, served.port) as client:
            explanation = client.explain("//p[.//age = 7]")
        assert "summary" in explanation and "tree" in explanation

    def test_metrics_include_server_counters(self, served):
        with Client(served.host, served.port) as client:
            client.ping()
            metrics = client.metrics()
        assert metrics["counters"]["server.requests"] >= 2
        assert metrics["counters"]["server.connections"] >= 1

    def test_pipelined_requests_share_one_connection(self, served):
        with Client(served.host, served.port) as client:
            ids = [client.send("query", xpath="//p[.//age = %d]" % k)
                   for k in range(5)]
            # Collect in reverse: responses are matched by id, not order.
            results = {rid: client.receive(rid) for rid in reversed(ids)}
        for k, rid in enumerate(ids):
            assert results[rid]["nids"] == served.db.query(
                "//p[.//age = %d]" % k
            )


class TestPinnedViews:
    def test_pinned_view_is_stable_across_updates(self, served):
        ages, _ = classified_text_nids(served.doc)
        with Client(served.host, served.port) as client:
            view = client.open_view()["view"]
            pinned_before = client.query("//p[.//age = 3]", view=view)
            client.update_text(ages[3], "96")  # age 3 -> 96
            live = client.query("//p[.//age = 3]", view=None)
            pinned_after = client.query("//p[.//age = 3]", view=view)
            client.close_view(view)
        # The live view lost a hit; the pinned view did not move.
        assert pinned_after == pinned_before
        assert len(live) == len(pinned_before) - 1

    def test_structural_update_invalidates_view(self, served):
        root_nid = served.doc.nid[served.doc.root_element()]
        with Client(served.host, served.port) as client:
            view = client.open_view()["view"]
            client.insert_xml(
                root_nid, "<p><name>nx</name><age>40</age></p>"
            )
            with pytest.raises(ClientError) as err:
                client.query("//p[.//age = 7]", view=view)
        assert err.value.code == wire.E_VIEW_INVALID

    def test_checkpoint_does_not_invalidate_view(self, served):
        with Client(served.host, served.port) as client:
            view = client.open_view()["view"]
            client.checkpoint()
            nids = client.query("//p[.//age = 7]", view=view)
        assert nids == served.db.query("//p[.//age = 7]")

    def test_closed_view_is_unknown(self, served):
        with Client(served.host, served.port) as client:
            view = client.open_view()["view"]
            client.close_view(view)
            with pytest.raises(ClientError) as err:
                client.query("//p", view=view)
        assert err.value.code == wire.E_NO_VIEW

    def test_disconnect_releases_session_pins(self, served):
        controller = served.db.manager.concurrency
        client = Client(served.host, served.port)
        client.open_view()
        assert controller._pins
        client.close()
        deadline = time.time() + 10
        while controller._pins and time.time() < deadline:
            time.sleep(0.01)
        assert not controller._pins, "session pin leaked after disconnect"


class TestErrors:
    def test_unknown_op(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as err:
                client.call("frobnicate")
        assert err.value.code == wire.E_UNKNOWN_OP

    def test_missing_parameter(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as err:
                client.call("query")  # no xpath
        assert err.value.code == wire.E_BAD_REQUEST

    def test_bad_use_indexes(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as err:
                client.call("query", xpath="//p", use_indexes="maybe")
        assert err.value.code == wire.E_BAD_REQUEST

    def test_engine_error_is_reported_not_fatal(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as err:
                client.query("//p[")  # parse error -> ReproError
            assert err.value.code == wire.E_ENGINE
            assert client.ping() == {}  # connection survives

    def test_unknown_update_action(self, served):
        with Client(served.host, served.port) as client:
            with pytest.raises(ClientError) as err:
                client.call("update", action="shred")
        assert err.value.code == wire.E_BAD_REQUEST


class TestAdmissionControl:
    def test_busy_rejection_when_update_queue_full(self, tmp_path):
        from .conftest import Served

        box = Served(tmp_path, server_kwargs={"max_pending_updates": 1,
                                              "write_workers": 1})
        try:
            ages, _ = classified_text_nids(box.doc)
            controller = box.db.manager.concurrency
            with Client(box.host, box.port) as client:
                # Stall the engine's writer path: the first update
                # occupies the only admission slot but cannot finish.
                controller.write_lock.acquire()
                try:
                    first = client.send("update", action="update_text",
                                        nid=ages[0], text="55")
                    deadline = time.time() + 10
                    while (box.server._pending_updates < 1
                           and time.time() < deadline):
                        time.sleep(0.005)
                    assert box.server._pending_updates == 1
                    second = client.send("update", action="update_text",
                                         nid=ages[1], text="56")
                    with pytest.raises(ClientError) as err:
                        client.receive(second)
                    assert err.value.code == wire.E_BUSY
                    assert err.value.retry_after_ms > 0
                finally:
                    controller.write_lock.release()
                # The stalled update completes once the engine frees up.
                assert client.receive(first)["recomputed"] >= 1
                # And a retry of the rejected one now succeeds.
                assert client.update_text(ages[1], "56")["recomputed"] >= 1
        finally:
            box.stop()

    def test_draining_server_rejects_new_work(self, served):
        ages, _ = classified_text_nids(served.doc)
        with Client(served.host, served.port) as client:
            client.ping()
            served.server._state = "draining"
            try:
                with pytest.raises(ClientError) as err:
                    client.query("//p")
                assert err.value.code == wire.E_SHUTTING_DOWN
                with pytest.raises(ClientError) as err:
                    client.update_text(ages[0], "1")
                assert err.value.code == wire.E_SHUTTING_DOWN
                assert client.ping() == {}  # liveness probes still answer
            finally:
                served.server._state = "serving"
