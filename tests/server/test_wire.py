"""Framing-layer tests: length-prefixed JSON frames."""

import socket
import struct

import pytest

from repro import wire


def _pair():
    return socket.socketpair()


class TestEncodeDecode:
    def test_roundtrip_over_socketpair(self):
        left, right = _pair()
        try:
            message = {"id": 7, "op": "query", "xpath": "//p", "nested": [1, 2]}
            wire.write_frame(left, message)
            assert wire.read_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_many_frames_preserve_order(self):
        left, right = _pair()
        try:
            for i in range(10):
                wire.write_frame(left, {"id": i})
            for i in range(10):
                assert wire.read_frame(right) == {"id": i}
        finally:
            left.close()
            right.close()

    def test_header_is_big_endian_u32(self):
        frame = wire.encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_unicode_payload(self):
        left, right = _pair()
        try:
            message = {"id": 1, "text": "héllo ☃"}
            wire.write_frame(left, message)
            assert wire.read_frame(right) == message
        finally:
            left.close()
            right.close()


class TestLimits:
    def test_oversized_body_refused_on_encode(self):
        huge = {"blob": "x" * (wire.MAX_FRAME_BYTES + 1)}
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.encode_frame(huge)

    def test_oversized_header_refused_on_decode(self):
        header = struct.pack(">I", wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.decode_header(header)


class TestDegenerateStreams:
    def test_clean_eof_returns_none(self):
        left, right = _pair()
        left.close()
        try:
            assert wire.read_frame(right) is None
        finally:
            right.close()

    def test_eof_mid_header_returns_none(self):
        left, right = _pair()
        try:
            left.sendall(b"\x00\x00")  # half a header, then EOF
            left.close()
            assert wire.read_frame(right) is None
        finally:
            right.close()

    def test_torn_frame_raises(self):
        left, right = _pair()
        try:
            frame = wire.encode_frame({"id": 1, "op": "ping"})
            left.sendall(frame[:-3])  # header + truncated body
            left.close()
            with pytest.raises(wire.WireError, match="mid-frame"):
                wire.read_frame(right)
        finally:
            right.close()

    def test_invalid_json_raises(self):
        left, right = _pair()
        try:
            body = b"{nope"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(wire.WireError, match="JSON"):
                wire.read_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_body_raises(self):
        left, right = _pair()
        try:
            body = b"[1,2,3]"
            left.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(wire.WireError, match="object"):
                wire.read_frame(right)
        finally:
            left.close()
            right.close()


class TestResponseShapes:
    def test_ok_response(self):
        assert wire.ok_response(4, {"nids": []}) == {
            "id": 4, "ok": True, "result": {"nids": []},
        }

    def test_error_response_with_extra(self):
        response = wire.error_response(
            9, wire.E_BUSY, "full", retry_after_ms=25.0
        )
        assert response["ok"] is False
        assert response["error"] == "busy"
        assert response["retry_after_ms"] == 25.0
