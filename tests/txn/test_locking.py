"""Tests for the ancestor-locking baseline transaction manager."""

import threading
import time

import pytest

from repro.core import IndexManager
from repro.errors import TransactionStateError
from repro.txn import LockingTransactionManager, TransactionManager
from repro.xmldb import TEXT

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<age><decades>4</decades>2<years/></age>"
    "</person>"
)


@pytest.fixture()
def setup():
    index_manager = IndexManager(typed=("double",))
    index_manager.load("doc", PERSON)
    return index_manager, LockingTransactionManager(index_manager)


def text_nid(index_manager, content):
    doc = index_manager.store.document("doc")
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(content)


class TestBasics:
    def test_commit(self, setup):
        manager, txns = setup
        with txns.begin() as txn:
            txn.update_text(text_nid(manager, "Dent"), "Prefect")
        assert list(manager.lookup_string("ArthurPrefect"))
        manager.check_consistency()

    def test_abort_restores(self, setup):
        manager, txns = setup
        txn = txns.begin()
        txn.update_text(text_nid(manager, "Dent"), "Prefect")
        txn.abort()
        assert list(manager.lookup_string("ArthurDent"))
        assert not list(manager.lookup_string("ArthurPrefect"))
        manager.check_consistency()

    def test_use_after_commit(self, setup):
        manager, txns = setup
        txn = txns.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.update_text(text_nid(manager, "Dent"), "x")

    def test_locks_released_after_commit(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "Dent")
        with txns.begin() as txn:
            txn.update_text(nid, "A")
        with txns.begin() as txn:  # would deadlock if locks leaked
            txn.update_text(nid, "B")
        doc = manager.store.document("doc")
        assert doc.string_value(doc.pre_of(nid)) == "B"

    def test_lock_statistics_recorded(self, setup):
        manager, txns = setup
        with txns.begin() as txn:
            txn.update_text(text_nid(manager, "Dent"), "X")
        # family text + <family> + <name> + <person> + doc node
        assert txns.lock_acquisitions == 5


class TestContention:
    def test_sibling_writers_block_on_shared_ancestors(self, setup):
        """The root bottleneck: disjoint sibling updates still contend,
        unlike the optimistic manager."""
        manager, txns = setup
        first = text_nid(manager, "Arthur")
        family = text_nid(manager, "Dent")
        order = []
        t1_has_locks = threading.Event()
        release_t1 = threading.Event()

        def holder():
            txn = txns.begin()
            txn.update_text(first, "Ford")
            t1_has_locks.set()
            release_t1.wait()
            order.append("t1-commit")
            txn.commit()

        def contender():
            t1_has_locks.wait()
            txn = txns.begin()
            txn.update_text(family, "Prefect")  # blocks on shared locks
            order.append("t2-acquired")
            txn.commit()

        threads = [
            threading.Thread(target=holder),
            threading.Thread(target=contender),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.15)  # contender must be stuck retrying
        assert "t2-acquired" not in order
        release_t1.set()
        for thread in threads:
            thread.join()
        assert order == ["t1-commit", "t2-acquired"]
        assert txns.lock_retries > 0
        assert list(manager.lookup_string("FordPrefect"))
        manager.check_consistency()

    def test_optimistic_siblings_do_not_block(self):
        """Control: the paper's optimistic manager lets the same pair
        proceed concurrently."""
        index_manager = IndexManager(typed=("double",))
        index_manager.load("doc", PERSON)
        txns = TransactionManager(index_manager)
        first = text_nid(index_manager, "Arthur")
        family = text_nid(index_manager, "Dent")
        t1 = txns.begin()
        t2 = txns.begin()
        t1.update_text(first, "Ford")
        t2.update_text(family, "Prefect")
        # Neither blocks; both commit in either order.
        t2.commit()
        t1.commit()
        assert list(index_manager.lookup_string("FordPrefect"))

    def test_many_threads_serialize_but_complete(self, setup):
        manager, txns = setup
        targets = [
            (text_nid(manager, "Arthur"), "A"),
            (text_nid(manager, "Dent"), "B"),
            (text_nid(manager, "4"), "7"),
            (text_nid(manager, "2"), "8"),
        ]
        errors = []

        def worker(nid, value):
            try:
                with txns.begin() as txn:
                    txn.update_text(nid, value)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=t) for t in targets]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert list(manager.lookup_string("AB"))
        manager.check_consistency()
