"""Tests for MVCC snapshot reads in the optimistic transaction manager."""

import pytest

from repro.core import IndexManager
from repro.txn import TransactionManager
from repro.xmldb import TEXT

DOC = "<r><a>one</a><b>two</b><c>three</c></r>"


@pytest.fixture()
def setup():
    manager = IndexManager(typed=())
    manager.load("doc", DOC)
    return manager, TransactionManager(manager)


def text_nid(manager, content):
    doc = manager.store.document("doc")
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(content)


class TestSnapshotReads:
    def test_repeatable_read_across_concurrent_commit(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        reader = txns.begin()
        assert reader.read_text(nid) == "one"
        writer = txns.begin()
        writer.update_text(nid, "ONE")
        writer.commit()
        # The open reader still sees its snapshot.
        assert reader.read_text(nid) == "one"
        # A fresh transaction sees the committed value.
        assert txns.begin().read_text(nid) == "ONE"

    def test_snapshot_survives_multiple_commits(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        reader = txns.begin()
        for value in ("v1", "v2", "v3"):
            writer = txns.begin()
            writer.update_text(nid, value)
            writer.commit()
        assert reader.read_text(nid) == "one"

    def test_intermediate_snapshot(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        first = txns.begin()
        first.update_text(nid, "v1")
        first.commit()
        mid_reader = txns.begin()  # snapshot after v1
        second = txns.begin()
        second.update_text(nid, "v2")
        second.commit()
        assert mid_reader.read_text(nid) == "v1"

    def test_own_writes_shadow_snapshot(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        txn = txns.begin()
        txn.update_text(nid, "mine")
        assert txn.read_text(nid) == "mine"

    def test_unwritten_nodes_read_current(self, setup):
        manager, txns = setup
        reader = txns.begin()
        assert reader.read_text(text_nid(manager, "two")) == "two"

    def test_history_pruned_when_no_readers(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        for value in ("v1", "v2", "v3", "v4"):
            writer = txns.begin()
            writer.update_text(nid, value)
            writer.commit()
        # With no open transactions, the undo chains are garbage.
        assert txns._history == {}

    def test_history_retained_while_reader_open(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        reader = txns.begin()
        writer = txns.begin()
        writer.update_text(nid, "v1")
        writer.commit()
        assert nid in txns._history
        reader.abort()
        # Next commit prunes everything the departed reader pinned.
        other = txns.begin()
        other.update_text(text_nid(manager, "two"), "x")
        other.commit()
        assert all(
            ts > 0 for chain in txns._history.values() for ts, _ in chain
        )

    def test_aborted_writer_leaves_no_versions(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "one")
        reader = txns.begin()
        writer = txns.begin()
        writer.update_text(nid, "junk")
        writer.abort()
        assert reader.read_text(nid) == "one"
        assert txns.begin().read_text(nid) == "one"

    def test_write_skew_is_allowed_but_documented(self, setup):
        """This is snapshot-read + first-committer-wins on write sets,
        not full serializability: two txns may each read what the other
        writes and both commit (classic write skew)."""
        manager, txns = setup
        a = text_nid(manager, "one")
        b = text_nid(manager, "two")
        t1, t2 = txns.begin(), txns.begin()
        t1_read = t1.read_text(b)
        t2_read = t2.read_text(a)
        t1.update_text(a, t1_read.upper())
        t2.update_text(b, t2_read.upper())
        t1.commit()
        t2.commit()  # disjoint write sets: no conflict
        manager.check_consistency()
