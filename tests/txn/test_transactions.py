"""Tests for the ancestor-lock-free transaction layer."""

import random
import threading

import pytest

from repro.core import IndexManager
from repro.errors import TransactionConflict, TransactionStateError
from repro.txn import TransactionManager
from repro.xmldb import TEXT

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<age><decades>4</decades>2<years/></age>"
    "</person>"
)


@pytest.fixture()
def setup():
    index_manager = IndexManager(typed=("double",))
    index_manager.load("doc", PERSON)
    return index_manager, TransactionManager(index_manager)


def text_nid(index_manager, content):
    doc = index_manager.store.document("doc")
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(content)


class TestBasics:
    def test_commit_applies_writes(self, setup):
        manager, txns = setup
        txn = txns.begin()
        txn.update_text(text_nid(manager, "Dent"), "Prefect")
        txn.commit()
        assert list(manager.lookup_string("ArthurPrefect"))
        manager.check_consistency()

    def test_abort_discards_writes(self, setup):
        manager, txns = setup
        txn = txns.begin()
        txn.update_text(text_nid(manager, "Dent"), "Prefect")
        txn.abort()
        assert list(manager.lookup_string("ArthurDent"))
        assert not list(manager.lookup_string("ArthurPrefect"))

    def test_writes_invisible_until_commit(self, setup):
        manager, txns = setup
        txn = txns.begin()
        txn.update_text(text_nid(manager, "Dent"), "Prefect")
        assert list(manager.lookup_string("ArthurDent"))

    def test_read_your_own_writes(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "Dent")
        txn = txns.begin()
        txn.update_text(nid, "Prefect")
        assert txn.read_text(nid) == "Prefect"
        other = txns.begin()
        assert other.read_text(nid) == "Dent"

    def test_context_manager_commits(self, setup):
        manager, txns = setup
        with txns.begin() as txn:
            txn.update_text(text_nid(manager, "Dent"), "Prefect")
        assert txn.status == "committed"
        assert list(manager.lookup_string("ArthurPrefect"))

    def test_context_manager_aborts_on_error(self, setup):
        manager, txns = setup
        with pytest.raises(RuntimeError):
            with txns.begin() as txn:
                txn.update_text(text_nid(manager, "Dent"), "Prefect")
                raise RuntimeError("boom")
        assert txn.status == "aborted"
        assert list(manager.lookup_string("ArthurDent"))

    def test_use_after_commit_rejected(self, setup):
        manager, txns = setup
        txn = txns.begin()
        txn.commit()
        with pytest.raises(TransactionStateError):
            txn.update_text(text_nid(manager, "Dent"), "x")
        with pytest.raises(TransactionStateError):
            txn.commit()

    def test_write_to_element_rejected(self, setup):
        manager, txns = setup
        doc = manager.store.document("doc")
        root = doc.nid[doc.root_element()]
        txn = txns.begin()
        with pytest.raises(TransactionStateError):
            txn.update_text(root, "x")


class TestConflicts:
    def test_write_write_conflict(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "Dent")
        t1, t2 = txns.begin(), txns.begin()
        t1.update_text(nid, "Prefect")
        t2.update_text(nid, "Beeblebrox")
        t1.commit()
        with pytest.raises(TransactionConflict):
            t2.commit()
        assert t2.status == "aborted"
        assert list(manager.lookup_string("ArthurPrefect"))
        manager.check_consistency()

    def test_sibling_writes_do_not_conflict(self, setup):
        """The Section 5.1 claim: updates under a shared ancestor (here
        <name> and the root) need no ancestor lock and both commit."""
        manager, txns = setup
        t1, t2 = txns.begin(), txns.begin()
        t1.update_text(text_nid(manager, "Arthur"), "Ford")
        t2.update_text(text_nid(manager, "Dent"), "Prefect")
        t1.commit()
        t2.commit()  # no conflict despite shared ancestors
        assert list(manager.lookup_string("FordPrefect"))
        manager.check_consistency()

    def test_new_transaction_after_commit_sees_fresh_versions(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "Dent")
        t1 = txns.begin()
        t1.update_text(nid, "Prefect")
        t1.commit()
        t2 = txns.begin()  # begins after the commit: no conflict
        t2.update_text(nid, "Beeblebrox")
        t2.commit()
        assert list(manager.lookup_string("ArthurBeeblebrox"))

    def test_interleaved_commit_order_is_commutative(self, setup):
        """Whichever order sibling transactions commit, the final index
        equals a from-scratch rebuild (commutativity of C)."""
        manager, txns = setup
        t1, t2, t3 = txns.begin(), txns.begin(), txns.begin()
        t1.update_text(text_nid(manager, "Arthur"), "Zaphod")
        t2.update_text(text_nid(manager, "4"), "9")
        t3.update_text(text_nid(manager, "2"), "1")
        for txn in (t3, t1, t2):
            txn.commit()
        assert list(manager.lookup_typed_equal("double", 91.0))
        assert list(manager.lookup_string("Zaphod"))
        manager.check_consistency()


class TestConcurrentThreads:
    def test_threaded_disjoint_commits(self, setup):
        manager, txns = setup
        targets = [
            (text_nid(manager, "Arthur"), "T1"),
            (text_nid(manager, "Dent"), "T2"),
            (text_nid(manager, "4"), "7"),
            (text_nid(manager, "2"), "8"),
        ]
        barrier = threading.Barrier(len(targets))
        errors = []

        def worker(nid, value):
            try:
                txn = txns.begin()
                txn.update_text(nid, value)
                barrier.wait()
                txn.commit()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=t) for t in targets
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert list(manager.lookup_string("T1T2"))
        assert list(manager.lookup_typed_equal("double", 78.0))
        manager.check_consistency()

    def test_threaded_conflicting_commits_one_winner(self, setup):
        manager, txns = setup
        nid = text_nid(manager, "Dent")
        outcomes = []
        barrier = threading.Barrier(4)

        def worker(value):
            txn = txns.begin()
            txn.update_text(nid, value)
            barrier.wait()
            try:
                txn.commit()
                outcomes.append(("ok", value))
            except TransactionConflict:
                outcomes.append(("conflict", value))

        threads = [
            threading.Thread(target=worker, args=(f"v{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [value for status, value in outcomes if status == "ok"]
        assert len(winners) == 1
        doc = manager.store.document("doc")
        assert doc.string_value(doc.pre_of(nid)) == winners[0]
        manager.check_consistency()


def test_randomized_transaction_soak(setup):
    manager, txns = setup
    rng = random.Random(9)
    doc = manager.store.document("doc")
    texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
    values = ["x", "42", "3.5", "", "Marvin", " 7 "]
    open_txns = []
    for _ in range(300):
        roll = rng.random()
        if roll < 0.4 or not open_txns:
            open_txns.append(txns.begin())
        elif roll < 0.8:
            txn = rng.choice(open_txns)
            if txn.status == "active":
                txn.update_text(rng.choice(texts), rng.choice(values))
        else:
            txn = open_txns.pop(rng.randrange(len(open_txns)))
            if txn.status != "active":
                continue
            try:
                if rng.random() < 0.8:
                    txn.commit()
                else:
                    txn.abort()
            except TransactionConflict:
                pass
    manager.check_consistency()
