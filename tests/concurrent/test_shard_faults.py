"""Kill one shard mid-commit; the cluster survives, the shard recovers.

The worker process is armed (via :mod:`repro.storage.faults` crash
plans, upgraded to ``os._exit`` by the worker's ``KillSwitch``) to die
at the WAL append of a chosen update — after a torn prefix of the
frame reaches the disk, exactly the shape of a power cut mid group
commit.  The coordinator must surface the stable ``shard_down`` error
for anything needing the dead shard, keep serving the live shard, and
:meth:`~repro.shard.ShardCluster.restart_shard` must bring the shard
back to the oracle state: every *acked* update visible, the unacked
doomed update gone.
"""

import time

import pytest

from repro.database import Database
from repro.shard import ShardCluster, ShardDownError
from repro.shard.engine import NID_RANGE_BITS
from repro.shard.worker import KillSwitch

from .harness import classified_text_nids, fixture_xml


@pytest.fixture
def cluster(tmp_path):
    cluster = ShardCluster(
        str(tmp_path / "cluster"), shards=2, transport="process",
        checkpoint_every=0,
    ).start()
    yield cluster
    cluster.stop()


def _local_nids(xml: str, tmp_path) -> list[int]:
    """Shard-local age-text nids of the fixture document (shredding is
    deterministic: the first document in any fresh engine gets these)."""
    with Database(str(tmp_path / "probe")) as db:
        return classified_text_nids(db.load("probe", xml))[0]


def _wait_dead(cluster: ShardCluster, shard: int, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while cluster.shard_alive(shard):
        if time.monotonic() > deadline:  # pragma: no cover - diagnostics
            raise AssertionError(f"shard {shard} still alive after kill")
        time.sleep(0.02)


def test_kill_one_shard_mid_commit(tmp_path, cluster):
    xml = fixture_xml()
    ages = _local_nids(xml, tmp_path)
    # Shard 1 mints from its own nid range; the probe engine (no
    # shard id) mints from zero, so offset its nids for cluster calls.
    ages1 = [nid + (1 << NID_RANGE_BITS) for nid in ages]
    cluster.load("left", xml, shard=0)
    cluster.load("right", xml, shard=1)
    cluster.update_text("right", ages1[0], "1111")  # acked pre-restart

    # Re-arm shard 1 so occurrence counting starts at a clean WAL:
    # append #1 is the next acked update, append #2 dies mid-write
    # with a 7-byte torn prefix on disk.
    cluster.arm_kill(1, "wal.append", occurrence=2, keep_bytes=7)
    cluster.restart_shard(1)
    cluster.update_text("right", ages1[1], "2222")  # acked post-restart

    with pytest.raises(ShardDownError) as excinfo:
        cluster.update_text("right", ages1[2], "9999")  # never acked
    assert excinfo.value.code == "shard_down"
    assert excinfo.value.shard == 1
    _wait_dead(cluster, 1)
    worker = cluster._workers[1]
    assert worker.proc.returncode == KillSwitch.EXIT_CODE

    # The dead shard stays down with the stable error...
    with pytest.raises(ShardDownError):
        cluster.update_text("right", ages1[3], "7777")
    with pytest.raises(ShardDownError):
        cluster.query("//p")
    # ...while the live shard keeps serving.
    rows = cluster.query("//p[.//age = 7]", document="left")
    assert rows and all(doc == "left" for doc, _pre, _nid in rows)

    # Restart → WAL recovery on the torn log: acked survives, the
    # doomed frame's prefix is discarded.
    cluster.restart_shard(1)
    assert cluster.shard_alive(1)

    # Bit-identical to an oracle engine that saw exactly the acked
    # updates.
    with Database(str(tmp_path / "oracle")) as oracle:
        oracle.load("right", xml)
        oracle.update_text(ages[0], "1111")
        oracle.update_text(ages[1], "2222")

        def expect(text):
            return [("right", pre) for _doc, pre, _nid
                    in oracle.query_rows(text)]

        for probe in ("//p[.//age = 1111]", "//p[.//age = 2222]",
                      "//p[.//age >= 0]"):
            got = cluster.query_pres(probe, document="right")
            assert got == expect(probe) and got, probe
    assert cluster.query_pres("//p[.//age = 9999]") == []

    # And the recovered shard accepts new writes.
    cluster.update_text("right", ages1[2], "3333")
    assert len(cluster.query_pres("//p[.//age = 3333]")) == 1


def test_kill_requires_process_transport(tmp_path):
    cluster = ShardCluster(str(tmp_path / "cluster"), shards=1,
                           transport="thread", checkpoint_every=0)
    cluster.arm_kill(0, "wal.append")
    from repro.shard import ShardError

    with pytest.raises(ShardError, match="process transport"):
        cluster.start()
