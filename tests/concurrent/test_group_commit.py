"""Property test: group commit is linearizable under crashes.

The acknowledgment contract of
:class:`~repro.storage.groupcommit.GroupCommitLog`: when a writer's
``update_text`` returns, its record — and every record enqueued before
it — is durable; a crash may lose only an unacknowledged suffix, and
the durable log is always a *prefix of the enqueue order* (which
equals the in-memory apply order, because both happen under the
writer lock).

Each example races several writer threads against a group-committed
fsync database and injects a crash (possibly a torn write) at a
randomly drawn occurrence of a WAL crashpoint.  The whole interleaving
is derived from one seed, printed by hypothesis on failure.  Checks:

* the durable log equals a prefix of the observed enqueue order;
* every acknowledged update is inside that prefix (durability);
* recovery replays exactly that prefix — each node's recovered value
  is the last durable write to it (or its initial value), i.e. the
  recovered state *is* the serial execution of the acknowledged batch
  prefix — and the recovered database passes :meth:`verify`.
"""

import os
import random
import tempfile
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.storage import faults
from repro.storage.wal import replay_records
from repro.xmldb import TEXT

WRITERS = 3
OPS = 25


def _value_nids(doc) -> list[int]:
    return [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]


def _run_case(base: str, seed: int) -> None:
    rng = random.Random(seed)
    path = os.path.join(base, "db")
    db = Database(
        path,
        typed=(),
        sync="fsync",
        checkpoint_every=0,
        concurrent=True,
        group_commit=True,
        group_batch_max=rng.choice([2, 3, 8]),
    )
    xml = "<root>" + "".join(
        f"<v>init{i}</v>" for i in range(WRITERS)
    ) + "</root>"
    doc = db.load("d", xml)
    nids = _value_nids(doc)

    # Observe the enqueue order (= apply order: enqueue happens under
    # the writer lock).  The durable log must be a prefix of this.
    order: list[tuple[int, str]] = []
    original_enqueue = db._group.enqueue

    def tracked_enqueue(record):
        seq = original_enqueue(record)
        order.append((record.nid, record.text))
        return seq

    db._group.enqueue = tracked_enqueue

    point = rng.choice(["wal.append", "wal.appended"])
    occurrence = rng.randrange(1, WRITERS * OPS)
    keep = rng.randrange(0, 48) if point == "wal.append" and rng.random() < 0.5 else None
    # Per-writer index of the last acknowledged update (-1 = none).
    acked = [-1] * WRITERS

    def writer(slot: int) -> None:
        for k in range(OPS):
            try:
                db.update_text(nids[slot], f"w{slot}-{k}")
            except BaseException:
                # Injected crash (directly, or via the poisoned log):
                # everything from here on is unacknowledged.
                return
            acked[slot] = k

    plan = faults.CrashPlan(point, occurrence=occurrence, keep_bytes=keep)
    threads = [
        threading.Thread(target=writer, args=(slot,), name=f"writer-{slot}")
        for slot in range(WRITERS)
    ]
    with faults.injected(faults.FaultInjector(crash=plan)):
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
    hung = [t.name for t in threads if t.is_alive()]
    assert not hung, f"seed {seed}: hung threads {hung}"

    # Abandon the crashed instance (buffers are empty by construction:
    # every successful append flushed, the torn write flushed its
    # prefix) and read what actually survived on disk.
    db._wal._fh.close()
    durable = [
        (r.nid, r.text)
        for r in replay_records(os.path.join(path, "wal.log"))
    ]

    assert durable == order[: len(durable)], (
        f"seed {seed} ({point}@{occurrence}, keep={keep}): durable log "
        f"is not a prefix of the enqueue order\n"
        f"durable={durable}\nenqueued={order}"
    )
    durable_set = set(durable)
    for slot in range(WRITERS):
        if acked[slot] >= 0:
            record = (nids[slot], f"w{slot}-{acked[slot]}")
            assert record in durable_set, (
                f"seed {seed}: acknowledged update {record} lost "
                f"(acked={acked}, durable={durable})"
            )

    # Recover.  The replayed state must be the serial execution of the
    # durable prefix: last durable write per node, else the initial
    # value.
    expected = {nid: f"init{i}" for i, nid in enumerate(nids)}
    for nid, text in durable:
        expected[nid] = text
    db2 = Database(path, sync="flush")
    assert db2.recovered_records == len(durable), (
        f"seed {seed}: replayed {db2.recovered_records} of "
        f"{len(durable)} durable record(s)"
    )
    for nid, want in expected.items():
        rdoc, pre = db2.store.node(nid)
        got = rdoc.text_of(pre)
        assert got == want, (
            f"seed {seed}: node {nid} recovered {got!r}, expected {want!r}"
        )
    report = db2.verify()
    assert report.ok, f"seed {seed}: post-recovery verify: {report.summary()}"
    db2.close(checkpoint=False)


@given(st.integers(min_value=0, max_value=2**20))
@settings(max_examples=10, deadline=None)
def test_recovered_state_is_a_serial_prefix_of_acknowledged(seed):
    with tempfile.TemporaryDirectory() as base:
        _run_case(base, seed)
