"""Bounded randomized soak (``make stress``).

Runs the differential reader/writer workload for a wall-clock budget
taken from ``REPRO_STRESS_SECONDS`` (skipped when unset/0, so the
plain unit run stays fast).  ``REPRO_STRESS_SEED`` pins the
interleaving seed; both the seed and the failing thread slot are part
of any failure message, so a red soak is replayable with::

    REPRO_STRESS_SECONDS=30 REPRO_STRESS_SEED=<seed> \
        python -m pytest tests/concurrent/test_soak.py -q
"""

import os

import pytest

from .harness import run_stress

SECONDS = float(os.environ.get("REPRO_STRESS_SECONDS", "0"))
SEED = int(os.environ.get("REPRO_STRESS_SEED", "777"))

pytestmark = pytest.mark.skipif(
    SECONDS <= 0,
    reason="set REPRO_STRESS_SECONDS (e.g. via `make stress`) to run",
)


def test_soak(tmp_path):
    # Split the budget between a flush-durability phase (high update
    # rate, maximum index churn) and an fsync group-commit phase
    # (constant leader elections under the readers).
    half = SECONDS / 2
    flush = run_stress(
        str(tmp_path / "flush"), seed=SEED, readers=3, writers=3,
        duration=half,
    )
    fsync = run_stress(
        str(tmp_path / "fsync"), seed=SEED + 1, readers=3, writers=3,
        duration=half, sync="fsync", group_batch_max=8,
    )
    print(
        f"soak ok (seed {SEED}): flush phase {flush['checks']} checks /"
        f" {flush['updates']} updates; fsync phase {fsync['checks']}"
        f" checks / {fsync['updates']} updates"
    )
