"""Regression tests for serving-path lifecycle/shutdown bugs.

Each test pins one bug a long-running server would trip over daily:

* ``Database.close()`` leaking the WAL file handle when the checkpoint
  raises (a poisoned group-commit log re-raising its injected crash);
* two group-commit writers crossing ``checkpoint_every`` at the same
  time both seeing ``due=True`` and running back-to-back stop-the-world
  auto-checkpoints;
* ``ReadView.__enter__`` leaking the shared latch and the pin when
  anything after ``acquire_shared()`` raises (wedging every future
  structural writer), and ``__exit__`` discarding the real exception
  triple on the way out;
* ``GroupCommitLog`` promising per-batch size metrics but recording
  only counters.
"""

import threading
from contextlib import contextmanager

import pytest

from repro.core import concurrency as concurrency_module
from repro.database import Database
from repro.storage import faults

from .harness import classified_text_nids, fixture_xml


def _open(tmp_path, **kwargs) -> Database:
    kwargs.setdefault("typed", ("double",))
    kwargs.setdefault("checkpoint_every", 0)
    kwargs.setdefault("concurrent", True)
    return Database(str(tmp_path / "db"), **kwargs)


class TestCloseReleasesWal:
    def test_close_releases_wal_fd_when_checkpoint_raises(self, tmp_path):
        """A poisoned group log must not leave the WAL handle open."""
        db = _open(tmp_path, group_commit=True, sync="fsync")
        doc = db.load("people", fixture_xml())
        (nid, *_), _ = classified_text_nids(doc)
        # Poison the group-commit log: the leader's write crashes, so
        # every later drain()/checkpoint() re-raises the same crash.
        plan = faults.CrashPlan("wal.append", occurrence=1)
        with faults.injected(faults.FaultInjector(crash=plan)):
            with pytest.raises(faults.InjectedCrash):
                db.update_text(nid, "0")
        assert db._group.poisoned
        with pytest.raises(faults.InjectedCrash):
            db.close(checkpoint=True)
        # The fd is released even though the checkpoint raised; a
        # server restarting after the poison must be able to reopen.
        assert db._wal._fh.closed
        db2 = Database(str(tmp_path / "db"))
        assert db2.verify().ok
        db2.close()


class TestAutoCheckpointArmsOnce:
    def test_threshold_crossing_triggers_exactly_one_checkpoint(
        self, tmp_path
    ):
        """Concurrent bumps past the threshold arm the trigger once.

        Simulates the race window deterministically: with the trigger
        un-reset until ``checkpoint()`` finishes (the pre-fix code),
        every bump past the threshold sees ``due=True`` — a second
        writer crossing simultaneously runs a second back-to-back
        stop-the-world checkpoint.  Post-fix, ``_pending`` is reset
        under the lock when the trigger arms, so follow-up bumps start
        a fresh count.
        """
        db = _open(tmp_path, checkpoint_every=2)
        calls = []
        db.checkpoint = lambda: calls.append(1)  # observe, don't reset
        db._bump_pending()
        db._bump_pending()  # crosses the threshold: arms the trigger
        db._bump_pending()  # concurrent writer: must NOT re-arm
        assert len(calls) == 1, (
            f"{len(calls)} checkpoints for one threshold crossing"
        )

    def test_two_racing_writers_one_checkpoint(self, tmp_path):
        """Two real writers crossing together: one checkpoint fires."""
        db = _open(tmp_path, checkpoint_every=2)
        checkpoints = []
        barrier = threading.Barrier(2)
        original = db.checkpoint

        def counting_checkpoint():
            checkpoints.append(1)
            original()

        db.checkpoint = counting_checkpoint
        db._pending = 1  # next bump crosses the threshold

        def bump():
            barrier.wait()
            db._bump_pending()

        threads = [threading.Thread(target=bump) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert len(checkpoints) == 1
        db.close()


class TestReadViewLifecycle:
    def test_enter_failure_releases_latch_and_pin(
        self, tmp_path, monkeypatch
    ):
        """A failing enter must not wedge future structural writers."""
        db = _open(tmp_path)
        doc = db.load("people", fixture_xml())
        controller = db.manager.concurrency

        def broken_reading_at(epoch):
            raise RuntimeError("injected reading_at failure")

        monkeypatch.setattr(
            concurrency_module, "reading_at", broken_reading_at
        )
        with pytest.raises(RuntimeError, match="injected"):
            with db.read_view():
                pass  # pragma: no cover - enter raises
        monkeypatch.undo()

        # No leaked shared hold, no leaked pin, no thread-local view.
        assert controller.latch._shared == 0
        assert not controller._pins
        assert concurrency_module.active_view() is None
        # The real proof: a structural writer still gets the exclusive
        # latch (pre-fix this deadlocks on the leaked shared hold).
        root_nid = doc.nid[doc.root_element()]
        db.insert_xml(root_nid, "<p><name>n1</name><age>1</age></p>")
        db.close()

    def test_exit_forwards_exception_to_reading_scope(
        self, tmp_path, monkeypatch
    ):
        """The MVCC reading scope sees the real exception triple."""
        db = _open(tmp_path)
        db.load("people", fixture_xml())
        seen = []

        @contextmanager
        def recording_reading_at(epoch):
            try:
                yield
            except Exception as exc:
                seen.append(exc)
                raise

        monkeypatch.setattr(
            concurrency_module, "reading_at", recording_reading_at
        )
        marker = ValueError("boom")
        with pytest.raises(ValueError):
            with db.read_view():
                raise marker
        assert seen == [marker], (
            "reading scope saw no exception: __exit__ swallowed the "
            "triple instead of forwarding it"
        )
        db.close()

    def test_exit_restores_state_after_failed_body(self, tmp_path):
        """After an exception inside the view, nothing leaks."""
        db = _open(tmp_path)
        db.load("people", fixture_xml())
        controller = db.manager.concurrency
        with pytest.raises(ValueError):
            with db.read_view():
                raise ValueError("boom")
        assert controller.latch._shared == 0
        assert not controller._pins
        assert concurrency_module.active_view() is None
        db.close()


class TestBatchSizeHistogram:
    def test_group_commit_records_batch_size_histogram(self, tmp_path):
        """Per-batch sizes are observable, not just total counters."""
        db = _open(tmp_path, group_commit=True, group_batch_max=4)
        doc = db.load("people", fixture_xml())
        age_nids, _ = classified_text_nids(doc)

        def writer(slot):
            for k in range(10):
                db.update_text(age_nids[slot], str(k))

        threads = [
            threading.Thread(target=writer, args=(slot,)) for slot in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)

        snapshot = db.metrics()
        histogram = snapshot["histograms"].get("wal.group.batch_size")
        assert histogram is not None, "wal.group.batch_size not recorded"
        counters = snapshot["counters"]
        # One observation per batch; observed mass equals the record
        # counter — the histogram and the counters advance together.
        assert histogram["count"] == counters["wal.group.batches"]
        assert histogram["total"] == counters["wal.group.records"]
        assert 1 <= histogram["max"] <= 4
        db.close()
