"""Regression tests for review-found concurrency hazards.

Each test pins down one bug from the concurrent-serving review:

* last-reader-exit pruning reclaiming a mid-flight writer's overlay
  entries (snapshot-isolation violation);
* the prune bound ignoring the published epoch as an implicit pin;
* writes issued from inside a read view deadlocking on the
  writer-lock/latch cycle instead of failing fast;
* ``explain`` running un-pinned under the concurrent path.
"""

import threading

import pytest

from repro.database import Database
from repro.txn import TransactionManager

from .harness import classified_text_nids, fixture_xml


def _open(tmp_path, **kwargs) -> Database:
    kwargs.setdefault("typed", ("double",))
    kwargs.setdefault("checkpoint_every", 0)
    kwargs.setdefault("concurrent", True)
    return Database(str(tmp_path / "db"), **kwargs)


def _text_slot(db, nid):
    doc, pre = db.store.node(nid)
    return doc, doc.text_id[pre]


class TestOverlayPruning:
    def test_prune_bound_treats_published_epoch_as_pin(self, tmp_path):
        """Entries above the published epoch survive a no-reader prune."""
        db = _open(tmp_path)
        doc = db.load("people", fixture_xml())
        (nid, *_), _ = classified_text_nids(doc)
        doc, slot = _text_slot(db, nid)
        controller = db.manager.concurrency
        published = controller.published().epoch
        overlay = doc.text_overlay
        overlay.record(slot, published, "at-published")
        overlay.record(slot, published + 1, "in-flight")
        controller.prune_overlays()
        # The committed-epoch entry is reclaimable, the in-flight one
        # (stamped published+1 by a writer that has not published) not.
        assert overlay.versions == {slot: [(published + 1, "in-flight")]}
        overlay.versions.clear()
        db.close()

    def test_last_reader_exit_spares_inflight_writer_entries(self, tmp_path):
        """A reader leaving mid-update must not reclaim the update's
        before-values: the writer holds the writer lock, so the exit
        prune is skipped (and the bound excludes them regardless)."""
        db = _open(tmp_path)
        doc = db.load("people", fixture_xml())
        (nid, *_), _ = classified_text_nids(doc)
        doc, slot = _text_slot(db, nid)
        controller = db.manager.concurrency
        published = controller.published().epoch
        recorded = threading.Event()
        release = threading.Event()

        def writer():
            # A text update frozen between overlay record and publish.
            with controller.write_lock:
                doc.text_overlay.record(slot, published + 1, "before")
                recorded.set()
                assert release.wait(30)

        t = threading.Thread(target=writer)
        t.start()
        assert recorded.wait(30)
        with db.read_view():
            pass  # last reader out triggers the exit-path prune
        assert doc.text_overlay.versions.get(slot) == [(published + 1, "before")]
        release.set()
        t.join(timeout=30)
        doc.text_overlay.versions.clear()
        db.close()


class TestWriteInsideViewFailsFast:
    def test_logged_updates_raise_instead_of_deadlocking(self, tmp_path):
        db = _open(tmp_path)
        doc = db.load("people", fixture_xml())
        (nid, *_), _ = classified_text_nids(doc)
        with db.read_view():
            with pytest.raises(RuntimeError, match="read view"):
                db.update_text(nid, "99")
            with pytest.raises(RuntimeError, match="read view"):
                db.delete_subtree(nid)
            with pytest.raises(RuntimeError, match="read view"):
                db.insert_xml(doc.nid[0], "<p><age>3</age></p>")
            with pytest.raises(RuntimeError, match="read view"):
                db.checkpoint()
        # Outside the view the same calls work.
        db.update_text(nid, "99")
        db.checkpoint()
        assert db.verify().ok
        db.close()

    def test_txn_commit_raises_inside_view_and_commits_after(self, tmp_path):
        db = _open(tmp_path)
        doc = db.load("people", fixture_xml())
        (nid, *_), _ = classified_text_nids(doc)
        txns = TransactionManager(db.manager)
        txn = txns.begin()
        txn.update_text(nid, "41")
        with db.read_view():
            with pytest.raises(RuntimeError, match="read view"):
                txn.commit()
        # The failed attempt did not consume the transaction.
        assert txn.status == "active"
        txn.commit()
        assert txn.status == "committed"
        _doc, pre = db.store.node(nid)
        assert _doc.text_of(pre) == "41"
        db.close()


class TestExplainPinning:
    def test_explain_auto_pins_a_read_view(self, tmp_path):
        db = _open(tmp_path)
        db.load("people", fixture_xml())

        def pins() -> int:
            return db.metrics()["counters"].get("concurrency.epoch_pins", 0)

        before = pins()
        db.explain("//p[.//age = 7]", execute=True)
        assert pins() == before + 1
        # An explicit view is reused, not double-pinned.
        inside = pins()
        with db.read_view():
            db.explain("//p[.//age = 7]")
        assert pins() == inside + 1  # the view itself, nothing more
        db.close()
