"""Shared driver for the differential concurrency tests.

Spins up N reader threads and M writer threads against one live
:class:`~repro.database.Database`.  Every reader query runs inside a
pinned :meth:`~repro.database.Database.read_view` under *both*
executors — the vectorized batch pipeline and the scalar per-node
walk — and each is cross-checked against the naive full-scan oracle
(:func:`repro.query.evaluate_naive`) evaluated on the *same pinned
snapshot* — the document's text reads resolve through the MVCC
overlay, so all three sides see epoch-consistent state.  Any
divergence, or a post-run :meth:`verify` failure, is a hard failure;
error messages carry the thread slot and seed so a failing
interleaving can be replayed.
"""

from __future__ import annotations

import random
import threading
import time

from repro.database import Database
from repro.query import evaluate_naive, parse_query
from repro.xmldb import ELEM, TEXT

AGES = 25
NAMES = 12

#: Query templates the readers draw from (equality + range, routed to
#: the string and typed indices respectively).
QUERY_MAKERS = [
    lambda rng: f"//p[.//age = {rng.randrange(AGES)}]",
    lambda rng: f'//p[.//name = "n{rng.randrange(NAMES)}"]',
    lambda rng: f"//p[.//age >= {rng.randrange(AGES)}]",
]


def fixture_xml(persons: int = 30) -> str:
    body = "".join(
        f"<p><name>n{i % NAMES}</name><age>{i % AGES}</age></p>"
        for i in range(persons)
    )
    return f"<root>{body}</root>"


def classified_text_nids(doc) -> tuple[list[int], list[int]]:
    """(age-text nids, name-text nids) of the fixture document."""
    ages, names = [], []
    for pre in range(len(doc)):
        if doc.kind[pre] != TEXT:
            continue
        parent = doc.parent(pre)
        if doc.kind[parent] != ELEM:
            continue
        label = doc.name_of(parent)
        if label == "age":
            ages.append(doc.nid[pre])
        elif label == "name":
            names.append(doc.nid[pre])
    return ages, names


def oracle(doc, text: str) -> list[int]:
    """Naive full-scan answer (nids) at the caller's snapshot."""
    return sorted(doc.nid[p] for p in evaluate_naive(doc, parse_query(text).path))


def run_stress(
    path: str,
    seed: int,
    readers: int = 3,
    writers: int = 2,
    ops: int = 150,
    duration: float | None = None,
    structural: bool = True,
    **db_kwargs,
) -> dict:
    """Run the differential workload; returns ``{"checks", "updates"}``.

    ``ops`` bounds each writer when ``duration`` is None; otherwise the
    run is wall-clock bounded (writers loop until the deadline).  Extra
    ``db_kwargs`` go to :class:`Database` (e.g. ``group_batch_max``).
    """
    db_kwargs.setdefault("typed", ("double",))
    db_kwargs.setdefault("sync", "flush")
    db_kwargs.setdefault("checkpoint_every", 0)
    db = Database(path, concurrent=True, group_commit=True, **db_kwargs)
    doc = db.load("people", fixture_xml())
    age_nids, name_nids = classified_text_nids(doc)
    root_nid = doc.nid[doc.root_element()]

    errors: list[str] = []
    stop = threading.Event()
    writers_done = threading.Event()
    deadline = None if duration is None else time.monotonic() + duration
    counts = {"checks": 0, "updates": 0}
    count_lock = threading.Lock()

    def expired() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    def writer(slot: int) -> None:
        rng = random.Random(seed * 1_000 + 100 + slot)
        done = 0
        try:
            while not stop.is_set() and not expired():
                if duration is None and done >= ops:
                    break
                if structural and slot == 0 and rng.random() < 0.03:
                    # Occasional structural update: exercises the
                    # stop-the-world exclusive path among readers.
                    i = rng.randrange(10_000)
                    db.insert_xml(
                        root_nid,
                        f"<p><name>n{rng.randrange(NAMES)}</name>"
                        f"<age>{rng.randrange(AGES)}</age></p>",
                    )
                    db.insert_attribute(root_nid, f"a{slot}x{i}", "1")
                elif rng.random() < 0.7:
                    db.update_text(
                        rng.choice(age_nids), str(rng.randrange(AGES))
                    )
                else:
                    db.update_text(
                        rng.choice(name_nids), f"n{rng.randrange(NAMES)}"
                    )
                done += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"writer {slot} (seed {seed}): {exc!r}")
            stop.set()
        finally:
            with count_lock:
                counts["updates"] += done

    def reader(slot: int) -> None:
        rng = random.Random(seed * 1_000 + slot)
        done = 0
        try:
            while not errors and (not writers_done.is_set() or done == 0):
                if expired() and done > 0:
                    break
                text = rng.choice(QUERY_MAKERS)(rng)
                with db.read_view():
                    batch = sorted(db.query(text, vectorized=True))
                    scalar = sorted(db.query(text, vectorized=False))
                    expected = oracle(db.store.document("people"), text)
                if batch != expected or scalar != expected:
                    errors.append(
                        f"reader {slot} (seed {seed}): divergence on "
                        f"{text!r}: batch={batch} scalar={scalar} "
                        f"oracle={expected}"
                    )
                    stop.set()
                    return
                done += 1
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(f"reader {slot} (seed {seed}): {exc!r}")
            stop.set()
        finally:
            with count_lock:
                counts["checks"] += done

    writer_threads = [
        threading.Thread(target=writer, args=(slot,), name=f"writer-{slot}")
        for slot in range(writers)
    ]
    reader_threads = [
        threading.Thread(target=reader, args=(slot,), name=f"reader-{slot}")
        for slot in range(readers)
    ]
    for thread in reader_threads + writer_threads:
        thread.start()
    for thread in writer_threads:
        thread.join(timeout=120)
    writers_done.set()
    for thread in reader_threads:
        thread.join(timeout=120)
    hung = [
        t.name for t in writer_threads + reader_threads if t.is_alive()
    ]
    assert not hung, f"hung threads {hung} (seed {seed}); errors: {errors}"
    assert not errors, "\n".join(errors)

    report = db.verify()
    assert report.ok, f"post-run verify failed (seed {seed}): " \
                      f"{report.summary()}"
    db.close(checkpoint=False)
    assert counts["checks"] > 0 and counts["updates"] > 0
    return counts
