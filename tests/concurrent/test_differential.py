"""Differential serving suite: live readers vs the full-scan oracle.

The concurrent serving path promises snapshot isolation: a query
pinned at epoch E sees exactly the state any single-threaded client
would have seen at E, no matter how many writers are publishing newer
epochs underneath it.  These tests check that promise the only way
that counts — by racing real reader and writer threads against one
:class:`~repro.database.Database` and comparing every indexed answer
with the naive oracle evaluated on the same pinned snapshot (see
``harness.py``).  A post-run :meth:`verify` guards the final state.
"""

import os
import threading

from repro.database import Database

from .harness import (
    classified_text_nids,
    fixture_xml,
    oracle,
    run_stress,
)

SEED = int(os.environ.get("REPRO_STRESS_SEED", "96321"))


class TestDifferentialServing:
    def test_readers_never_diverge_from_oracle(self, tmp_path):
        counts = run_stress(
            str(tmp_path / "db"), seed=SEED, readers=3, writers=2, ops=120
        )
        assert counts["updates"] >= 240

    def test_divergence_free_under_group_commit_fsync(self, tmp_path):
        # Small batches + fsync: the acknowledgment path (leader
        # election, batched fsync) runs constantly under the readers.
        counts = run_stress(
            str(tmp_path / "db"),
            seed=SEED + 1,
            readers=2,
            writers=3,
            ops=40,
            sync="fsync",
            group_batch_max=4,
        )
        assert counts["updates"] == 120


class TestSnapshotStability:
    def test_pinned_view_is_immutable_under_writes(self, tmp_path):
        """A view opened before a write keeps answering from its epoch."""
        db = Database(
            str(tmp_path / "db"), typed=("double",), checkpoint_every=0,
            concurrent=True,
        )
        doc = db.load("people", fixture_xml())
        age_nids, _ = classified_text_nids(doc)
        text = "//p[.//age = 7]"
        with db.read_view():
            before_indexed = sorted(db.query(text))
            before_oracle = oracle(db.store.document("people"), text)

            # Another thread rewrites every age while the view is open.
            def rewrite():
                for nid in age_nids:
                    db.update_text(nid, "7")

            t = threading.Thread(target=rewrite)
            t.start()
            t.join(timeout=60)
            assert not t.is_alive()

            # Same view, same answers — from both engines.
            assert sorted(db.query(text)) == before_indexed
            assert oracle(db.store.document("people"), text) == before_oracle

        # A fresh view sees the new world (every <p> now matches).
        with db.read_view():
            after = db.query(text)
            assert sorted(after) == oracle(db.store.document("people"), text)
            assert len(after) == len(age_nids)
        assert db.verify().ok
        db.close(checkpoint=False)
