"""Tests for documents, shredding, string values and serialisation."""

import pytest

from repro.errors import DocumentError
from repro.xmldb import ATTR, COMMENT, DOC, ELEM, PI, TEXT, Store

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<birthday>1966-09-26</birthday>"
    "<age><decades>4</decades>2<years/></age>"
    "<weight><kilos>78</kilos>.<grams>230</grams></weight>"
    "</person>"
)


@pytest.fixture()
def store():
    return Store()


@pytest.fixture()
def person(store):
    return store.add_document("person", PERSON)


class TestShred:
    def test_node_count(self, person):
        # doc + 11 elements + 8 text nodes
        assert len(person) == 20
        person.check_invariants()

    def test_document_node(self, person):
        assert person.kind[0] == DOC
        assert person.size[0] == 19
        assert person.level[0] == 0

    def test_pre_size_level(self, person):
        root = person.root_element()
        assert person.name_of(root) == "person"
        assert person.size[root] == 18
        names = [person.name_of(c) for c in person.children(root)]
        assert names == ["name", "birthday", "age", "weight"]

    def test_text_nodes(self, person):
        texts = [
            person.text_of(p)
            for p in range(len(person))
            if person.kind[p] == TEXT
        ]
        assert texts == ["Arthur", "Dent", "1966-09-26", "4", "2", "78", ".", "230"]

    def test_nids_unique_and_mapped(self, person):
        for pre, nid in enumerate(person.nid):
            assert person.pre_of(nid) == pre

    def test_source_bytes(self, person):
        assert person.source_bytes == len(PERSON.encode())

    def test_attributes_in_plane(self, store):
        doc = store.add_document("attrs", '<a x="1" y="2"><b z="3"/></a>')
        doc.check_invariants()
        kinds = [doc.kind[p] for p in range(len(doc))]
        assert kinds == [DOC, ELEM, ATTR, ATTR, ELEM, ATTR]
        a = doc.root_element()
        assert [doc.name_of(p) for p in doc.attributes(a)] == ["x", "y"]
        # Child axis skips attributes.
        assert [doc.name_of(p) for p in doc.children(a)] == ["b"]

    def test_adjacent_text_coalesces(self, store):
        doc = store.add_document("cdata", "<a>one<![CDATA[two]]>three</a>")
        texts = [doc.text_of(p) for p in range(len(doc)) if doc.kind[p] == TEXT]
        assert texts == ["onetwothree"]

    def test_comments_and_pis_kept(self, store):
        doc = store.add_document("misc", "<a><!--c--><?p d?></a>")
        kinds = [doc.kind[p] for p in range(len(doc))]
        assert kinds == [DOC, ELEM, COMMENT, PI]
        doc.check_invariants()


class TestAxes:
    def test_parent(self, person):
        root = person.root_element()
        for child in person.children(root):
            assert person.parent(child) == root
        assert person.parent(root) == 0
        assert person.parent(0) is None

    def test_ancestors(self, person):
        deepest = next(
            p
            for p in range(len(person))
            if person.kind[p] == TEXT and person.text_of(p) == "230"
        )
        chain = [*person.ancestors(deepest)]
        names = [
            person.name_of(a) if person.kind[a] == ELEM else "#doc"
            for a in chain
        ]
        assert names[-1] == "#doc"
        assert "weight" in names or "age" in names

    def test_descendants(self, person):
        root = person.root_element()
        assert len(person.descendants(root)) == person.size[root]

    def test_unknown_nid_raises(self, person):
        with pytest.raises(DocumentError):
            person.pre_of(10**9)


class TestStringValue:
    def test_text_node(self, person):
        pre = next(p for p in range(len(person)) if person.kind[p] == TEXT)
        assert person.string_value(pre) == "Arthur"

    def test_element_concatenation(self, person):
        root = person.root_element()
        name = next(iter(person.children(root)))
        assert person.string_value(name) == "ArthurDent"

    def test_mixed_content(self, person):
        root = person.root_element()
        age = [c for c in person.children(root) if person.name_of(c) == "age"][0]
        assert person.string_value(age) == "42"
        weight = [
            c for c in person.children(root) if person.name_of(c) == "weight"
        ][0]
        assert person.string_value(weight) == "78.230"

    def test_document_node(self, person):
        assert person.string_value(0) == "ArthurDent1966-09-264278.230"

    def test_attribute_value(self, store):
        doc = store.add_document("attrs", '<a x="hello"><b>text</b></a>')
        attr = next(p for p in range(len(doc)) if doc.kind[p] == ATTR)
        assert doc.string_value(attr) == "hello"
        # Attributes do not contribute to the element string value.
        assert doc.string_value(doc.root_element()) == "text"

    def test_comment_excluded_from_element_value(self, store):
        doc = store.add_document("c", "<a>x<!--hidden-->y</a>")
        assert doc.string_value(doc.root_element()) == "xy"


class TestSerialize:
    def test_roundtrip(self, person):
        assert person.serialize() == PERSON

    def test_roundtrip_with_attrs_and_misc(self, store):
        xml = '<a x="1&amp;2"><!--c--><b/>text<?p d?></a>'
        doc = store.add_document("misc", xml)
        assert doc.serialize() == xml

    def test_subtree(self, person):
        root = person.root_element()
        name = next(iter(person.children(root)))
        assert (
            person.serialize(name)
            == "<name><first>Arthur</first><family>Dent</family></name>"
        )

    def test_escapes_special_chars(self, store):
        doc = store.add_document("esc", "<a>&lt;&amp;&gt;</a>")
        assert doc.serialize() == "<a>&lt;&amp;&gt;</a>"

    def test_shred_serialize_shred_fixpoint(self, store, person):
        again = store.add_document("copy", person.serialize())
        assert again.serialize() == person.serialize()


class TestByteSize:
    def test_positive_and_monotone(self, store):
        small = store.add_document("small", "<a>x</a>")
        large = store.add_document("large", "<a>" + "<b>text</b>" * 50 + "</a>")
        assert 0 < small.byte_size() < large.byte_size()

    def test_store_totals(self, store, person):
        assert store.byte_size() == person.byte_size()
        assert store.total_nodes() == len(person)
