"""Tests for the from-scratch XML parser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlSyntaxError
from repro.xmldb.parser import escape_attribute, escape_text, parse_events, unescape


def events(xml):
    return list(parse_events(xml))


class TestBasics:
    def test_single_empty_element(self):
        assert events("<a/>") == [("start", "a", []), ("end", "a")]

    def test_element_with_text(self):
        assert events("<a>hi</a>") == [
            ("start", "a", []),
            ("text", "hi"),
            ("end", "a"),
        ]

    def test_nested(self):
        assert events("<a><b>x</b></a>") == [
            ("start", "a", []),
            ("start", "b", []),
            ("text", "x"),
            ("end", "b"),
            ("end", "a"),
        ]

    def test_attributes(self):
        assert events('<a x="1" y="two"/>') == [
            ("start", "a", [("x", "1"), ("y", "two")]),
            ("end", "a"),
        ]

    def test_single_quoted_attribute(self):
        assert events("<a x='1'/>")[0] == ("start", "a", [("x", "1")])

    def test_whitespace_in_tags(self):
        assert events('<a  x = "1" ></a>')[0] == ("start", "a", [("x", "1")])

    def test_mixed_content(self):
        assert events("<a>one<b/>two</a>") == [
            ("start", "a", []),
            ("text", "one"),
            ("start", "b", []),
            ("end", "b"),
            ("text", "two"),
            ("end", "a"),
        ]

    def test_whitespace_text_outside_root_ok(self):
        assert events("  <a/>\n") == [("start", "a", []), ("end", "a")]

    def test_xml_declaration_skipped(self):
        assert events('<?xml version="1.0"?><a/>') == [
            ("start", "a", []),
            ("end", "a"),
        ]

    def test_doctype_skipped(self):
        xml = '<!DOCTYPE a [<!ENTITY x "y">]><a/>'
        assert events(xml) == [("start", "a", []), ("end", "a")]


class TestSpecialConstructs:
    def test_comment(self):
        assert events("<a><!-- hi --></a>") == [
            ("start", "a", []),
            ("comment", " hi "),
            ("end", "a"),
        ]

    def test_comment_outside_root_skipped(self):
        assert events("<!--x--><a/><!--y-->") == [
            ("start", "a", []),
            ("end", "a"),
        ]

    def test_cdata(self):
        assert events("<a><![CDATA[<not> & markup]]></a>") == [
            ("start", "a", []),
            ("text", "<not> & markup"),
            ("end", "a"),
        ]

    def test_pi(self):
        assert events('<a><?target data="1"?></a>') == [
            ("start", "a", []),
            ("pi", "target", 'data="1"'),
            ("end", "a"),
        ]

    def test_entities_in_text(self):
        assert events("<a>&lt;&amp;&gt;&apos;&quot;</a>")[1] == (
            "text",
            "<&>'\"",
        )

    def test_char_references(self):
        assert events("<a>&#65;&#x42;</a>")[1] == ("text", "AB")

    def test_entities_in_attributes(self):
        assert events('<a x="&amp;&#33;"/>')[0] == ("start", "a", [("x", "&!")])


class TestErrors:
    @pytest.mark.parametrize(
        "xml",
        [
            "",
            "   ",
            "<a>",  # unclosed
            "<a></b>",  # mismatch
            "</a>",  # bare end
            "<a/><b/>",  # two roots
            "text<a/>",  # text before root
            "<a/>text",  # text after root
            "<a x=1/>",  # unquoted attribute
            '<a x="1" x="2"/>',  # duplicate attribute
            "<a>&unknown;</a>",  # unknown entity
            "<a>&#xZZ;</a>",  # bad char ref
            "<1a/>",  # bad name
            "<a><!-- unterminated </a>",
            "<a><![CDATA[ unterminated </a>",
            '<a x="<b>"/>',  # '<' in attribute
        ],
    )
    def test_malformed(self, xml):
        with pytest.raises(XmlSyntaxError):
            events(xml)

    def test_error_carries_line(self):
        with pytest.raises(XmlSyntaxError) as exc_info:
            events("<a>\n\n</b>")
        assert exc_info.value.line == 3


class TestUnescape:
    def test_no_amp_fast_path(self):
        assert unescape("", "plain") == "plain"

    def test_mixed(self):
        assert unescape("", "a&amp;b&#10;c") == "a&b\nc"


class TestEscaping:
    def test_text_roundtrip(self):
        original = 'a<b&c>d"e'
        assert events(f"<a>{escape_text(original)}</a>")[1] == ("text", original)

    def test_attribute_roundtrip(self):
        original = 'a<b&c"d'
        xml = f'<a x="{escape_attribute(original)}"/>'
        assert events(xml)[0] == ("start", "a", [("x", original)])


@given(
    st.text(
        alphabet=st.characters(blacklist_characters="\r", min_codepoint=32, max_codepoint=1000),
        max_size=60,
    )
)
@settings(max_examples=150)
def test_any_text_roundtrips_through_escape(text):
    parsed = events(f"<a>{escape_text(text)}</a>")
    got = "".join(e[1] for e in parsed if e[0] == "text")
    assert got == text


class TestInternalDtdEntities:
    def test_declared_entity_in_text(self):
        xml = '<!DOCTYPE r [<!ENTITY who "Arthur">]><r>&who;</r>'
        assert events(xml)[1] == ("text", "Arthur")

    def test_declared_entity_in_attribute(self):
        xml = '<!DOCTYPE r [<!ENTITY who "Arthur">]><r a="&who;!"/>'
        assert events(xml)[0] == ("start", "r", [("a", "Arthur!")])

    def test_nested_entity_expansion(self):
        xml = (
            '<!DOCTYPE r [<!ENTITY who "Arthur">'
            '<!ENTITY greet "hi &who;">]><r>&greet;</r>'
        )
        assert events(xml)[1] == ("text", "hi Arthur")

    def test_char_refs_inside_entity_value(self):
        xml = '<!DOCTYPE r [<!ENTITY bang "&#33;">]><r>&bang;</r>'
        assert events(xml)[1] == ("text", "!")

    def test_single_quoted_entity_value(self):
        xml = "<!DOCTYPE r [<!ENTITY who 'Ford'>]><r>&who;</r>"
        assert events(xml)[1] == ("text", "Ford")

    def test_parameter_entities_ignored(self):
        xml = '<!DOCTYPE r [<!ENTITY % p "x"><!ENTITY who "ok">]><r>&who;</r>'
        assert events(xml)[1] == ("text", "ok")

    def test_undeclared_still_errors(self):
        with pytest.raises(XmlSyntaxError):
            events('<!DOCTYPE r [<!ENTITY who "x">]><r>&other;</r>')

    def test_predefined_not_overridden_by_subset(self):
        xml = '<!DOCTYPE r [<!ENTITY amp "BAD">]><r>&amp;</r>'
        assert events(xml)[1] == ("text", "&")
