"""Tests for the streaming parser and stream shredding."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import XmlSyntaxError
from repro.xmldb import Store
from repro.xmldb.parser import parse_events
from repro.xmldb.streaming import StreamingParser, parse_stream
from repro.workloads import generate_xmark

SAMPLES = [
    "<a/>",
    "<a>text</a>",
    '<a x="1" y="&amp;"><b>one</b>two<c/>three</a>',
    "<a><!-- comment --><?pi data?><![CDATA[<raw>&]]></a>",
    '<?xml version="1.0"?><!DOCTYPE a [<!ENTITY w "hi">]><a>&w;</a>',
    "  <a>\n  mixed <b>deep<c>er</c></b> tail\n</a>  ",
]


def chunked(xml, size):
    parser = StreamingParser()
    events = []
    for i in range(0, len(xml), size):
        events.extend(parser.feed(xml[i : i + size]))
    events.extend(parser.close())
    return events


class TestEquivalence:
    @pytest.mark.parametrize("xml", SAMPLES)
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 64, 10_000])
    def test_matches_batch_parser(self, xml, size):
        assert chunked(xml, size) == list(parse_events(xml))

    def test_large_document_all_chunkings(self):
        xml = generate_xmark(0.1)
        batch = list(parse_events(xml))
        for size in (17, 1024, 64 * 1024):
            assert chunked(xml, size) == batch

    @given(st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_random_chunk_sizes(self, size):
        xml = SAMPLES[2] + ""
        assert chunked(xml, size) == list(parse_events(xml))


class TestErrors:
    def test_truncated_document(self):
        parser = StreamingParser()
        parser.feed("<a><b>unfinished")
        with pytest.raises(XmlSyntaxError):
            parser.close()

    def test_truncated_tag(self):
        parser = StreamingParser()
        parser.feed("<a")
        with pytest.raises(XmlSyntaxError, match="unterminated|unclosed|no root"):
            parser.close()

    def test_mismatched_end_tag_raised_mid_stream(self):
        parser = StreamingParser()
        with pytest.raises(XmlSyntaxError, match="mismatched"):
            parser.feed("<a></b>")

    def test_feed_after_close(self):
        parser = StreamingParser()
        parser.feed("<a/>")
        parser.close()
        with pytest.raises(XmlSyntaxError):
            parser.feed("<b/>")

    def test_double_close_is_noop(self):
        parser = StreamingParser()
        parser.feed("<a/>")
        assert parser.close() == []
        assert parser.close() == []

    def test_no_root(self):
        parser = StreamingParser()
        parser.feed("   ")
        with pytest.raises(XmlSyntaxError, match="no root"):
            parser.close()


class TestStreamShred:
    def test_parse_stream(self):
        xml = SAMPLES[2]
        events = list(parse_stream(io.StringIO(xml), chunk_size=4))
        assert events == list(parse_events(xml))

    def test_add_document_file(self, tmp_path):
        xml = generate_xmark(0.05)
        path = tmp_path / "doc.xml"
        path.write_text(xml, encoding="utf-8")
        streamed = Store().add_document_file("doc", str(path))
        batch = Store().add_document("doc", xml)
        assert streamed.serialize() == batch.serialize()
        assert streamed.kind == batch.kind
        assert streamed.source_bytes == len(xml.encode("utf-8"))
        streamed.check_invariants()

    def test_duplicate_name_rejected(self, tmp_path):
        from repro.errors import DocumentError

        path = tmp_path / "doc.xml"
        path.write_text("<a/>")
        store = Store()
        store.add_document_file("doc", str(path))
        with pytest.raises(DocumentError):
            store.add_document_file("doc", str(path))

    def test_entity_split_across_chunks(self):
        xml = "<a>x&amp;y</a>"
        # Split right inside the entity reference.
        parser = StreamingParser()
        events = parser.feed("<a>x&am")
        events += parser.feed("p;y</a>")
        events += parser.close()
        assert ("text", "x&y") in events
