"""Tests for the store's value and structural update primitives."""

import pytest

from repro.errors import DocumentError
from repro.xmldb import ELEM, TEXT, Store


@pytest.fixture()
def store():
    return Store()


@pytest.fixture()
def doc(store):
    return store.add_document(
        "doc", "<a><b>one</b><c><d>two</d>three</c></a>"
    )


def text_nid(doc, content):
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(f"no text node {content!r}")


def elem_nid(doc, name):
    for pre in range(len(doc)):
        if doc.kind[pre] == ELEM and doc.name_of(pre) == name:
            return doc.nid[pre]
    raise AssertionError(f"no element {name!r}")


class TestUpdateText:
    def test_basic(self, store, doc):
        nid = text_nid(doc, "one")
        store.update_text(nid, "ONE")
        assert doc.string_value(doc.pre_of(nid)) == "ONE"
        assert doc.string_value(0) == "ONEtwothree"
        doc.check_invariants()

    def test_attribute_value(self, store):
        doc = store.add_document("attrs", '<a x="old"/>')
        attr_nid = doc.nid[2]
        store.update_text(attr_nid, "new")
        assert doc.string_value(2) == "new"

    def test_rejects_element(self, store, doc):
        with pytest.raises(DocumentError):
            store.update_text(elem_nid(doc, "b"), "nope")

    def test_rejects_unknown_nid(self, store, doc):
        with pytest.raises(DocumentError):
            store.update_text(10**9, "x")


class TestDeleteSubtree:
    def test_delete_leaf_element(self, store, doc):
        before = len(doc)
        change = store.delete_subtree(elem_nid(doc, "b"))
        assert len(doc) == before - 2  # <b> and its text
        assert len(change.removed_nids) == 2
        assert doc.string_value(0) == "twothree"
        doc.check_invariants()

    def test_delete_inner_subtree(self, store, doc):
        store.delete_subtree(elem_nid(doc, "c"))
        assert doc.string_value(0) == "one"
        doc.check_invariants()

    def test_delete_text_node(self, store, doc):
        store.delete_subtree(text_nid(doc, "three"))
        assert doc.string_value(0) == "onetwo"
        doc.check_invariants()

    def test_deleted_nids_are_gone(self, store, doc):
        nid = elem_nid(doc, "b")
        store.delete_subtree(nid)
        with pytest.raises(DocumentError):
            store.node(nid)

    def test_cannot_delete_document_node(self, store, doc):
        with pytest.raises(DocumentError):
            store.delete_subtree(doc.nid[0])

    def test_parent_nid_reported(self, store, doc):
        change = store.delete_subtree(elem_nid(doc, "d"))
        assert change.parent_nid == elem_nid(doc, "c")


class TestInsertXml:
    def test_append_element(self, store, doc):
        change = store.insert_xml(elem_nid(doc, "a"), "<e>four</e>")
        assert len(change.added_nids) == 2
        assert doc.string_value(0) == "onetwothreefour"
        doc.check_invariants()

    def test_insert_before_sibling(self, store, doc):
        store.insert_xml(
            elem_nid(doc, "a"), "<z>zero</z>", before_nid=elem_nid(doc, "b")
        )
        assert doc.string_value(0) == "zeroonetwothree"
        root = doc.root_element()
        assert [doc.name_of(c) for c in doc.children(root)] == [
            "z",
            "b",
            "c",
        ]
        doc.check_invariants()

    def test_insert_bare_text(self, store, doc):
        store.insert_xml(elem_nid(doc, "b"), "!")
        assert doc.string_value(0) == "one!twothree"
        doc.check_invariants()

    def test_insert_mixed_fragment(self, store, doc):
        change = store.insert_xml(elem_nid(doc, "c"), "x<e>y</e>z")
        assert len(change.added_nids) == 4
        assert doc.string_value(0) == "onetwothreexyz"
        doc.check_invariants()

    def test_insert_deep_fragment(self, store, doc):
        store.insert_xml(elem_nid(doc, "d"), "<p><q>deep</q></p>")
        assert doc.string_value(doc.pre_of(elem_nid(doc, "d"))) == "twodeep"
        doc.check_invariants()

    def test_insert_empty_fragment(self, store, doc):
        before = len(doc)
        change = store.insert_xml(elem_nid(doc, "a"), "")
        assert change.added_nids == [] and len(doc) == before

    def test_insert_with_attributes(self, store, doc):
        store.insert_xml(elem_nid(doc, "a"), '<e k="v"/>')
        pre = doc.pre_of(elem_nid(doc, "e"))
        assert [doc.name_of(a) for a in doc.attributes(pre)] == ["k"]
        doc.check_invariants()

    def test_rejects_insert_under_text(self, store, doc):
        with pytest.raises(DocumentError):
            store.insert_xml(text_nid(doc, "one"), "<x/>")

    def test_rejects_foreign_before_nid(self, store, doc):
        with pytest.raises(DocumentError):
            store.insert_xml(
                elem_nid(doc, "a"), "<x/>", before_nid=text_nid(doc, "two")
            )

    def test_new_nids_resolvable(self, store, doc):
        change = store.insert_xml(elem_nid(doc, "a"), "<e>four</e>")
        for nid in change.added_nids:
            owner, pre = store.node(nid)
            assert owner is doc
            assert doc.nid[pre] == nid


class TestMultiDocument:
    def test_independent_nid_spaces(self, store):
        one = store.add_document("one", "<a>x</a>")
        two = store.add_document("two", "<b>y</b>")
        assert set(one.nid).isdisjoint(set(two.nid))
        store.update_text(text_nid(two, "y"), "Y")
        assert one.string_value(0) == "x"

    def test_remove_document(self, store):
        doc = store.add_document("tmp", "<a>x</a>")
        nid = doc.nid[0]
        store.remove_document("tmp")
        with pytest.raises(DocumentError):
            store.node(nid)
        with pytest.raises(DocumentError):
            store.document("tmp")

    def test_duplicate_name_rejected(self, store):
        store.add_document("dup", "<a/>")
        with pytest.raises(DocumentError):
            store.add_document("dup", "<b/>")


def test_insert_before_attribute_rejected(store):
    doc = store.add_document("attrs", '<a x="1"><b/></a>')
    attr = doc.nid[2]
    root = doc.nid[1]
    with pytest.raises(DocumentError):
        store.insert_xml(root, "<c/>", before_nid=attr)
