"""Tests for the command-line interface."""

import pytest

from repro.cli import main

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<age><decades>4</decades>2<years/></age>"
    "</person>"
)


@pytest.fixture()
def db(tmp_path):
    path = str(tmp_path / "db")
    assert main(["init", path, "--typed", "double", "--substring"]) == 0
    xml_file = tmp_path / "person.xml"
    xml_file.write_text(PERSON)
    assert main(["load", path, "person", str(xml_file)]) == 0
    return path


class TestInitLoad:
    def test_init_creates_manifest(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        assert main(["init", path]) == 0
        assert (tmp_path / "db" / "MANIFEST.json").exists()

    def test_load_reports_nodes(self, tmp_path, capsys):
        path = str(tmp_path / "db2")
        main(["init", path])
        xml_file = tmp_path / "p.xml"
        xml_file.write_text(PERSON)
        assert main(["load", path, "person", str(xml_file)]) == 0
        assert "loaded 'person'" in capsys.readouterr().out

    def test_generate(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        main(["init", path])
        assert main(["generate", path, "XMark1", "--scale", "0.02"]) == 0
        assert "generated XMark1" in capsys.readouterr().out

    def test_generate_unknown_dataset(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        main(["init", path])
        assert main(["generate", path, "Nope"]) == 2

    def test_generate_parallel(self, tmp_path, capsys):
        path = str(tmp_path / "db")
        main(["init", path])
        assert main([
            "generate", path, "XMark1", "--scale", "0.02",
            "--parallel", "2", "--parallel-backend", "thread",
        ]) == 0
        assert "generated XMark1" in capsys.readouterr().out
        assert main(["verify", path]) == 0

    def test_load_parallel_auto(self, db, tmp_path, capsys):
        xml_file = tmp_path / "p2.xml"
        xml_file.write_text(PERSON)
        assert main([
            "load", db, "person2", str(xml_file), "--parallel", "auto",
        ]) == 0
        assert "loaded 'person2'" in capsys.readouterr().out


class TestQueryLookup:
    def test_query(self, db, capsys):
        assert main(["query", db, "//person[.//age = 42]", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "index(double)" in out
        assert "1 hit(s)" in out

    def test_query_no_index(self, db, capsys):
        assert main(["query", db, "//first", "--no-index"]) == 0
        assert "hit(s)" in capsys.readouterr().out

    def test_lookup_string(self, db, capsys):
        assert main(["lookup", db, "--string", "ArthurDent"]) == 0
        assert "1 hit(s)" in capsys.readouterr().out

    def test_lookup_range(self, db, capsys):
        assert main(["lookup", db, "--range", "40", "45"]) == 0
        out = capsys.readouterr().out
        assert "hit(s)" in out and "<age>" in out

    def test_lookup_contains(self, db, capsys):
        assert main(["lookup", db, "--contains", "rthu"]) == 0
        assert "1 hit(s)" in capsys.readouterr().out

    def test_lookup_without_selector(self, db, capsys):
        assert main(["lookup", db]) == 2

    def test_stats(self, db, capsys):
        assert main(["stats", db]) == 0
        out = capsys.readouterr().out
        assert "person" in out and "index sizes" in out


class TestUpdate:
    def test_update_persists(self, db, capsys):
        main(["lookup", db, "--string", "Dent"])
        out = capsys.readouterr().out
        nid = next(
            line.split()[1]
            for line in out.splitlines()
            if "text 'Dent'" in line
        )
        assert main(["update", db, nid, "Prefect"]) == 0
        main(["lookup", db, "--string", "ArthurPrefect"])
        assert "1 hit(s)" in capsys.readouterr().out


class TestErrors:
    def test_missing_database(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope")]) == 1
        assert "error:" in capsys.readouterr().err


class TestWalIntegration:
    def test_update_is_wal_durable(self, db, tmp_path, capsys):
        main(["lookup", db, "--string", "Dent"])
        out = capsys.readouterr().out
        nid = next(
            line.split()[1]
            for line in out.splitlines()
            if "text 'Dent'" in line
        )
        main(["update", db, nid, "Prefect"])
        capsys.readouterr()
        # The next open recovers the update from the WAL.
        main(["lookup", db, "--string", "ArthurPrefect"])
        out = capsys.readouterr().out
        assert "recovered 1 update(s)" in out
        assert "1 hit(s)" in out

    def test_checkpoint_truncates_wal(self, db, capsys):
        main(["lookup", db, "--string", "Dent"])
        out = capsys.readouterr().out
        nid = next(
            line.split()[1]
            for line in out.splitlines()
            if "text 'Dent'" in line
        )
        main(["update", db, nid, "Prefect"])
        assert main(["checkpoint", db]) == 0
        capsys.readouterr()
        main(["lookup", db, "--string", "ArthurPrefect"])
        out = capsys.readouterr().out
        assert "recovered" not in out
        assert "1 hit(s)" in out

    def test_lookup_regex_via_cli(self, db, capsys):
        assert main(["lookup", db, "--regex", "Art.ur"]) == 0
        assert "1 hit(s)" in capsys.readouterr().out


class TestVerify:
    def test_clean_database_verifies(self, db, capsys):
        assert main(["verify", db]) == 0
        assert "verification: OK" in capsys.readouterr().out
