"""WAL frame integrity under corruption, tearing and short reads."""

import os

from repro.database import Database
from repro.storage.faults import (
    CrashPlan,
    FaultInjector,
    InjectedCrash,
    injected,
)
from repro.storage.format import write_header
from repro.storage.wal import (
    ReplayStats,
    TEXT_UPDATE,
    WAL_VERSION,
    WalRecord,
    WriteAheadLog,
    encode_frame,
    encode_record,
    replay_records,
)

_HEADER = 8  # magic + version


def _write_log(path, records, epoch=1):
    log = WriteAheadLog(path, epoch=epoch)
    for record in records:
        log.append(record)
    log.close()


class TestFraming:
    def test_records_carry_the_append_epoch(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path, epoch=3)
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        log.epoch = 4  # as after a checkpoint
        log.append(WalRecord(TEXT_UPDATE, 2, text="b"))
        log.close()
        stats = ReplayStats()
        records = list(replay_records(path, stats))
        assert [r.epoch for r in records] == [3, 4]
        assert stats.format_version == WAL_VERSION
        assert stats.records == 2
        assert stats.torn_tail == 0 and stats.rejected_crc == 0

    def test_bit_flip_rejected_by_crc(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_log(path, [
            WalRecord(TEXT_UPDATE, 1, text="aaaa"),
            WalRecord(TEXT_UPDATE, 2, text="bbbb"),
        ])
        data = bytearray(open(path, "rb").read())
        data[_HEADER + 10] ^= 0x40  # flip a bit inside the first body
        open(path, "wb").write(bytes(data))
        stats = ReplayStats()
        assert list(replay_records(path, stats)) == []
        assert stats.rejected_crc == 1

    def test_torn_frame_cannot_decode_as_shorter_record(self, tmp_path):
        """A frame cut at *any* byte boundary yields exactly the
        preceding records — never a phantom shorter record."""
        path = str(tmp_path / "wal.log")
        first = WalRecord(TEXT_UPDATE, 1, text="keep")
        second = WalRecord(TEXT_UPDATE, 2, text="torn away")
        _write_log(path, [first, second])
        whole = open(path, "rb").read()
        first_end = _HEADER + len(encode_frame(first, 1))
        for cut in range(first_end, len(whole)):
            open(path, "wb").write(whole[:cut])
            stats = ReplayStats()
            records = list(replay_records(path, stats))
            assert [r.text for r in records] == ["keep"], f"cut={cut}"
            assert stats.torn_tail + stats.rejected_crc == (
                1 if cut > first_end else 0
            ), f"cut={cut}"

    def test_garbage_after_valid_records_stops_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_log(path, [WalRecord(TEXT_UPDATE, 1, text="ok")])
        with open(path, "ab") as fh:
            fh.write(encode_record(WalRecord(TEXT_UPDATE, 9, text="raw")))
        records = list(replay_records(path))
        assert [r.text for r in records] == ["ok"]

    def test_legacy_v1_log_replays_with_epoch_zero(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with open(path, "wb") as fh:
            write_header(fh, version=1)
            fh.write(encode_record(WalRecord(TEXT_UPDATE, 7, text="old")))
        stats = ReplayStats()
        records = list(replay_records(path, stats))
        assert [(r.nid, r.epoch) for r in records] == [(7, 0)]
        assert stats.format_version == 1
        log = WriteAheadLog(path)
        assert log.needs_upgrade
        log.truncate(epoch=5)
        assert not log.needs_upgrade
        log.close()
        with open(path, "rb") as fh:
            assert fh.read(8)[4] == WAL_VERSION

    def test_short_read_simulation(self, tmp_path):
        path = str(tmp_path / "wal.log")
        _write_log(path, [
            WalRecord(TEXT_UPDATE, 1, text="one"),
            WalRecord(TEXT_UPDATE, 2, text="two"),
        ])
        body = os.path.getsize(path) - _HEADER
        with injected(FaultInjector(short_reads={"wal.replay": body - 4})):
            stats = ReplayStats()
            records = list(replay_records(path, stats))
        assert [r.text for r in records] == ["one"]
        assert stats.torn_tail == 1


class TestSyncLevels:
    def _count_fsyncs(self, monkeypatch):
        calls = []
        real = os.fsync

        def counting(fd):
            calls.append(fd)
            return real(fd)

        monkeypatch.setattr(os, "fsync", counting)
        return calls

    def test_truncate_and_close_fsync_when_configured(
        self, tmp_path, monkeypatch
    ):
        calls = self._count_fsyncs(monkeypatch)
        log = WriteAheadLog(str(tmp_path / "wal.log"), sync="fsync")
        after_init = len(calls)
        assert after_init >= 1  # fresh header is durable
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        after_append = len(calls)
        assert after_append > after_init
        log.truncate()  # the bug: this never fsynced the fresh header
        after_truncate = len(calls)
        assert after_truncate > after_append
        log.close()
        assert len(calls) > after_truncate

    def test_flush_mode_never_fsyncs(self, tmp_path, monkeypatch):
        calls = self._count_fsyncs(monkeypatch)
        log = WriteAheadLog(str(tmp_path / "wal.log"), sync="flush")
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        log.truncate()
        log.close()
        assert calls == []


class TestTornAppendRecovery:
    def test_torn_append_loses_only_the_torn_record(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("doc", "<r><a>one</a></r>")
        doc = db.store.document("doc")
        text = next(doc.nid[p] for p in range(len(doc)) if doc.kind[p] == 2)
        db.update_text(text, "first")
        plan = CrashPlan("wal.append", occurrence=1, keep_bytes=11)
        try:
            with injected(FaultInjector(crash=plan)):
                db.update_text(text, "second")
        except InjectedCrash:
            pass
        del db
        recovered = Database(path, checkpoint_every=0)
        assert recovered.recovered_records == 1
        assert recovered.recovery.torn_tail == 1
        doc = recovered.store.document("doc")
        assert doc.string_value(0) == "first"
        assert recovered.verify().ok
        recovered.close()
