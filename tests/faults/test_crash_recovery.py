"""The recovery property suite: crash at every injected fault point.

A recording pass enumerates every crashpoint a random update workload
actually crosses (WAL appends, every stage of the atomic snapshot
commit, the truncate window).  Each (point, occurrence) then becomes
one run: arm the injector, apply the same concrete ops until the
simulated power cut fires, abandon the database object, reopen, and
require the recovered state to equal an in-memory oracle — including
query results and a full first-principles ``verify()``.
"""

import shutil

import pytest

from repro.database import Database
from repro.storage.faults import (
    CrashPlan,
    FaultInjector,
    InjectedCrash,
    injected,
)

from .harness import (
    BASE_XML,
    DOC_NAME,
    TYPED,
    apply_op,
    assert_matches_oracle,
    generate_ops,
    make_oracles,
)

#: Seed chosen so the workload crosses every path of interest
#: (checkpoint ops included); asserted below, so a generator change
#: that silently drops coverage fails loudly.
OPS_SEED = 5
OPS_COUNT = 14


def _fresh_db(path) -> Database:
    db = Database(str(path), typed=TYPED, checkpoint_every=0)
    db.load(DOC_NAME, BASE_XML)
    return db


def _record_hits(tmp_path, ops) -> dict[str, int]:
    db = _fresh_db(tmp_path / "recording")
    recorder = FaultInjector()
    with injected(recorder):
        for op in ops:
            apply_op(db, op)
    db.close()
    return dict(recorder.hits)


def _plans(hits: dict[str, int]) -> list[CrashPlan]:
    plans = []
    for point, count in sorted(hits.items()):
        for occurrence in range(1, count + 1):
            plans.append(CrashPlan(point, occurrence))
            if point == "wal.append":
                # Torn variant: part of the frame reaches the file.
                plans.append(CrashPlan(point, occurrence, keep_bytes=9))
    return plans


def _run_until_crash(db, ops, plan):
    """Apply ops under an armed injector; returns the index of the op
    the crash interrupted (None if the plan never fired)."""
    try:
        with injected(FaultInjector(crash=plan)):
            for i, op in enumerate(ops):
                apply_op(db, op)
    except InjectedCrash:
        return i
    return None


def test_workload_crosses_all_fault_paths(tmp_path):
    ops = generate_ops(OPS_SEED, OPS_COUNT)
    kinds = {op[0] for op in ops}
    assert "checkpoint" in kinds and "insert_xml" in kinds
    hits = _record_hits(tmp_path, ops)
    for point in (
        "wal.append",
        "wal.appended",
        "wal.truncated",
        "persist.file.write",
        "persist.file.before_rename",
        "persist.file.renamed",
        "persist.files_committed",
        "persist.before_manifest",
        "persist.manifest.write",
        "persist.manifest.before_rename",
        "persist.manifest.renamed",
        "persist.manifest_committed",
        "persist.gc_done",
        "checkpoint.after_snapshot",
    ):
        assert hits.get(point), f"workload never hit {point}"


def test_every_crashpoint_recovers_to_oracle(tmp_path):
    ops = generate_ops(OPS_SEED, OPS_COUNT)
    oracles = make_oracles(ops)
    hits = _record_hits(tmp_path, ops)
    plans = _plans(hits)
    assert len(plans) > 20
    for serial, plan in enumerate(plans):
        db_path = tmp_path / f"run{serial}"
        db = _fresh_db(db_path)
        crashed_at = _run_until_crash(db, ops, plan)
        assert crashed_at is not None, f"{plan!r} never fired"
        # Simulated power cut: the object is abandoned un-closed.
        recovered = Database(str(db_path), typed=TYPED, checkpoint_every=0)
        if plan.point == "wal.appended":
            # The record was durable before the crash: it must survive.
            admissible = (crashed_at + 1,)
        elif plan.point == "wal.append":
            # The record never (fully) reached the file: it is lost.
            admissible = (crashed_at,)
        else:
            admissible = (crashed_at + 1, crashed_at)
        assert_matches_oracle(
            recovered, oracles, admissible,
            f"plan {plan!r} (op {crashed_at})",
        )
        recovered.close()


def test_recovery_refold_crashpoints(tmp_path):
    """Crashing *during recovery itself* (the replay-refold-truncate
    sequence) must never lose or duplicate the durable records."""
    ops = [
        op for op in generate_ops(OPS_SEED + 1, 10) if op[0] != "checkpoint"
    ]
    assert ops
    oracles = make_oracles(ops)
    final = len(ops)

    base = tmp_path / "base"
    db = _fresh_db(base)
    for op in ops:
        apply_op(db, op)
    del db  # crash with a full WAL: recovery has work to do

    recording = tmp_path / "recording"
    shutil.copytree(base, recording)
    recorder = FaultInjector()
    with injected(recorder):
        # Scope the recording to the constructor: these hits are
        # exactly the recovery path (replay, refold, truncate).
        reopened = Database(str(recording), typed=TYPED, checkpoint_every=0)
    reopened.close()
    assert recorder.hits.get("recovery.before_refold")
    assert recorder.hits.get("recovery.refolded")

    for serial, plan in enumerate(_plans(dict(recorder.hits))):
        run = tmp_path / f"refold{serial}"
        shutil.copytree(base, run)
        with injected(FaultInjector(crash=plan)):
            with pytest.raises(InjectedCrash):
                Database(str(run), typed=TYPED, checkpoint_every=0)
        recovered = Database(str(run), typed=TYPED, checkpoint_every=0)
        assert_matches_oracle(
            recovered, oracles, (final,), f"recovery crash {plan!r}"
        )
        recovered.close()
