"""Targeted crash tests for the atomic snapshot commit protocol."""

import json
import os

import pytest

from repro.core import IndexManager
from repro.database import Database
from repro.storage import save_manager
from repro.storage.faults import (
    CrashPlan,
    FaultInjector,
    InjectedCrash,
    injected,
)
from repro.storage.format import write_header
from repro.storage.persist import read_manifest
from repro.storage.wal import WalRecord, TEXT_UPDATE, encode_record
from repro.xmldb import ELEM, TEXT

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<age>42</age>"
    "</person>"
)


def _text_nid(db, content):
    doc = db.store.document("person")
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(content)


def _elem_nid(db, name):
    doc = db.store.document("person")
    for pre in range(len(doc)):
        if doc.kind[pre] == ELEM and doc.name_of(pre) == name:
            return doc.nid[pre]
    raise AssertionError(name)


class TestDoubleReplayWindow:
    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        """The historic bug: a crash after the snapshot commit but
        before the WAL truncate used to replay the old WAL over the
        *new* snapshot, duplicating the inserted subtree.  The epoch
        guard must skip those already-folded records instead."""
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("person", PERSON)
        db.insert_xml(_elem_nid(db, "person"), "<iq>160</iq>")
        with injected(FaultInjector(CrashPlan("checkpoint.after_snapshot"))):
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        del db  # power cut between snapshot commit and WAL truncate
        recovered = Database(path, checkpoint_every=0)
        assert recovered.recovered_records == 0
        assert recovered.recovery.skipped_epoch == 1
        # Exactly one <iq> — the unguarded code double-applied it.
        assert len(recovered.query("//person/iq")) == 1
        assert len(list(recovered.lookup_typed_equal("double", 160.0))) == 2
        assert recovered.verify().ok
        recovered.close()

    def test_recovery_refold_crash_does_not_double_apply(self, tmp_path):
        """Same window inside recovery itself: replayed records are
        refolded into a snapshot before the WAL is truncated."""
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("person", PERSON)
        db.insert_xml(_elem_nid(db, "person"), "<iq>160</iq>")
        del db  # crash: WAL holds the insert
        with injected(FaultInjector(CrashPlan("recovery.refolded"))):
            with pytest.raises(InjectedCrash):
                Database(path, checkpoint_every=0)
        recovered = Database(path, checkpoint_every=0)
        assert recovered.recovered_records == 0
        assert recovered.recovery.skipped_epoch == 1
        assert len(recovered.query("//person/iq")) == 1
        assert recovered.verify().ok
        recovered.close()


class TestAtomicSnapshot:
    @pytest.mark.parametrize("point, keep", [
        ("persist.file.write", 16),
        ("persist.file.before_rename", None),
        ("persist.manifest.write", 10),
        ("persist.manifest.before_rename", None),
    ])
    def test_crash_mid_snapshot_preserves_previous_state(
        self, tmp_path, point, keep
    ):
        """A crash anywhere before the manifest rename leaves the old
        snapshot committed; the WAL still carries the update."""
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("person", PERSON)
        db.update_text(_text_nid(db, "Dent"), "Prefect")
        with injected(FaultInjector(CrashPlan(point, keep_bytes=keep))):
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        del db
        recovered = Database(path, checkpoint_every=0)
        assert recovered.recovered_records == 1  # replayed from the WAL
        assert list(recovered.lookup_string("ArthurPrefect"))
        assert recovered.verify().ok
        recovered.close()

    def test_torn_snapshot_files_never_loaded(self, tmp_path):
        """A torn data file from a crashed commit is left under a
        stale name the committed manifest never references."""
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("person", PERSON)
        epoch_before = db.checkpoint_epoch
        with injected(FaultInjector(
            CrashPlan("persist.file.write", keep_bytes=7)
        )):
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        del db
        manifest = read_manifest(path)
        assert manifest["epoch"] == epoch_before
        for stem in manifest["documents"].values():
            assert stem.endswith(f"@{epoch_before}")
        Database(path, checkpoint_every=0).close()  # loads fine

    def test_stale_epochs_garbage_collected(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("person", PERSON)
        db.update_text(_text_nid(db, "Dent"), "Prefect")
        db.checkpoint()
        db.checkpoint()
        db.close()  # checkpoints once more
        epoch = db.checkpoint_epoch
        data = [f for f in os.listdir(path)
                if f.endswith((".doc", ".sidx", ".tidx"))]
        assert data
        assert all(f"@{epoch}." in f for f in data)
        assert not any(f.endswith(".tmp") for f in os.listdir(path))

    def test_checkpoint_epochs_increase_monotonically(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=0)
        db.load("person", PERSON)
        first = db.checkpoint_epoch
        db.checkpoint()
        assert db.checkpoint_epoch == first + 1
        db.close()  # close() checkpoints again
        reopened = Database(path, checkpoint_every=0)
        assert reopened.checkpoint_epoch == first + 2
        reopened.close()


class TestV1Compatibility:
    def _make_v1_database(self, path: str) -> int:
        """Write a database, then rewrite it in the version-1 layout:
        no epoch/version in the manifest, unsuffixed stems, and a
        legacy unframed WAL carrying one update."""
        manager = IndexManager(typed=("double",))
        manager.load("person", PERSON)
        save_manager(manager, path)
        doc = manager.store.document("person")
        dent = next(
            doc.nid[p] for p in range(len(doc))
            if doc.kind[p] == TEXT and doc.text_of(p) == "Dent"
        )
        with open(os.path.join(path, "MANIFEST.json")) as fh:
            manifest = json.load(fh)
        manifest.pop("version")
        manifest.pop("epoch")
        stems = {}
        for name, stem in manifest["documents"].items():
            base = stem.split("@")[0]
            for entry in list(os.listdir(path)):
                if entry == f"{stem}.doc" or entry.startswith(f"{stem}."):
                    os.rename(
                        os.path.join(path, entry),
                        os.path.join(path, base + entry[len(stem):]),
                    )
            stems[name] = base
        manifest["documents"] = stems
        with open(os.path.join(path, "MANIFEST.json"), "w") as fh:
            json.dump(manifest, fh)
        with open(os.path.join(path, "wal.log"), "wb") as fh:
            write_header(fh, version=1)
            fh.write(encode_record(WalRecord(TEXT_UPDATE, dent, text="Prefect")))
        return dent

    def test_v1_database_opens_and_upgrades(self, tmp_path):
        path = str(tmp_path / "db")
        self._make_v1_database(path)
        db = Database(path, checkpoint_every=0)
        assert db.recovery.wal_format == 1
        assert db.recovered_records == 1  # the legacy record replayed
        assert list(db.lookup_string("ArthurPrefect"))
        # The refold moved the directory to the epoch protocol ...
        assert read_manifest(path)["epoch"] == 1
        db.update_text(_text_nid(db, "Prefect"), "Dent")
        db.close(checkpoint=False)
        # ... and new WAL writes use the framed format.
        reopened = Database(path, checkpoint_every=0)
        assert reopened.recovery.wal_format == 2
        assert reopened.recovered_records == 1
        assert reopened.verify().ok
        reopened.close()
