"""Shared machinery for the crash-recovery fault-injection suite.

The suite's shape: generate a *concrete* random update sequence once
(every op names explicit nids, so it replays identically on any
database seeded with the same document), build an in-memory oracle
after every prefix of the sequence, then crash a real
:class:`~repro.database.Database` at injected fault points and check
that reopening yields a state identical to one of the admissible
oracle prefixes.

Determinism notes: node-id allocation is a plain counter, so a fresh
database loading the same document and applying the same ops allocates
the same nids as the oracle manager — which is exactly the property
WAL replay itself relies on.
"""

from __future__ import annotations

import random

from repro.core import IndexManager
from repro.query import query as run_query
from repro.xmldb import ATTR, ELEM, TEXT

__all__ = [
    "BASE_XML",
    "DOC_NAME",
    "TYPED",
    "QUERIES",
    "generate_ops",
    "apply_op",
    "make_oracles",
    "signature",
    "assert_matches_oracle",
]

DOC_NAME = "doc"
TYPED = ("double",)
BASE_XML = (
    "<people>"
    "<person><name>Arthur</name><age>42</age></person>"
    "<person><name>Trillian</name><age>30</age></person>"
    "<note>towel</note>"
    "</people>"
)
#: Queries compared between recovered database and oracle.
QUERIES = ["//person[age = 42]", "//extra", "//person"]


def _nids_of_kind(doc, kind):
    return [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == kind]


def generate_ops(seed: int, count: int):
    """A concrete op list, generated against a scratch manager so every
    op targets a node that is alive at its point in the sequence."""
    rng = random.Random(seed)
    scratch = IndexManager(typed=TYPED)
    scratch.load(DOC_NAME, BASE_XML)
    ops = []
    attr_serial = 0
    while len(ops) < count:
        doc = scratch.store.document(DOC_NAME)
        texts = _nids_of_kind(doc, TEXT)
        attrs = _nids_of_kind(doc, ATTR)
        root_nid = doc.nid[doc.root_element()]
        elems = [n for n in _nids_of_kind(doc, ELEM) if n != root_nid]
        roll = rng.random()
        if roll < 0.30 and texts:
            op = ("update_text",
                  (rng.choice(texts), str(rng.randint(0, 99))))
        elif roll < 0.55:
            parent = rng.choice(elems + [root_nid])
            op = ("insert_xml",
                  (parent, f"<extra><n>{rng.randint(0, 999)}</n></extra>"))
        elif roll < 0.65 and len(elems) > 4:
            op = ("delete_subtree", (rng.choice(elems),))
        elif roll < 0.75:
            attr_serial += 1
            op = ("insert_attribute",
                  (rng.choice(elems + [root_nid]), f"a{attr_serial}",
                   str(rng.randint(0, 999))))
        elif roll < 0.82 and attrs:
            op = ("delete_attribute", (rng.choice(attrs),))
        elif roll < 0.90 and elems:
            op = ("rename", (rng.choice(elems), f"tag{rng.randint(0, 9)}"))
        else:
            op = ("checkpoint", ())
        apply_op(scratch, op)
        ops.append(op)
    return ops


def apply_op(target, op) -> None:
    """Apply one op to a Database or an (oracle) IndexManager."""
    name, args = op
    if name == "checkpoint":
        # Durability-only: a no-op on the in-memory oracle.
        if hasattr(target, "checkpoint"):
            target.checkpoint()
        return
    getattr(target, name)(*args)


def make_oracles(ops):
    """Oracle managers after every prefix: ``oracles[k]`` holds the
    state after the first ``k`` ops."""
    oracles = []
    for k in range(len(ops) + 1):
        manager = IndexManager(typed=TYPED)
        manager.load(DOC_NAME, BASE_XML)
        for op in ops[:k]:
            apply_op(manager, op)
        oracles.append(manager)
    return oracles


def signature(manager) -> dict:
    """Everything that defines logical database state."""
    store = manager.store
    return {
        "docs": {
            name: doc.serialize() for name, doc in store.documents.items()
        },
        "next_nid": store._next_nid,
        "string": (
            sorted(manager.string_index.hash_of.items())
            if manager.string_index is not None
            else None
        ),
        "typed": {
            name: sorted(index._value_of.items())
            for name, index in manager.typed_indexes.items()
        },
    }


def assert_matches_oracle(db, oracles, admissible, context: str) -> int:
    """Recovered state must equal the oracle after one of the
    ``admissible`` prefix lengths; returns the matched prefix."""
    recovered_sig = signature(db.manager)
    matched = None
    for k in admissible:
        if recovered_sig == signature(oracles[k]):
            matched = k
            break
    assert matched is not None, (
        f"{context}: recovered state matches no admissible oracle prefix "
        f"{sorted(admissible)}"
    )
    oracle = oracles[matched]
    for xpath in QUERIES:
        assert sorted(db.query(xpath)) == sorted(run_query(oracle, xpath)), (
            f"{context}: query {xpath!r} diverges from oracle prefix "
            f"{matched}"
        )
    report = db.verify()
    assert report.ok, f"{context}: verify() failed: {report.summary()}"
    return matched
