"""Cross-module metamorphic properties over the whole pipeline.

These tests tie the subsystems together: random documents flow through
generate -> shred -> index -> (serialize | persist | update | query)
and invariants that must survive every stage are checked.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexManager, hash_string
from repro.core.hashing import hash_strings
from repro.query import query
from repro.storage import load_manager, save_manager
from repro.workloads import collect_stats, generate_xmark
from repro.xmldb import Store, TEXT

_names = st.sampled_from("abcdef")
_texts = st.sampled_from(
    ["", "x", "42", "4.2", " .5", "E+9", "hello world", "<&>'\"", "héllo"]
)


@st.composite
def xml_documents(draw, max_depth=4):
    """Random well-formed documents with attributes and mixed content."""

    def element(depth):
        name = draw(_names)
        attrs = ""
        for attr in draw(st.lists(_names, max_size=2, unique=True)):
            value = (
                draw(_texts)
                .replace('"', "")
                .replace("<", "")
                .replace("&", "")
            )
            attrs += f' {attr}="{value}"'
        if depth >= max_depth:
            return f"<{name}{attrs}/>"
        parts = []
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                text = draw(_texts).replace("<", "").replace("&", "")
                parts.append(text)
            else:
                parts.append(element(depth + 1))
        return f"<{name}{attrs}>{''.join(parts)}</{name}>"

    return element(0)


class TestSerializeShredFixpoint:
    @given(xml_documents())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_preserves_everything(self, xml):
        store = Store()
        doc = store.add_document("a", xml)
        doc.check_invariants()
        serialized = doc.serialize()
        again = Store().add_document("b", serialized)
        # Serialisation is a fixpoint after one round.
        assert again.serialize() == serialized
        # Node structure and values identical.
        assert again.kind == doc.kind
        assert again.size == doc.size
        assert again.texts == doc.texts

    @given(xml_documents())
    @settings(max_examples=50, deadline=None)
    def test_stats_invariant_under_roundtrip(self, xml):
        one = collect_stats(Store().add_document("a", xml))
        two = collect_stats(
            Store().add_document("b", Store().add_document("c", xml).serialize())
        )
        assert one.total_nodes == two.total_nodes
        assert one.text_nodes == two.text_nodes
        assert one.double_values == two.double_values


class TestIndexInvariants:
    @given(xml_documents())
    @settings(max_examples=60, deadline=None)
    def test_every_node_hash_matches_string_value(self, xml):
        manager = IndexManager(typed=("double",))
        doc = manager.load("doc", xml)
        for pre in range(len(doc)):
            if doc.kind[pre] in (4, 5):  # comments/PIs not indexed
                continue
            assert manager.string_index.hash_of[doc.nid[pre]] == hash_string(
                doc.string_value(pre)
            )

    @given(xml_documents())
    @settings(max_examples=60, deadline=None)
    def test_typed_entries_match_direct_cast(self, xml):
        manager = IndexManager(typed=("double",))
        doc = manager.load("doc", xml)
        index = manager.typed_index("double")
        plugin = index.plugin
        for pre in range(len(doc)):
            if doc.kind[pre] in (4, 5):
                continue
            expected = plugin.value_of_text(doc.string_value(pre))
            assert index.value_of(doc.nid[pre]) == expected

    @given(xml_documents())
    @settings(max_examples=40, deadline=None)
    def test_persistence_is_transparent(self, xml):
        import tempfile

        manager = IndexManager(typed=("double",))
        manager.load("doc", xml)
        with tempfile.TemporaryDirectory() as target:
            save_manager(manager, target)
            loaded = load_manager(target)
        assert loaded.string_index.hash_of == manager.string_index.hash_of
        loaded.check_consistency()


class TestQueryAgreement:
    @given(xml_documents(), _names, st.sampled_from(["42", "4.2", "x"]))
    @settings(max_examples=60, deadline=None)
    def test_index_and_scan_agree_on_random_docs(self, xml, name, literal):
        manager = IndexManager(typed=("double",))
        manager.load("doc", xml)
        if literal.replace(".", "").isdigit():
            text = f"//{name}[. = {literal}]"
        else:
            text = f'//{name}[. = "{literal}"]'
        assert query(manager, text) == query(manager, text, use_indexes=False)


class TestBatchHashing:
    @given(st.lists(_texts, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_batch_equals_scalar(self, values):
        assert hash_strings(values) == [hash_string(v) for v in values]

    def test_large_batch(self):
        values = [f"value-{i}" * (i % 7) for i in range(5000)]
        assert hash_strings(values) == [hash_string(v) for v in values]


def test_end_to_end_update_storm():
    """A long random session: updates, inserts, deletes, queries,
    persistence — everything stays consistent."""
    rng = random.Random(1234)
    manager = IndexManager(typed=("double",), substring=True)
    doc = manager.load("xmark", generate_xmark(0.5, seed=77))
    for step in range(60):
        roll = rng.random()
        texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
        if roll < 0.5:
            nid = rng.choice(texts)
            manager.update_text(nid, rng.choice(["77", "marvin", "8.25", ""]))
        elif roll < 0.7:
            root = doc.nid[doc.root_element()]
            manager.insert_xml(root, f"<extra{step}>{step}</extra{step}>")
        elif roll < 0.8:
            extras = [
                doc.nid[p]
                for p in range(len(doc))
                if doc.kind[p] == 1 and doc.name_of(p).startswith("extra")
            ]
            if extras:
                manager.delete_subtree(rng.choice(extras))
        else:
            text = "//item[quantity = 77]"
            assert query(manager, text) == query(
                manager, text, use_indexes=False
            )
    manager.check_consistency()
