"""Unit and property tests for the hash function H and combiner C."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import (
    EMPTY_HASH,
    HashAccumulator,
    c_array_of,
    combine,
    combine_all,
    hash_string,
    mask5,
    mask27,
    offset_of,
)


def reference_hash(value: str) -> int:
    """Literal transcription of paper Figure 2 (32-bit C semantics)."""
    hval = 0
    offset = 0
    for byte in value.encode("utf-8"):
        c = byte & 127
        hval = (hval ^ (c << offset)) & 0xFFFFFFFF
        if offset > 20:
            hval ^= c >> (27 - offset)
        offset += 5
        if offset > 26:
            offset -= 27
    hval = ((hval << 5) & 0xFFFFFFFF) | offset
    return hval


class TestHashBasics:
    def test_empty_string_hashes_to_zero(self):
        assert hash_string("") == EMPTY_HASH == 0

    def test_is_32_bit(self):
        for text in ("a", "Arthur", "x" * 1000, "é€"):
            assert 0 <= hash_string(text) <= 0xFFFFFFFF

    def test_offset_encodes_length_times_5_mod_27(self):
        for n in range(0, 60):
            assert offset_of(hash_string("a" * n)) == (5 * n) % 27

    def test_single_character(self):
        # One char: c-array = 7 low bits of the char, offset = 5.
        hval = hash_string("A")
        assert c_array_of(hval) == ord("A")
        assert offset_of(hval) == 5

    def test_paper_figure3_example(self):
        """Figure 3: H("Arthur") — c-array bits and offc value 3."""
        hval = hash_string("Arthur")
        assert offset_of(hval) == 3  # offc bits 00011 per the figure
        # Recompute the c-array the way Figure 3 lays it out.
        expected = 0
        offset = 0
        for ch in "Arthur":
            c = ord(ch) & 127
            expected ^= (c << offset) & ((1 << 27) - 1)
            if offset > 20:
                expected ^= c >> (27 - offset)
            offset = (offset + 5) % 27
        assert c_array_of(hval) == expected

    def test_accepts_bytes(self):
        assert hash_string(b"Arthur") == hash_string("Arthur")

    def test_distinct_strings_usually_distinct(self):
        values = {hash_string(w) for w in ("Arthur", "Dent", "Prefect", "42", "4.2")}
        assert len(values) == 5

    def test_mask_helpers_partition_the_word(self):
        hval = hash_string("Arthur Dent")
        assert mask5(hval) | mask27(hval) == hval
        assert mask5(hval) & mask27(hval) == 0


class TestKnownCollisions:
    def test_same_char_27_apart_cancels(self):
        """Characters repeated 27 positions apart XOR at the same c-array
        offset, so swapping them collides — the paper's Wiki URL
        pathology (Section 6)."""
        base = "http://www."
        middle = "x" * 26
        a = base + "a" + middle + "b" + "/rest"
        b = base + "b" + middle + "a" + "/rest"
        assert a != b
        assert hash_string(a) == hash_string(b)

    def test_transposition_not_27_apart_does_not_cancel(self):
        a = "http://www." + "a" + "x" * 25 + "b"
        b = "http://www." + "b" + "x" * 25 + "a"
        assert hash_string(a) != hash_string(b)


class TestCombine:
    def test_matches_paper_example_name(self):
        left = hash_string("Arthur")
        right = hash_string("Dent")
        assert combine(left, right) == hash_string("ArthurDent")

    def test_empty_hash_is_identity(self):
        for text in ("", "a", "Arthur", "x" * 100):
            hval = hash_string(text)
            assert combine(EMPTY_HASH, hval) == hval
            assert combine(hval, EMPTY_HASH) == hval

    def test_combine_all_person_subtree(self):
        """The paper's person document: h<person> from child hashes."""
        parts = ["Arthur", "Dent", "1966-09-26", "42", "78.230"]
        combined = combine_all(hash_string(p) for p in parts)
        assert combined == hash_string("".join(parts))

    def test_combine_all_empty_is_empty_hash(self):
        assert combine_all([]) == EMPTY_HASH


class TestHashAccumulator:
    def test_chunked_equals_whole(self):
        acc = HashAccumulator()
        for chunk in ("Arth", "ur", " ", "Dent"):
            acc.update(chunk)
        assert acc.digest() == hash_string("Arthur Dent")

    def test_reset(self):
        acc = HashAccumulator()
        acc.update("junk")
        acc.reset()
        assert acc.digest() == EMPTY_HASH

    def test_update_hash(self):
        acc = HashAccumulator()
        acc.update_hash(hash_string("Arthur"))
        acc.update_hash(hash_string("Dent"))
        assert acc.digest() == hash_string("ArthurDent")


# Text strategy that covers ASCII, multi-byte UTF-8 and long strings.
_texts = st.text(max_size=80) | st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=127), max_size=200
)


class TestHashProperties:
    @given(_texts)
    def test_matches_reference_transcription(self, text):
        assert hash_string(text) == reference_hash(text)

    @given(_texts, _texts)
    @settings(max_examples=300)
    def test_concat_homomorphism(self, a, b):
        """The defining property: H(a+b) == C(H(a), H(b))."""
        assert hash_string(a + b) == combine(hash_string(a), hash_string(b))

    @given(_texts, _texts, _texts)
    def test_combine_is_associative(self, a, b, c):
        ha, hb, hc = hash_string(a), hash_string(b), hash_string(c)
        assert combine(combine(ha, hb), hc) == combine(ha, combine(hb, hc))

    @given(st.lists(_texts, max_size=8))
    def test_combine_all_equals_hash_of_concat(self, parts):
        assert combine_all(hash_string(p) for p in parts) == hash_string(
            "".join(parts)
        )

    @given(_texts)
    def test_stored_form_is_32_bit(self, text):
        assert 0 <= hash_string(text) <= 0xFFFFFFFF


@pytest.mark.parametrize(
    "text",
    ["", "a", "Arthur", "x" * 26, "x" * 27, "x" * 28, "é" * 30, "x" * 997],
)
def test_boundary_lengths_match_reference(text):
    assert hash_string(text) == reference_hash(text)
