"""Tests for the transition monoid / SCT construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import get_plugin
from repro.core.fsm.double import DOUBLE_SPEC
from repro.core.fsm.monoid import REJECT, TransitionMonoid


@pytest.fixture(scope="module")
def monoid():
    return TransitionMonoid(DOUBLE_SPEC.compile())


DOUBLE_ALPHABET = "0123456789+-.eE \t"
double_texts = st.text(alphabet=DOUBLE_ALPHABET, max_size=30)


class TestConstruction:
    def test_reject_is_element_zero(self, monoid):
        assert monoid.elements[REJECT] == tuple([0] * monoid.dfa.n_states)

    def test_identity_fixes_everything(self, monoid):
        assert monoid.elements[monoid.identity] == tuple(
            range(monoid.dfa.n_states)
        )

    def test_size_is_one_byte(self, monoid):
        """The paper stores a double state in one byte (60 states there;
        our minimal monoid is smaller because the paper's hand count
        includes presentation copies)."""
        assert 2 < len(monoid) <= 255

    def test_reject_is_absorbing(self, monoid):
        for element in range(len(monoid)):
            assert monoid.combine(REJECT, element) == REJECT
            assert monoid.combine(element, REJECT) == REJECT

    def test_identity_is_neutral(self, monoid):
        for element in range(len(monoid)):
            assert monoid.combine(monoid.identity, element) == element
            assert monoid.combine(element, monoid.identity) == element

    def test_table_closed(self, monoid):
        size = len(monoid)
        for row in monoid.table:
            assert all(0 <= e < size for e in row)

    def test_max_elements_enforced(self):
        with pytest.raises(ValueError, match="exceeds"):
            TransitionMonoid(DOUBLE_SPEC.compile(), max_elements=5)


class TestSemantics:
    def test_castable_matches_dfa_acceptance(self, monoid):
        dfa = monoid.dfa
        for text in ("42", " 42 ", "4.2", ".5", "12.", "+4.2E1", "1e3"):
            assert monoid.castable[monoid.state_of_text(text)], text
            assert dfa.accepts(text), text
        for text in ("", " ", "+", "E", "4.2.", "42x"):
            state = monoid.state_of_text(text)
            assert not monoid.castable[state], text

    def test_useful_vs_useless(self, monoid):
        # "." can be completed ("4.2"); "42 x" never can.
        assert monoid.useful[monoid.state_of_text(".")]
        assert monoid.useful[monoid.state_of_text("E+")]
        assert monoid.state_of_text("42 x") == REJECT
        # "42 " followed by "5": whitespace between digits kills it —
        # the combination is non-rejected text-wise but useless.
        state = monoid.combine(
            monoid.state_of_text("42 "), monoid.state_of_text("5")
        )
        assert state == REJECT or not monoid.useful[state]

    def test_paper_fragment_states(self, monoid):
        """Paper Section 4 examples: "E+93 " and " +32.3" are potential
        valid; "42 text" rejects; "78" and "." combine with "230"."""
        assert monoid.state_of_text("E+93 ") != REJECT
        assert monoid.state_of_text(" +32.3") != REJECT
        assert monoid.state_of_text("42 text") == REJECT
        combined = monoid.combine_all(
            [monoid.state_of_text("78"), monoid.state_of_text("."),
             monoid.state_of_text("230")]
        )
        assert monoid.castable[combined]

    @given(double_texts, double_texts)
    @settings(max_examples=300)
    def test_sct_is_concatenation(self, monoid, a, b):
        """state(a+b) == SCT[state(a)][state(b)] for arbitrary fragments."""
        assert monoid.state_of_text(a + b) == monoid.combine(
            monoid.state_of_text(a), monoid.state_of_text(b)
        )

    @given(double_texts, double_texts, double_texts)
    @settings(max_examples=200)
    def test_sct_is_associative(self, monoid, a, b, c):
        sa, sb, sc = (monoid.state_of_text(t) for t in (a, b, c))
        assert monoid.combine(monoid.combine(sa, sb), sc) == monoid.combine(
            sa, monoid.combine(sb, sc)
        )

    @given(double_texts)
    def test_castable_iff_dfa_accepts(self, monoid, text):
        assert monoid.castable[monoid.state_of_text(text)] == (
            monoid.dfa.accepts(text)
        )


class TestClassRuns:
    def test_run_matches_repeated_generator(self, monoid):
        digit = monoid.dfa.class_names.index("digit")
        for length in (1, 2, 3, 7, 50, 1000):
            assert monoid.class_run(digit, length) == monoid.state_of_text(
                "5" * length
            )

    def test_zero_length_run_is_identity(self, monoid):
        assert monoid.class_run(0, 0) == monoid.identity

    def test_ws_generator_is_idempotent(self, monoid):
        ws = monoid.dfa.class_names.index("ws")
        gen = monoid.generator(ws)
        assert monoid.is_idempotent(gen)

    def test_cache_consistency_after_long_run(self, monoid):
        digit = monoid.dfa.class_names.index("digit")
        long = monoid.class_run(digit, 10_000)
        short = monoid.class_run(digit, 3)
        assert long == monoid.state_of_text("1" * 3) == short


class TestAllBuiltinTypes:
    @pytest.mark.parametrize(
        "name", ["double", "integer", "decimal", "boolean", "date", "time"]
    )
    def test_monoid_fits_a_byte(self, name):
        assert len(get_plugin(name).monoid) <= 255

    def test_datetime_monoid_is_bounded(self):
        assert len(get_plugin("dateTime").monoid) <= 4096
