"""Tests for the hash diagnostics module."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hash_analysis import (
    avalanche_matrix,
    bit_balance,
    collision_classes,
    periodicity_defect,
)
from repro.core.hashing import hash_string


class TestAvalanche:
    def test_linear_hash_has_deterministic_avalanche(self):
        matrix = avalanche_matrix(4)
        assert all(cell in (0.0, 1.0) for row in matrix for cell in row)

    def test_every_input_bit_reaches_some_output_bit(self):
        matrix = avalanche_matrix(6)
        for row in matrix:
            assert any(row), "an input bit vanished entirely"

    def test_shape(self):
        matrix = avalanche_matrix(3)
        assert len(matrix) == 3 * 7
        assert all(len(row) == 32 for row in matrix)

    def test_27_period_bits_hit_same_outputs(self):
        """Positions i and i+27 map to identical output bit sets —
        the structural root of the paper's URL pathology."""
        matrix = avalanche_matrix(28)
        for bit in range(7):
            assert matrix[0 * 7 + bit] == matrix[27 * 7 + bit]


class TestBitBalance:
    def test_empty_corpus(self):
        assert bit_balance([]) == [0.0] * 32

    def test_fractions_in_range(self):
        corpus = [f"value {i}" for i in range(100)]
        balance = bit_balance(corpus)
        assert all(0.0 <= b <= 1.0 for b in balance)
        # The c-array bits (5..31) should be reasonably balanced over a
        # varied corpus.
        c_bits = balance[5:]
        assert sum(c_bits) / len(c_bits) > 0.2

    def test_offc_bits_encode_length(self):
        # All strings of one length share the offc field.
        corpus = [f"{i:04d}" for i in range(50)]
        balance = bit_balance(corpus)
        expected_offset = (5 * 4) % 27
        for bit in range(5):
            expected = float((expected_offset >> bit) & 1)
            assert balance[bit] == expected


class TestCollisionClasses:
    def test_no_collisions_in_tiny_corpus(self):
        assert collision_classes(["a", "b", "c"]) == {}

    def test_engineered_collision_found(self):
        a = "x" + "q" * 26 + "y"
        b = "y" + "q" * 26 + "x"
        classes = collision_classes([a, b, "unrelated"])
        assert list(classes.values()) == [sorted([a, b])]

    def test_duplicates_not_counted(self):
        assert collision_classes(["same", "same"]) == {}


class TestPeriodicityDefect:
    def test_short_strings_have_no_defect(self):
        assert periodicity_defect("short") is None

    def test_uniform_strings_have_no_defect(self):
        assert periodicity_defect("a" * 60) is None

    def test_constructed_partner_collides(self):
        value = "http://www.example.org/wiki/Some_Long_Article_Title_Here"
        partner = periodicity_defect(value)
        assert partner is not None
        assert partner != value
        assert hash_string(partner) == hash_string(value)

    @given(st.text(alphabet="abc", min_size=28, max_size=80))
    @settings(max_examples=100)
    def test_defect_always_collides_when_found(self, value):
        partner = periodicity_defect(value)
        if partner is not None:
            assert partner != value
            assert hash_string(partner) == hash_string(value)
