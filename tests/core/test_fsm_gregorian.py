"""Tests for the Gregorian partial-date machines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import get_plugin


@pytest.fixture(scope="module")
def gyear():
    return get_plugin("gYear")


class TestGYear:
    @pytest.mark.parametrize("text", ["2008", "0001", " 2008 ", "2008Z",
                                      "2008+05:00", "2008-05:00"])
    def test_valid(self, gyear, text):
        assert gyear.value_of_text(text) is not None, text

    @pytest.mark.parametrize("text", ["208", "20081", "2008-", "year", ""])
    def test_invalid(self, gyear, text):
        assert gyear.value_of_text(text) is None, text

    def test_ordering(self, gyear):
        assert gyear.value_of_text("1999") < gyear.value_of_text("2008")

    def test_combination(self, gyear):
        combined = gyear.combine(
            gyear.fragment_of_text("20"), gyear.fragment_of_text("08")
        )
        assert gyear.cast(combined) == 2008


class TestGYearMonth:
    def test_value_and_order(self):
        plugin = get_plugin("gYearMonth")
        assert plugin.value_of_text("2008-01") < plugin.value_of_text("2008-02")
        assert plugin.value_of_text("2007-12") < plugin.value_of_text("2008-01")

    def test_month_range_checked(self):
        plugin = get_plugin("gYearMonth")
        assert plugin.value_of_text("2008-13") is None
        assert plugin.value_of_text("2008-00") is None


class TestGMonthDay:
    def test_syntax(self):
        plugin = get_plugin("gMonthDay")
        assert plugin.value_of_text("--12-25") == 1225
        assert plugin.value_of_text("-12-25") is None
        assert plugin.value_of_text("--12-25Z") == 1225

    def test_ranges(self):
        plugin = get_plugin("gMonthDay")
        assert plugin.value_of_text("--13-01") is None
        assert plugin.value_of_text("--12-32") is None

    def test_ordering_by_calendar(self):
        plugin = get_plugin("gMonthDay")
        assert plugin.value_of_text("--03-01") < plugin.value_of_text("--12-25")


class TestGMonthAndGDay:
    def test_gmonth(self):
        plugin = get_plugin("gMonth")
        assert plugin.value_of_text("--05") == 5
        assert plugin.value_of_text("--13") is None
        assert plugin.value_of_text("05") is None

    def test_gday(self):
        plugin = get_plugin("gDay")
        assert plugin.value_of_text("---09") == 9
        assert plugin.value_of_text("---32") is None
        assert plugin.value_of_text("--09") is None


@given(
    st.sampled_from(["gYear", "gYearMonth", "gMonth", "gDay", "gMonthDay"]),
    st.text(alphabet="0123456789-Z+: ", max_size=14),
    st.text(alphabet="0123456789-Z+: ", max_size=14),
)
@settings(max_examples=150, deadline=None)
def test_sct_matches_concatenation(type_name, a, b):
    plugin = get_plugin(type_name)
    combined = plugin.combine(
        plugin.fragment_of_text(a), plugin.fragment_of_text(b)
    )
    direct = plugin.fragment_of_text(a + b)
    assert combined.state == direct.state
    assert plugin.cast(combined) == plugin.cast(direct)


def test_gregorian_typed_index():
    from repro.core import IndexManager

    manager = IndexManager(string=False, typed=("gYear",))
    manager.load(
        "pubs",
        "<pubs><p><year>1999</year></p><p><year>2008</year></p>"
        "<p><year>words</year></p></pubs>",
    )
    hits = list(manager.lookup_typed_range("gYear", 2000, 2010))
    # the text node, its <year> element and the wrapping <p>
    assert len(hits) == 3
