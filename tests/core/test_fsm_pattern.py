"""Tests for regex-compiled type plugins (fsm.pattern)."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import register_type
from repro.core.fsm.pattern import (
    PatternError,
    compile_pattern,
    pattern_plugin,
)


class TestCompile:
    @pytest.mark.parametrize(
        "pattern,good,bad",
        [
            ("abc", ["abc"], ["ab", "abcd", ""]),
            ("a*", ["", "a", "aaaa"], ["b", "ab"]),
            ("a+b?", ["a", "ab", "aab"], ["", "b", "abb"]),
            ("a|bc", ["a", "bc"], ["b", "abc", ""]),
            ("(ab)+", ["ab", "abab"], ["a", "aba"]),
            ("[a-c]x", ["ax", "bx", "cx"], ["dx", "x"]),
            ("[^a]", ["b", "z", "1"], ["a", "bb"]),
            (r"\d\d", ["42"], ["4", "4x"]),
            (r"\w+@\w+", ["a_1@bx"], ["@b", "a@"]),
            (r"a\.b", ["a.b"], ["axb"]),
            (".", ["a", "%", " "], ["", "ab"]),
        ],
    )
    def test_acceptance(self, pattern, good, bad):
        dfa = compile_pattern("t", pattern)
        for text in good:
            assert dfa.accepts(text), (pattern, text)
        for text in bad:
            assert not dfa.accepts(text), (pattern, text)

    @pytest.mark.parametrize(
        "pattern",
        ["(ab", "a)", "[abc", "*a", "a\\", r"\D", "a**b|("],
    )
    def test_malformed_patterns(self, pattern):
        with pytest.raises(PatternError):
            compile_pattern("t", pattern)

    def test_double_star_is_tolerated_like_re(self):
        # a** is an error in re but harmless stacked repetition here;
        # accept either behaviour but never crash.
        try:
            dfa = compile_pattern("t", "a**")
        except PatternError:
            return
        assert dfa.accepts("aaa")


# Random simple patterns checked against re.fullmatch.
_simple_patterns = st.sampled_from(
    [
        "a*b", "(a|b)*", "ab+c?", "[0-9]+", "x[a-c]*y", "(ab|cd)+",
        r"\d*\.\d+", "a?b?c?", "[^x]y", "z|",
    ]
)
_probe_texts = st.text(alphabet="abcdxyz0123456789.", max_size=8)


@given(_simple_patterns, _probe_texts)
@settings(max_examples=400, deadline=None)
def test_matches_re_fullmatch(pattern, text):
    dfa = compile_pattern("t", pattern)
    assert dfa.accepts(text) == bool(re.fullmatch(pattern, text)), (
        pattern,
        text,
    )


class TestPluginBehaviour:
    @pytest.fixture(scope="class")
    def isbn(self):
        return pattern_plugin("isbn", r"97[89]-\d-\d\d\d\d\d-\d\d\d-\d")

    def test_value_is_exact_text(self, isbn):
        assert isbn.value_of_text("978-0-34539-180-3") == "978-0-34539-180-3"
        assert isbn.value_of_text("junk") is None

    def test_fragment_combination(self, isbn):
        left = isbn.fragment_of_text("978-0-34")
        right = isbn.fragment_of_text("539-180-3")
        assert isbn.cast(isbn.combine(left, right)) == "978-0-34539-180-3"

    def test_useless_fragments_reject(self, isbn):
        assert isbn.fragment_of_text("978x").is_rejected

    def test_leading_zero_digits_survive(self):
        plugin = pattern_plugin("code", r"\d\d\d\d")
        assert plugin.value_of_text("0042") == "0042"

    def test_custom_cast(self):
        plugin = pattern_plugin(
            "euros",
            r"\d+ EUR",
            cast=lambda p, tokens: int(p.render(tokens).split()[0]),
        )
        assert plugin.value_of_text("42 EUR") == 42
        assert plugin.value_of_text("42 USD") is None

    @given(st.text(alphabet="0123456789-", max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_sct_matches_concatenation(self, isbn, text):
        middle = len(text) // 2
        combined = isbn.combine(
            isbn.fragment_of_text(text[:middle]),
            isbn.fragment_of_text(text[middle:]),
        )
        direct = isbn.fragment_of_text(text)
        assert combined.state == direct.state
        assert isbn.cast(combined) == isbn.cast(direct)


class TestIndexIntegration:
    def test_registered_pattern_type_indexes(self):
        from repro.core import IndexManager

        register_type(
            "sku", lambda: pattern_plugin("sku", r"[A-Z][A-Z]-\d\d\d\d")
        )
        manager = IndexManager(string=False, typed=("sku",))
        manager.load(
            "inventory",
            "<inv>"
            "<item><code>AB-1234</code></item>"
            "<item><code>ZZ-0001</code></item>"
            "<item><code>not a sku</code></item>"
            "</inv>",
        )
        hits = list(manager.lookup_typed_equal("sku", "AB-1234"))
        assert len(hits) == 3  # text, <code>, <item>
        ranged = list(manager.lookup_typed_range("sku", "AA-0000", "AZ-9999"))
        assert all(value.startswith("A") for value, _nid in ranged)

    def test_updates_maintained(self):
        from repro.core import IndexManager

        register_type(
            "sku2", lambda: pattern_plugin("sku2", r"[A-Z][A-Z]-\d\d\d\d")
        )
        manager = IndexManager(string=False, typed=("sku2",))
        manager.load("inv", "<inv><code>AB-1234</code></inv>")
        doc = manager.store.document("inv")
        text = next(
            doc.nid[p] for p in range(len(doc)) if doc.kind[p] == 2
        )
        manager.update_text(text, "CD-5678")
        assert list(manager.lookup_typed_equal("sku2", "CD-5678"))
        assert not list(manager.lookup_typed_equal("sku2", "AB-1234"))
        manager.check_consistency()
