"""Bulk document unload and deterministic substring lookups.

Unload drops a document's entries with one ``remove_entries`` pass per
index (not one tree descent per node); ``lookup_contains`` emits index
candidates in sorted nid order and caches per-document leaf-nid lists
for the scan fallback.
"""

import pytest

from repro.core import IndexManager
from repro.workloads import DATASETS

DOC_A = (
    "<book><title>The Hitchhikers Guide</title>"
    "<price>5.99</price><isbn code='0345391802'>extant</isbn></book>"
)
DOC_B = (
    "<book><title>Mostly Harmless</title>"
    "<price>7.50</price><isbn code='0345418778'>extant</isbn></book>"
)


@pytest.fixture()
def manager():
    m = IndexManager(substring=True)
    m.load("a", DOC_A)
    m.load("b", DOC_B)
    return m


class TestUnload:
    def test_other_documents_survive(self, manager):
        manager.unload("a")
        assert list(manager.lookup_string("Mostly Harmless"))
        assert not list(manager.lookup_string("The Hitchhikers Guide"))
        manager.check_consistency()

    def test_all_entries_dropped(self, manager):
        doc_nids = set(manager.store.document("a").nid)
        manager.unload("a")
        assert not doc_nids & set(manager.string_index.hash_of)
        typed = manager.typed_indexes["double"]
        assert not doc_nids & set(typed.fragment_of_node)
        assert not doc_nids & {
            nid for (_v, nid) in manager.string_index.tree.keys()
        }

    def test_typed_lookups_after_unload(self, manager):
        manager.unload("b")
        values = [v for v, _nid in
                  manager.lookup_typed_range("double", 0.0, 100.0)]
        assert values == [5.99, 5.99]  # text node + <price> element

    def test_substring_entries_dropped(self, manager):
        manager.unload("a")
        hits = list(manager.lookup_contains("0345391802"))
        assert hits == []
        assert len(list(manager.lookup_contains("0345418778"))) == 1

    def test_unload_everything(self, manager):
        manager.unload("a")
        manager.unload("b")
        assert len(manager.string_index.hash_of) == 0
        assert len(manager.string_index.tree) == 0
        assert manager.typed_indexes["double"].castable_count() == 0
        assert manager.store.documents == {}

    def test_reload_after_unload(self, manager):
        manager.unload("a")
        manager.load("a", DOC_A)
        assert list(manager.lookup_string("The Hitchhikers Guide"))
        manager.check_consistency()

    def test_unload_large_document_consistent(self):
        m = IndexManager()
        m.load("XMark1", DATASETS["XMark1"].build(0.02))
        m.load("DBLP", DATASETS["DBLP"].build(0.02))
        m.unload("XMark1")
        m.check_consistency()
        fresh = IndexManager()
        fresh.load("DBLP", DATASETS["DBLP"].build(0.02))
        # nids are store-global, so compare the hash multiset only.
        assert (
            sorted(h for h, _nid in m.string_index.tree.keys())
            == sorted(h for h, _nid in fresh.string_index.tree.keys())
        )


class TestLookupContains:
    def test_results_sorted_and_repeatable(self, manager):
        first = list(manager.lookup_contains("extant"))
        assert first == sorted(first)
        assert list(manager.lookup_contains("extant")) == first

    def test_short_needle_scan_matches_index_path(self, manager):
        """Needles under q fall back to the cached leaf scan; both
        paths see the same leaves."""
        scan_hits = list(manager.lookup_contains("5."))  # len < q
        index_hits = list(manager.lookup_contains("5.99"))
        assert set(index_hits) <= set(scan_hits)
        assert scan_hits == sorted(scan_hits)

    def test_leaf_cache_populated_and_reused(self, manager):
        list(manager.lookup_contains("x"))
        assert set(manager._leaf_nids_cache) == {"a", "b"}
        cached = manager._leaf_nids_cache["a"]
        list(manager.lookup_contains("y"))
        assert manager._leaf_nids_cache["a"] is cached

    def test_cache_invalidated_by_structural_change(self, manager):
        list(manager.lookup_contains("x"))
        doc = manager.store.document("a")
        manager.insert_xml(doc.nid[0], "<extra>fresh text</extra>")
        assert "a" not in manager._leaf_nids_cache
        assert len(list(manager.lookup_contains("fresh text"))) == 1

    def test_cache_invalidated_by_unload(self, manager):
        list(manager.lookup_contains("zz"))  # short needle: scan path
        manager.unload("a")
        assert "a" not in manager._leaf_nids_cache
        assert list(manager.lookup_contains("Hitchhikers")) == []

    def test_no_substring_index_uses_scan(self):
        m = IndexManager()  # no substring index
        m.load("a", DOC_A)
        hits = list(m.lookup_contains("Hitchhikers"))
        assert len(hits) == 1
        assert "a" in m._leaf_nids_cache

    def test_regex_results_sorted(self, manager):
        hits = list(manager.lookup_regex(r"03454\d+"))
        assert hits == sorted(hits)
        assert len(hits) == 1
