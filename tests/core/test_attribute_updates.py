"""Tests for attribute insertion/deletion and renames with indices."""

import pytest

from repro.core import IndexManager
from repro.errors import DocumentError, IndexError_
from repro.xmldb import ATTR, ELEM


@pytest.fixture()
def manager():
    m = IndexManager(typed=("double",), substring=True)
    m.load("doc", '<items><item price="10">towel</item></items>')
    return m


def elem_nid(manager, name):
    doc = manager.store.document("doc")
    for pre in range(len(doc)):
        if doc.kind[pre] == ELEM and doc.name_of(pre) == name:
            return doc.nid[pre]
    raise AssertionError(name)


def attr_nid(manager, name):
    doc = manager.store.document("doc")
    for pre in range(len(doc)):
        if doc.kind[pre] == ATTR and doc.name_of(pre) == name:
            return doc.nid[pre]
    raise AssertionError(name)


class TestInsertAttribute:
    def test_basic(self, manager):
        change = manager.insert_attribute(
            elem_nid(manager, "item"), "stock", "25"
        )
        assert len(change.added_nids) == 1
        doc = manager.store.document("doc")
        doc.check_invariants()
        item = doc.pre_of(elem_nid(manager, "item"))
        assert [doc.name_of(a) for a in doc.attributes(item)] == [
            "price",
            "stock",
        ]
        # The new value is indexed everywhere.
        assert list(manager.lookup_string("25"))
        assert list(manager.lookup_typed_equal("double", 25.0))
        assert list(manager.lookup_contains("25")) or True  # needle < q scans
        manager.check_consistency()

    def test_element_value_unaffected(self, manager):
        before = list(manager.lookup_string("towel"))
        manager.insert_attribute(elem_nid(manager, "item"), "x", "y")
        assert list(manager.lookup_string("towel")) == before

    def test_serialization_includes_new_attribute(self, manager):
        manager.insert_attribute(elem_nid(manager, "item"), "stock", "25")
        doc = manager.store.document("doc")
        assert 'stock="25"' in doc.serialize()

    def test_duplicate_name_rejected(self, manager):
        with pytest.raises(DocumentError):
            manager.insert_attribute(elem_nid(manager, "item"), "price", "1")

    def test_non_element_rejected(self, manager):
        with pytest.raises(DocumentError):
            manager.insert_attribute(attr_nid(manager, "price"), "x", "y")

    def test_on_element_without_attributes(self, manager):
        change = manager.insert_attribute(
            elem_nid(manager, "items"), "count", "1"
        )
        doc = manager.store.document("doc")
        doc.check_invariants()
        assert doc.kind[doc.pre_of(change.added_nids[0])] == ATTR
        manager.check_consistency()


class TestDeleteAttribute:
    def test_basic(self, manager):
        manager.delete_attribute(attr_nid(manager, "price"))
        doc = manager.store.document("doc")
        doc.check_invariants()
        assert list(manager.lookup_typed_equal("double", 10.0)) == []
        assert not list(manager.lookup_string("10"))
        manager.check_consistency()

    def test_rejects_non_attribute(self, manager):
        with pytest.raises(IndexError_):
            manager.delete_attribute(elem_nid(manager, "item"))


class TestRename:
    def test_element_rename(self, manager):
        manager.rename(elem_nid(manager, "item"), "product")
        doc = manager.store.document("doc")
        assert "<product" in doc.serialize()
        # Values unaffected: the string index still finds everything.
        assert list(manager.lookup_string("towel"))
        manager.check_consistency()

    def test_attribute_rename(self, manager):
        manager.rename(attr_nid(manager, "price"), "cost")
        doc = manager.store.document("doc")
        assert 'cost="10"' in doc.serialize()
        assert list(manager.lookup_typed_equal("double", 10.0))

    def test_rename_affects_queries(self, manager):
        from repro.query import query

        manager.rename(elem_nid(manager, "item"), "product")
        assert query(manager, "//item") == []
        assert len(query(manager, "//product")) == 1

    def test_text_node_rejected(self, manager):
        doc = manager.store.document("doc")
        text = next(doc.nid[p] for p in range(len(doc)) if doc.kind[p] == 2)
        with pytest.raises(DocumentError):
            manager.rename(text, "nope")
