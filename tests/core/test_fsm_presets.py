"""Tests for bounded repetition and the preset string types."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import get_plugin
from repro.core.fsm.pattern import PatternError, compile_pattern
from repro.core.fsm.presets import PRESET_PATTERNS, register_presets

register_presets()


class TestBoundedRepetition:
    @pytest.mark.parametrize(
        "pattern,good,bad",
        [
            ("a{3}", ["aaa"], ["aa", "aaaa"]),
            ("a{2,4}", ["aa", "aaa", "aaaa"], ["a", "aaaaa"]),
            ("a{2,}", ["aa", "aaaaaa"], ["a", ""]),
            ("(ab){2}", ["abab"], ["ab", "ababab"]),
            ("[0-9]{4}-[0-9]{2}", ["2008-12"], ["208-12", "2008-123"]),
        ],
    )
    def test_acceptance(self, pattern, good, bad):
        dfa = compile_pattern("t", pattern)
        for text in good:
            assert dfa.accepts(text), (pattern, text)
        for text in bad:
            assert not dfa.accepts(text), (pattern, text)

    @pytest.mark.parametrize("pattern", ["a{", "a{x}", "a{3,2}"])
    def test_malformed(self, pattern):
        with pytest.raises(PatternError):
            compile_pattern("t", pattern)

    @given(st.text(alphabet="ab", max_size=10))
    @settings(max_examples=150)
    def test_matches_re(self, text):
        pattern = "a{1,3}b{2}"
        dfa = compile_pattern("t", pattern)
        assert dfa.accepts(text) == bool(re.fullmatch(pattern, text))


class TestLanguage:
    @pytest.fixture(scope="class")
    def language(self):
        return get_plugin("language")

    @pytest.mark.parametrize("text", ["en", "en-US", "x-klingon", " de "])
    def test_valid(self, language, text):
        assert language.value_of_text(text) == text.strip()

    @pytest.mark.parametrize("text", ["", "toolonglang1", "en--US", "42"])
    def test_invalid(self, language, text):
        assert language.value_of_text(text) is None

    def test_mixed_content_combination(self, language):
        combined = language.combine(
            language.fragment_of_text("en-"),
            language.fragment_of_text("US"),
        )
        assert language.cast(combined) == "en-US"


class TestHexBinary:
    def test_case_insensitive_value(self):
        hexbin = get_plugin("hexBinary")
        assert hexbin.value_of_text("0aff") == hexbin.value_of_text("0AFF")

    def test_odd_length_rejected(self):
        hexbin = get_plugin("hexBinary")
        assert hexbin.value_of_text("0af") is None

    def test_empty_is_valid(self):
        hexbin = get_plugin("hexBinary")
        assert hexbin.value_of_text("") == ""


class TestNameTypes:
    def test_name_rules(self):
        name = get_plugin("Name")
        assert name.value_of_text("xs:element") == "xs:element"
        assert name.value_of_text("_private") == "_private"
        assert name.value_of_text("1bad") is None

    def test_nmtoken_allows_leading_digit(self):
        nmtoken = get_plugin("NMTOKEN")
        assert nmtoken.value_of_text("1999-edition") == "1999-edition"
        assert nmtoken.value_of_text("has space") is None


def test_presets_index_and_update():
    from repro.core import IndexManager

    manager = IndexManager(string=False, typed=("language",))
    manager.load(
        "texts",
        '<texts><t lang="en-US">hello</t><t lang="de">hallo</t></texts>',
    )
    hits = list(manager.lookup_typed_equal("language", "de"))
    assert len(hits) >= 1
    doc = manager.store.document("texts")
    attr = next(
        doc.nid[p]
        for p in range(len(doc))
        if doc.kind[p] == 3 and doc.text_of(p) == "de"
    )
    manager.update_text(attr, "fr-CA")
    assert list(manager.lookup_typed_equal("language", "fr-CA"))
    manager.check_consistency()


def test_all_presets_compile_and_fullmatch_re():
    for name, pattern in PRESET_PATTERNS.items():
        plugin = get_plugin(name)
        assert plugin.dfa.n_states > 1, name
        for probe in ("en-US", "0AFF", "x:y", "1999", "??"):
            expected = bool(re.fullmatch(pattern, probe))
            assert plugin.dfa.accepts(probe) == expected, (name, probe)
