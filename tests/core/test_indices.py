"""Tests for StringIndex, TypedIndex and the Figure-7 builder."""

import pytest

from repro.core import IndexManager, hash_string
from repro.xmldb import ATTR, ELEM, TEXT

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<birthday>1966-09-26</birthday>"
    "<age><decades>4</decades>2<years/></age>"
    "<weight><kilos>78</kilos>.<grams>230</grams></weight>"
    "</person>"
)


@pytest.fixture()
def manager():
    m = IndexManager(typed=("double", "dateTime"))
    m.load("person", PERSON)
    return m


def kinds_of(manager, nids):
    result = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        result.append(doc.kind[pre])
    return result


def names_of(manager, nids):
    result = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        if doc.kind[pre] == ELEM:
            result.append(doc.name_of(pre))
    return result


class TestStringLookups:
    def test_text_value(self, manager):
        hits = list(manager.lookup_string("Arthur"))
        assert sorted(kinds_of(manager, hits)) == [ELEM, TEXT]
        assert names_of(manager, hits) == ["first"]

    def test_element_concatenated_value(self, manager):
        """The paper's fn:data(name)="ArthurDent" example."""
        hits = list(manager.lookup_string("ArthurDent"))
        assert names_of(manager, hits) == ["name"]

    def test_mixed_content_value(self, manager):
        hits = list(manager.lookup_string("42"))
        assert names_of(manager, hits) == ["age"]

    def test_document_value_includes_root(self, manager):
        value = "ArthurDent1966-09-264278.230"
        hits = list(manager.lookup_string(value))
        assert len(hits) == 2  # document node + <person>

    def test_no_hits(self, manager):
        assert list(manager.lookup_string("Zaphod")) == []

    def test_every_node_indexed(self, manager):
        doc = manager.store.document("person")
        indexed = set(manager.string_index.hash_of)
        expected = {
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] not in ()  # comments/PIs absent here
        }
        assert indexed == expected

    def test_hash_matches_string_value(self, manager):
        doc = manager.store.document("person")
        for pre in range(len(doc)):
            nid = doc.nid[pre]
            assert manager.string_index.hash_of[nid] == hash_string(
                doc.string_value(pre)
            )

    def test_verification_filters_collisions(self):
        manager = IndexManager(typed=())
        # Two values engineered to share a hash (27-period swap).
        a = "u" + "x" * 26 + "v"
        b = "v" + "x" * 26 + "u"
        assert hash_string(a) == hash_string(b)
        manager.load("collide", f"<r><p>{a}</p><q>{b}</q></r>")
        hits = list(manager.lookup_string(a))
        doc = manager.store.document("collide")
        assert all(
            doc.string_value(doc.pre_of(nid)) == a for nid in hits
        )
        unverified = list(manager.lookup_string(a, verify=False))
        assert len(unverified) > len(hits)


class TestTypedLookups:
    def test_equality_on_text_and_elements(self, manager):
        hits = list(manager.lookup_typed_equal("double", 42.0))
        assert names_of(manager, hits) == ["age"]

    def test_mixed_content_double(self, manager):
        hits = list(manager.lookup_typed_equal("double", 78.230))
        assert names_of(manager, hits) == ["weight"]

    def test_range(self, manager):
        pairs = list(manager.lookup_typed_range("double", 40.0, 80.0))
        values = sorted(v for v, _ in pairs)
        assert values == [42.0, 78.0, 78.0, 78.23]

    def test_range_bounds(self, manager):
        assert not list(
            manager.lookup_typed_range("double", 42.0, 42.0, include_low=False)
        )
        only_42 = list(manager.lookup_typed_range("double", 42.0, 42.0))
        assert [v for v, _ in only_42] == [42.0]

    def test_open_ranges(self, manager):
        everything = list(manager.lookup_typed_range("double"))
        # texts 4,2,78,230 + elements decades,age,kilos,grams,weight
        assert len(everything) == 9
        high = list(manager.lookup_typed_range("double", low=100.0))
        assert all(v >= 100.0 for v, _ in high)

    def test_datetime_index(self, manager):
        plugin_value = manager.typed_index("dateTime").plugin.value_of_text(
            "1966-09-26"
        )
        assert plugin_value is None  # date, not dateTime
        hits = list(
            manager.lookup_typed_equal(
                "dateTime",
                manager.typed_index("dateTime").plugin.value_of_text(
                    "1966-09-26T00:00:00"
                ),
            )
        )
        assert hits == []  # no dateTime values in the person doc

    def test_rejected_nodes_store_nothing(self, manager):
        index = manager.typed_index("double")
        doc = manager.store.document("person")
        arthur = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == TEXT and doc.text_of(p) == "Arthur"
        )
        assert arthur not in index.fragment_of_node

    def test_potential_but_not_castable(self, manager):
        index = manager.typed_index("double")
        doc = manager.store.document("person")
        dot = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == TEXT and doc.text_of(p) == "."
        )
        assert dot in index.fragment_of_node
        assert index.value_of(dot) is None

    def test_counts(self, manager):
        index = manager.typed_index("double")
        assert index.castable_count() < index.potential_count()
        assert index.castable_count() == len(list(index.lookup_range()))


class TestAttributes:
    @pytest.fixture()
    def attr_manager(self):
        m = IndexManager()
        m.load("items", '<items><item price="19.90" name="towel"/></items>')
        return m

    def test_attribute_string_indexed(self, attr_manager):
        hits = list(attr_manager.lookup_string("towel"))
        assert kinds_of(attr_manager, hits) == [ATTR]

    def test_attribute_typed_indexed(self, attr_manager):
        hits = list(attr_manager.lookup_typed_equal("double", 19.90))
        assert kinds_of(attr_manager, hits) == [ATTR]

    def test_attribute_not_in_element_value(self, attr_manager):
        # <item> has no text descendants: string value is "".
        assert not list(attr_manager.lookup_string("towel19.90"))
        hits = list(attr_manager.lookup_string(""))
        assert len(hits) >= 2  # item, items, document


class TestManagerApi:
    def test_load_multiple_documents(self, manager):
        manager.load("more", "<r><v>42</v></r>")
        hits = list(manager.lookup_typed_equal("double", 42.0))
        # age + all four nodes of the new doc (doc, <r>, <v>, text).
        assert len(hits) == 5

    def test_unload_removes_entries(self, manager):
        manager.load("more", "<r><v>42</v></r>")
        manager.unload("more")
        hits = list(manager.lookup_typed_equal("double", 42.0))
        assert names_of(manager, hits) == ["age"]

    def test_add_typed_index_backfills(self, manager):
        index = manager.add_typed_index("integer")
        assert list(index.lookup_equal(42)) == list(
            manager.lookup_typed_equal("integer", 42)
        )
        assert len(list(index.lookup_equal(42))) == 1

    def test_duplicate_typed_index_rejected(self, manager):
        from repro.errors import IndexError_

        with pytest.raises(IndexError_):
            manager.add_typed_index("double")

    def test_missing_typed_index(self, manager):
        from repro.errors import IndexError_

        with pytest.raises(IndexError_):
            manager.typed_index("boolean")

    def test_string_index_disabled(self):
        m = IndexManager(string=False, typed=("double",))
        m.load("d", "<a>42</a>")
        from repro.errors import IndexError_

        with pytest.raises(IndexError_):
            list(m.lookup_string("42"))

    def test_index_sizes_present(self, manager):
        sizes = manager.index_sizes()
        assert set(sizes) == {"string", "double", "dateTime"}
        assert sizes["string"] > 0
        assert sizes["double"] > 0
        # Few dateTime-shaped values: far smaller than the string index.
        assert sizes["dateTime"] < sizes["string"]

    def test_consistency_checker_passes(self, manager):
        manager.check_consistency()


class TestTopValues:
    def test_largest_and_smallest(self, manager):
        top = manager.lookup_typed_top("double", 3)
        values = [v for v, _ in top]
        assert values == sorted(values, reverse=True)
        assert values[0] == 230.0
        bottom = manager.lookup_typed_top("double", 2, largest=False)
        assert [v for v, _ in bottom] == [2.0, 4.0]

    def test_k_larger_than_index(self, manager):
        index = manager.typed_index("double")
        assert len(manager.lookup_typed_top("double", 10**6)) == (
            index.castable_count()
        )

    def test_zero_k(self, manager):
        assert manager.lookup_typed_top("double", 0) == []

    def test_follows_updates(self, manager):
        m = IndexManager(typed=("double",))
        m.load("d", "<r><v>1</v><v>2</v></r>")
        doc = m.store.document("d")
        nid = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == TEXT and doc.text_of(p) == "1"
        )
        m.update_text(nid, "99")
        # <r>'s own concatenated value "99"+"2" = 992 now tops the list.
        assert m.lookup_typed_top("double", 1)[0][0] == 992.0
        assert 99.0 in [v for v, _ in m.lookup_typed_top("double", 4)]
