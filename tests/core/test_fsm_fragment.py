"""Tests for fragments: tokenisation, combination, casting, rendering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import REJECT_FRAGMENT, get_plugin


@pytest.fixture(scope="module")
def double():
    return get_plugin("double")


double_texts = st.text(alphabet="0123456789+-.eE \t", max_size=30)


class TestTokenize:
    def test_illegal_char_returns_none(self, double):
        assert double.tokenize("42x") is None
        assert double.tokenize("4é2") is None

    def test_digit_runs_compress(self, double):
        tokens = double.tokenize("000123")
        assert len(tokens) == 1
        cid, value, length = tokens[0]
        assert (value, length) == (123, 6)

    def test_whitespace_collapses(self, double):
        tokens = double.tokenize("   \t\n")
        assert len(tokens) == 1

    def test_sign_keeps_character(self, double):
        minus = double.tokenize("-")[0]
        plus = double.tokenize("+")[0]
        assert minus[1] == "-" and plus[1] == "+"

    def test_empty_text(self, double):
        assert double.tokenize("") == ()


class TestFragmentOfText:
    def test_rejects_non_numeric(self, double):
        assert double.fragment_of_text("hello").is_rejected
        assert double.fragment_of_text("42 text").is_rejected

    def test_useless_states_fold_to_reject(self, double):
        # "1 2" — digits, ws, digits — passes tokenisation but no
        # completion can ever make it a double.
        assert double.fragment_of_text("1 2").is_rejected

    def test_potential_fragments_survive(self, double):
        for text in (".", "E+93 ", "-", "12.", "E", "+"):
            fragment = double.fragment_of_text(text)
            assert not fragment.is_rejected, text
            assert not double.is_castable(fragment) or text == "12."

    def test_empty_is_identity(self, double):
        fragment = double.fragment_of_text("")
        assert fragment == double.empty_fragment
        other = double.fragment_of_text("4.2")
        assert double.combine(fragment, other) == other
        assert double.combine(other, fragment) == other


class TestCast:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42.0),
            ("42.0", 42.0),
            (" +4.2E1", 42.0),
            ("78.230", 78.23),
            ("12.", 12.0),
            (".5", 0.5),
            ("-0", 0.0),
            ("1e309", float("inf")),  # IEEE overflow semantics
        ],
    )
    def test_castable_values(self, double, text, expected):
        assert double.value_of_text(text) == expected

    @pytest.mark.parametrize("text", [".", "E+93", "42 text", "", "  "])
    def test_non_castable(self, double, text):
        assert double.value_of_text(text) is None

    def test_cast_of_reject_fragment(self, double):
        assert double.cast(REJECT_FRAGMENT) is None


class TestCombine:
    def test_paper_weight_example(self, double):
        """<kilos>78</kilos>.<grams>230</grams> casts to 78.230."""
        fragments = [double.fragment_of_text(t) for t in ("78", ".", "230")]
        combined = double.combine_all(fragments)
        assert double.cast(combined) == 78.230

    def test_paper_age_example(self, double):
        """<decades>4</decades>2<years/> casts to 42."""
        fragments = [
            double.fragment_of_text("4"),
            double.fragment_of_text("2"),
            double.empty_fragment,  # <years/> contributes nothing
        ]
        assert double.cast(double.combine_all(fragments)) == 42.0

    def test_leading_zero_fraction_is_preserved(self, double):
        """".0" + "5" must give 0.05, not 0.5 — the losslessness our
        token payload buys over a bare [value, state] pair."""
        combined = double.combine(
            double.fragment_of_text(".0"), double.fragment_of_text("5")
        )
        assert double.cast(combined) == 0.05

    def test_reject_absorbs(self, double):
        good = double.fragment_of_text("42")
        assert double.combine(good, REJECT_FRAGMENT).is_rejected
        assert double.combine(REJECT_FRAGMENT, good).is_rejected

    def test_combination_can_reject(self, double):
        a = double.fragment_of_text("42 ")
        b = double.fragment_of_text("5")
        assert double.combine(a, b).is_rejected

    @given(double_texts, double_texts)
    @settings(max_examples=300)
    def test_combine_equals_fragment_of_concat(self, double, a, b):
        combined = double.combine(
            double.fragment_of_text(a), double.fragment_of_text(b)
        )
        direct = double.fragment_of_text(a + b)
        assert combined.state == direct.state
        assert double.cast(combined) == double.cast(direct)

    @given(st.lists(double_texts, max_size=6))
    @settings(max_examples=200)
    def test_combine_all_equals_concat(self, double, parts):
        combined = double.combine_all(
            double.fragment_of_text(p) for p in parts
        )
        direct = double.fragment_of_text("".join(parts))
        assert combined.state == direct.state
        assert double.cast(combined) == double.cast(direct)

    @given(double_texts, double_texts, double_texts)
    @settings(max_examples=150)
    def test_combine_is_associative(self, double, a, b, c):
        fa, fb, fc = (double.fragment_of_text(t) for t in (a, b, c))
        left = double.combine(double.combine(fa, fb), fc)
        right = double.combine(fa, double.combine(fb, fc))
        assert left.state == right.state
        assert double.cast(left) == double.cast(right)


class TestRender:
    def test_paper_reconstruction_example(self, double):
        """Paper: value "26" with state s7 reconstructs as "26E+"."""
        fragment = double.fragment_of_text("26E+")
        assert double.render(fragment.tokens) == "26E+"

    def test_render_preserves_leading_zeros(self, double):
        fragment = double.fragment_of_text("007")
        assert double.render(fragment.tokens) == "007"

    def test_render_canonicalizes_ws_and_e(self, double):
        fragment = double.fragment_of_text("  1e3")
        assert double.render(fragment.tokens) == " 1E3"

    @given(double_texts)
    @settings(max_examples=200)
    def test_render_roundtrips_state_and_value(self, double, text):
        fragment = double.fragment_of_text(text)
        if fragment.is_rejected:
            return
        rendered = double.render(fragment.tokens)
        again = double.fragment_of_text(rendered)
        assert again.state == fragment.state
        assert double.cast(again) == double.cast(fragment)


class TestByteSize:
    def test_rejected_costs_nothing(self, double):
        assert double.byte_size_of(REJECT_FRAGMENT) == 0

    def test_simple_number(self, double):
        # state (1) + 3 digits BCD (2 bytes) = 3
        assert double.byte_size_of(double.fragment_of_text("230")) == 3

    def test_marker_tokens_cost_one_byte(self, double):
        size = double.byte_size_of(double.fragment_of_text("-1.5E+2"))
        # state 1 + sign 1 + digit 1 + dot 1 + digit 1 + E 1 + sign 1 + digit 1
        assert size == 8


class TestOtherTypes:
    def test_integer(self):
        integer = get_plugin("integer")
        assert integer.value_of_text(" -042 ") == -42
        assert integer.value_of_text("4.2") is None

    def test_decimal(self):
        from decimal import Decimal

        decimal = get_plugin("decimal")
        assert decimal.value_of_text("4.20") == Decimal("4.20")
        assert decimal.value_of_text("4e2") is None

    def test_boolean(self):
        boolean = get_plugin("boolean")
        assert boolean.value_of_text("true") is True
        assert boolean.value_of_text(" 0 ") is False
        # "tru" + "e" combined across mixed content
        combined = boolean.combine(
            boolean.fragment_of_text("tru"), boolean.fragment_of_text("e")
        )
        assert boolean.cast(combined) is True

    def test_datetime_combination(self):
        datetime_ = get_plugin("dateTime")
        combined = datetime_.combine(
            datetime_.fragment_of_text("1966-09-"),
            datetime_.fragment_of_text("26T12:30:00Z"),
        )
        assert datetime_.cast(combined) == datetime_.value_of_text(
            "1966-09-26T12:30:00Z"
        )

    def test_datetime_semantic_rejection(self):
        datetime_ = get_plugin("dateTime")
        assert datetime_.value_of_text("1966-13-26T12:30:00Z") is None
        assert datetime_.value_of_text("1966-02-30T12:30:00Z") is None
        assert datetime_.value_of_text("1966-09-26T25:00:00Z") is None

    def test_datetime_timezone_ordering(self):
        datetime_ = get_plugin("dateTime")
        utc = datetime_.value_of_text("2020-01-01T12:00:00Z")
        plus2 = datetime_.value_of_text("2020-01-01T14:00:00+02:00")
        assert utc == plus2

    def test_date_and_time(self):
        date = get_plugin("date")
        time_ = get_plugin("time")
        assert date.value_of_text("1970-01-02") == 86400
        assert time_.value_of_text("01:00:00") == 3600
        assert date.value_of_text("1970-01-02") > date.value_of_text(
            "1970-01-01"
        )

    def test_leap_year_handling(self):
        date = get_plugin("date")
        assert date.value_of_text("2020-02-29") is not None
        assert date.value_of_text("2100-02-29") is None  # not a leap year
        assert date.value_of_text("2000-02-29") is not None
