"""Equivalence tests for the parallel chunked creation pass.

The contract of :mod:`repro.core.parallel` is *bit-for-bit* equality
with the serial Figure 7 pass: same per-node fields, same B-tree key
sequences, and even the same dict insertion order of the side
structures — for every worker count and both pool backends.
"""

import pytest

from repro.core import IndexManager
from repro.core.builder import build_document
from repro.core.parallel import (
    AUTO_MIN_ROWS,
    build_document_parallel,
    compute_fields_parallel,
    resolve_workers,
    split_document,
)
from repro.core.string_index import StringIndex
from repro.core.typed_index import TypedIndex
from repro.errors import IndexError_
from repro.workloads import DATASETS
from repro.xmldb import ELEM, Store

SCALE = 0.02
WORKERS = (1, 2, 8)
BACKENDS = ("thread", "process")

MIXED_CONTENT = (
    "<article>"
    "<p>The answer is <b>42</b>, not <i>41.5</i> at all.</p>"
    "<p>Published <date>2008-11-03</date>; revised "
    "<date>2009-02-17</date>.</p>"
    "<footnote>see <ref id='a7'>chapter <num>3</num></ref> for "
    "details</footnote>"
    "</article>"
)

ATTRIBUTE_HEAVY = (
    "<catalog count='3' revision='1.4'>"
    "<item sku='A-1' price='19.99' stock='5' discontinued='false'/>"
    "<item sku='B-2' price='7.25' stock='0' discontinued='true'>"
    "<note lang='en' stars='4'>restock pending</note></item>"
    "<item sku='C-3' price='133' stock='88' discontinued='false'/>"
    "</catalog>"
)


def serial_snapshot(doc):
    string, typed = StringIndex(), TypedIndex("double")
    build_document(doc, [string, typed])
    return snapshot_of(string, typed)


def snapshot_of(string, typed):
    return (
        list(string.hash_of.items()),
        list(string.tree.keys()),
        list(typed.fragment_of_node.items()),
        list(typed.tree.keys()),
    )


@pytest.fixture(scope="module")
def catalog_docs():
    store = Store()
    return {
        name: store.add_document(name, spec.build(SCALE))
        for name, spec in DATASETS.items()
    }


@pytest.fixture(scope="module")
def hand_docs():
    store = Store()
    return {
        "mixed": store.add_document("mixed", MIXED_CONTENT),
        "attrs": store.add_document("attrs", ATTRIBUTE_HEAVY),
    }


class TestSplitDocument:
    @pytest.mark.parametrize("name", list(DATASETS))
    @pytest.mark.parametrize("target", [1, 2, 4, 16])
    def test_partition_covers_document(self, catalog_docs, name, target):
        doc = catalog_docs[name]
        plan = split_document(doc, target)
        assert sum(c.rows for c in plan.chunks) + len(plan.spine) == len(doc)

    @pytest.mark.parametrize("name", list(DATASETS))
    def test_chunks_are_complete_sibling_runs(self, catalog_docs, name):
        doc = catalog_docs[name]
        plan = split_document(doc, 8)
        spine = set(plan.spine)
        previous_end = -1
        for chunk in plan.chunks:
            assert chunk.start > previous_end  # disjoint, sorted
            previous_end = chunk.end
            assert chunk.parent_pre in spine
            # The chunk is a run of whole subtrees of that parent.
            pre = chunk.start
            while pre <= chunk.end:
                assert doc.parent(pre) == chunk.parent_pre
                pre += doc.size[pre] + 1
            assert pre == chunk.end + 1

    def test_spine_is_root_first_ancestor_path(self, catalog_docs):
        doc = catalog_docs["XMark1"]
        plan = split_document(doc, 8)
        assert plan.spine[0] == 0
        for parent, child in zip(plan.spine, plan.spine[1:]):
            assert doc.parent(child) == parent
            assert doc.kind[child] == ELEM

    def test_single_chunk_for_huge_target(self, catalog_docs):
        doc = catalog_docs["DBLP"]
        plan = split_document(doc, 1)
        assert len(plan.chunks) >= 1
        assert sum(c.rows for c in plan.chunks) + len(plan.spine) == len(doc)


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 0

    def test_auto_is_positive(self):
        assert resolve_workers("auto") >= 1

    def test_explicit_count(self):
        assert resolve_workers(3) == 3
        assert resolve_workers("5") == 5

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(IndexError_):
            resolve_workers(bad)

    def test_rejects_unknown_backend(self, hand_docs):
        with pytest.raises(IndexError_):
            compute_fields_parallel(
                hand_docs["mixed"], [StringIndex()], 2, backend="greenlet"
            )

    def test_process_backend_rejects_custom_index(self, hand_docs):
        class Custom(StringIndex):
            pass

        with pytest.raises(IndexError_):
            compute_fields_parallel(
                hand_docs["mixed"], [Custom()], 1, backend="process"
            )


class TestEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_catalog_datasets(self, catalog_docs, name, backend):
        doc = catalog_docs[name]
        expected = serial_snapshot(doc)
        for workers in WORKERS:
            string, typed = StringIndex(), TypedIndex("double")
            build_document_parallel(
                doc, [string, typed], workers=workers, backend=backend
            )
            assert snapshot_of(string, typed) == expected, (
                name, backend, workers,
            )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("doc_name", ["mixed", "attrs"])
    def test_hand_written_documents(self, hand_docs, doc_name, backend):
        """Mixed content and attribute-heavy trees exercise the ATTR
        skipping and partial-token merging paths across chunk seams."""
        doc = hand_docs[doc_name]
        expected = serial_snapshot(doc)
        for workers in WORKERS:
            string, typed = StringIndex(), TypedIndex("double")
            build_document_parallel(
                doc, [string, typed], workers=workers, backend=backend
            )
            assert snapshot_of(string, typed) == expected, (
                doc_name, backend, workers,
            )

    def test_more_workers_than_subtrees(self, hand_docs):
        """Worker counts beyond the chunk count degrade gracefully."""
        doc = hand_docs["attrs"]
        expected = serial_snapshot(doc)
        string, typed = StringIndex(), TypedIndex("double")
        build_document_parallel(doc, [string, typed], workers=64,
                                backend="thread")
        assert snapshot_of(string, typed) == expected

    @pytest.mark.parametrize("type_name", ["dateTime", "duration"])
    def test_other_typed_indexes(self, catalog_docs, type_name):
        doc = catalog_docs["EPAGeo"]
        serial = TypedIndex(type_name)
        build_document(doc, [serial])
        for backend in BACKENDS:
            parallel = TypedIndex(type_name)
            build_document_parallel(doc, [parallel], workers=2,
                                    backend=backend)
            assert (
                list(parallel.fragment_of_node.items())
                == list(serial.fragment_of_node.items())
            )
            assert list(parallel.tree.keys()) == list(serial.tree.keys())


class TestManagerIntegration:
    @pytest.mark.parametrize("name", list(DATASETS))
    def test_check_consistency_after_parallel_load(self, name):
        manager = IndexManager(parallel=2, parallel_backend="thread")
        manager.load(name, DATASETS[name].build(SCALE))
        manager.check_consistency()

    def test_load_per_call_override(self):
        manager = IndexManager()  # serial default
        manager.load("mixed", MIXED_CONTENT, parallel=2)
        manager.check_consistency()

    def test_auto_skips_small_documents(self):
        manager = IndexManager(parallel="auto")
        doc = manager.load("mixed", MIXED_CONTENT)
        assert len(doc) < AUTO_MIN_ROWS
        assert manager._build_workers(doc, "auto") == 0
        manager.check_consistency()

    def test_build_all_parallel(self):
        serial = IndexManager()
        parallel = IndexManager()
        for name in ("XMark1", "EPAGeo"):
            xml = DATASETS[name].build(SCALE)
            serial.load(name, xml)
            parallel.store.add_document(name, xml)
        parallel.build_all(parallel=2)
        assert (
            list(parallel.string_index.hash_of.items())
            == list(serial.string_index.hash_of.items())
        )
        assert (
            list(parallel.string_index.tree.keys())
            == list(serial.string_index.tree.keys())
        )

    def test_add_typed_index_parallel(self):
        manager = IndexManager(typed=())
        manager.load("Wiki", DATASETS["Wiki"].build(SCALE))
        built = manager.add_typed_index("double", parallel=2)
        reference = IndexManager()
        reference.load("Wiki", DATASETS["Wiki"].build(SCALE))
        expected = reference.typed_indexes["double"]
        assert (
            list(built.fragment_of_node.items())
            == list(expected.fragment_of_node.items())
        )
        assert list(built.tree.keys()) == list(expected.tree.keys())

    def test_updates_after_parallel_build(self):
        manager = IndexManager(parallel=2, parallel_backend="thread")
        doc = manager.load("mixed", MIXED_CONTENT)
        text_pre = next(
            pre for pre in range(len(doc)) if doc.kind[pre] == 2
        )
        manager.update_text(doc.nid[text_pre], "Replacement 12.5 text")
        manager.check_consistency()
