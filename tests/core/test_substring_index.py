"""Tests for the q-gram substring/regex index (paper's future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexManager
from repro.core.substring_index import SubstringIndex, literal_factors
from repro.query import explain, query
from repro.xmldb import TEXT

DOC = (
    "<library>"
    "<book><title>The Hitchhikers Guide to the Galaxy</title>"
    '<isbn code="978-0345391803"/></book>'
    "<book><title>The Restaurant at the End of the Universe</title>"
    '<isbn code="978-0345391810"/></book>'
    "<book><title>Life, the Universe and Everything</title>"
    '<isbn code="978-0345391827"/></book>'
    "<note>a</note>"
    "</library>"
)


@pytest.fixture()
def manager():
    m = IndexManager(typed=(), substring=True)
    m.load("lib", DOC)
    return m


class TestStandalone:
    def test_q_validation(self):
        with pytest.raises(ValueError):
            SubstringIndex(q=1)

    def test_set_and_candidates(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "hello world")
        index.set_entry(2, "hello there")
        assert index.candidates("hello") == {1, 2}
        assert index.candidates("world") == {1}
        assert index.candidates("nothing") == set()

    def test_short_needle_unsupported(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "hello")
        assert index.candidates("he") is None
        assert not index.supports("he")

    def test_delta_update(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "hello")
        index.set_entry(1, "goodbye")
        assert index.candidates("hello") == set()
        assert index.candidates("goodbye") == {1}

    def test_remove_entry(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "hello")
        index.remove_entry(1)
        assert index.candidates("hello") == set()
        assert len(index) == 0
        assert index.byte_size() == 0

    def test_short_text_tracked(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "ab")
        assert len(index) == 0  # no grams
        index.set_entry(1, "")
        index.remove_entry(1)

    def test_no_false_negatives_on_leaves(self):
        index = SubstringIndex(q=3)
        texts = {i: f"value number {i} of some {i % 7} kind" for i in range(50)}
        for nid, text in texts.items():
            index.set_entry(nid, text)
        needle = "number 4"
        expected = {nid for nid, text in texts.items() if needle in text}
        assert expected <= index.candidates(needle)

    def test_byte_size_grows(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "abcdef")
        small = index.byte_size()
        index.set_entry(2, "ghijklmnop")
        assert index.byte_size() > small

    def test_gram_distribution(self):
        index = SubstringIndex(q=3)
        index.set_entry(1, "aaaa")  # single distinct gram "aaa"
        assert index.gram_distribution() == {1: 1}


class TestLiteralFactors:
    @pytest.mark.parametrize(
        "pattern,expected",
        [
            ("hello", ["hello"]),
            ("hello.*world", ["hello", "world"]),
            ("he(llo|y)", ["he"]),
            ("colou?r", ["colo", "r"]),
            ("a|b", []),
            (r"item\d+", ["item"]),
            (r"\(exact\)", ["(exact)"]),
            ("[abc]def", ["def"]),
            ("ab{2,3}c", ["a", "c"]),
            ("^start.end$", ["start", "end"]),
        ],
    )
    def test_extraction(self, pattern, expected):
        assert literal_factors(pattern) == expected

    @given(st.text(alphabet="abcdefgh ", min_size=0, max_size=20))
    @settings(max_examples=100)
    def test_plain_literals_are_their_own_factor(self, text):
        factors = literal_factors(text)
        assert factors == ([text] if text else [])

    @given(
        st.text(alphabet="abcdef", min_size=1, max_size=10),
        st.text(alphabet="abcdef .*+?", min_size=0, max_size=15),
    )
    @settings(max_examples=150)
    def test_factors_occur_in_every_match(self, probe, pattern):
        """Soundness: if the regex matches a string, every extracted
        factor must literally occur in it."""
        import re

        try:
            compiled = re.compile(pattern)
        except re.error:
            return
        match = compiled.search(probe)
        if match is None:
            return
        for factor in literal_factors(pattern):
            assert factor in probe


class TestManagerIntegration:
    def test_lookup_contains(self, manager):
        hits = list(manager.lookup_contains("Universe"))
        assert len(hits) == 2
        for nid in hits:
            doc, pre = manager.store.node(nid)
            assert "Universe" in doc.text_of(pre)

    def test_contains_attribute_values(self, manager):
        hits = list(manager.lookup_contains("0345391810"))
        assert len(hits) == 1

    def test_short_needle_falls_back_to_scan(self, manager):
        hits = list(manager.lookup_contains("a"))
        # Scan fallback still finds everything, including 1-char leaf.
        doc = manager.store.document("lib")
        expected = sum(
            1
            for p in range(len(doc))
            if doc.text_id[p] >= 0 and "a" in doc.text_of(p)
        )
        assert len(hits) == expected

    def test_lookup_regex(self, manager):
        hits = list(manager.lookup_regex(r"Guide to the .alaxy"))
        assert len(hits) == 1

    def test_regex_without_factor_scans(self, manager):
        hits = list(manager.lookup_regex(r"[0-9]+-[0-9]+"))
        assert len(hits) == 3  # the three ISBN attributes

    def test_follows_text_updates(self, manager):
        doc = manager.store.document("lib")
        nid = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == TEXT and "Restaurant" in doc.text_of(p)
        )
        manager.update_text(nid, "So Long, and Thanks for All the Fish")
        assert list(manager.lookup_contains("Restaurant")) == []
        assert len(list(manager.lookup_contains("Thanks for All"))) == 1

    def test_follows_structural_updates(self, manager):
        doc = manager.store.document("lib")
        root_nid = doc.nid[doc.root_element()]
        manager.insert_xml(root_nid, "<book><title>Mostly Harmless</title></book>")
        assert len(list(manager.lookup_contains("Mostly Harmless"))) == 1
        book = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == 1 and doc.name_of(p) == "note"
        )
        manager.delete_subtree(book)

    def test_disabled_by_default(self):
        m = IndexManager(typed=())
        m.load("lib", DOC)
        assert m.substring_index is None
        # Lookup still works via scan fallback.
        assert len(list(m.lookup_contains("Universe"))) == 2

    def test_index_sizes_include_substring(self, manager):
        assert manager.index_sizes()["substring"] > 0


class TestQueryIntegration:
    def test_contains_query(self, manager):
        q = '//book[contains(title/text(), "Universe")]'
        indexed = query(manager, q)
        naive = query(manager, q, use_indexes=False)
        assert indexed == naive
        assert len(indexed) == 2
        assert explain(manager, q) == "index(substring)"

    def test_contains_on_attribute(self, manager):
        q = '//book[contains(isbn/@code, "391827")]'
        assert query(manager, q) == query(manager, q, use_indexes=False)
        assert len(query(manager, q)) == 1

    def test_matches_query(self, manager):
        q = '//book[matches(title/text(), "the .niverse")]'
        indexed = query(manager, q)
        assert indexed == query(manager, q, use_indexes=False)
        assert len(indexed) == 2
        assert explain(manager, q) == "index(substring)"

    def test_element_operand_scans(self, manager):
        q = '//book[contains(title, "Universe")]'
        assert explain(manager, q) == "scan"
        assert len(query(manager, q)) == 2

    def test_short_needle_scans(self, manager):
        q = '//book[contains(title/text(), "U")]'
        assert explain(manager, q) == "scan"
        assert query(manager, q) == query(manager, q, use_indexes=False)

    def test_boundary_spanning_match_found_by_element_scan(self):
        """A needle spanning two leaves is only visible at element
        level — exactly why the planner refuses leaf acceleration
        for element operands."""
        m = IndexManager(typed=(), substring=True)
        m.load("doc", "<r><x><a>Arthur</a><b>Dent</b></x></r>")
        q = '//x[contains(., "urDe")]'
        assert explain(m, q) == "scan"
        assert len(query(m, q)) == 1
