"""Tests for index maintenance (paper Figure 8) under value and
structural updates, including the update ≡ rebuild property."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexManager
from repro.xmldb import ELEM, TEXT

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<birthday>1966-09-26</birthday>"
    "<age><decades>4</decades>2<years/></age>"
    "<weight><kilos>78</kilos>.<grams>230</grams></weight>"
    "</person>"
)


def fresh_manager(xml=PERSON, typed=("double",)):
    manager = IndexManager(typed=typed)
    manager.load("doc", xml)
    return manager


def text_nid(manager, content, doc_name="doc"):
    doc = manager.store.document(doc_name)
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(f"no text node {content!r}")


def elem_nid(manager, name, doc_name="doc"):
    doc = manager.store.document(doc_name)
    for pre in range(len(doc)):
        if doc.kind[pre] == ELEM and doc.name_of(pre) == name:
            return doc.nid[pre]
    raise AssertionError(f"no element {name!r}")


class TestTextUpdates:
    def test_paper_dent_to_prefect(self):
        """Section 3's running update example."""
        manager = fresh_manager()
        manager.update_text(text_nid(manager, "Dent"), "Prefect")
        assert list(manager.lookup_string("Dent")) == []
        hits = list(manager.lookup_string("ArthurPrefect"))
        assert len(hits) == 1
        # All ancestors rehashed: the person node's value changed too.
        assert list(
            manager.lookup_string("ArthurPrefect1966-09-264278.230")
        )
        manager.check_consistency()

    def test_double_index_follows_update(self):
        manager = fresh_manager()
        manager.update_text(text_nid(manager, "2"), "3")
        assert list(manager.lookup_typed_equal("double", 42.0)) == []
        hits = list(manager.lookup_typed_equal("double", 43.0))
        assert len(hits) == 1
        manager.check_consistency()

    def test_update_to_rejected_value(self):
        manager = fresh_manager()
        manager.update_text(text_nid(manager, "78"), "not a number")
        # <kilos>, <weight> are no longer castable (or even potential).
        assert list(manager.lookup_typed_equal("double", 78.23)) == []
        index = manager.typed_index("double")
        assert index.field_of(elem_nid(manager, "weight")).is_rejected
        manager.check_consistency()

    def test_update_from_rejected_to_valid(self):
        manager = fresh_manager()
        manager.update_text(text_nid(manager, "Arthur"), "7")
        hits = list(manager.lookup_typed_equal("double", 7.0))
        assert len(hits) == 2  # text + <first>
        manager.check_consistency()

    def test_attribute_update_no_ancestor_effect(self):
        manager = IndexManager()
        manager.load("doc", '<a x="old"><b>keep</b></a>')
        doc = manager.store.document("doc")
        attr = next(doc.nid[p] for p in range(len(doc)) if doc.kind[p] == 3)
        root_hash_before = manager.string_index.hash_of[
            doc.nid[doc.root_element()]
        ]
        count = manager.update_text(attr, "new")
        assert count == 1  # only the attribute itself
        assert (
            manager.string_index.hash_of[doc.nid[doc.root_element()]]
            == root_hash_before
        )
        assert list(manager.lookup_string("new"))
        manager.check_consistency()

    def test_batch_shares_ancestor_work(self):
        manager = fresh_manager()
        first = text_nid(manager, "Arthur")
        family = text_nid(manager, "Dent")
        count = manager.update_texts([(first, "Ford"), (family, "Prefect")])
        # 2 leaves + ancestors {first, family, name, person, doc} = 7;
        # without sharing it would be 2 * (1 + 4) = 10.
        assert count == 7
        assert list(manager.lookup_string("FordPrefect"))
        manager.check_consistency()

    def test_duplicate_nids_in_batch(self):
        manager = fresh_manager()
        nid = text_nid(manager, "Dent")
        manager.update_texts([(nid, "X"), (nid, "Y")])
        assert list(manager.lookup_string("Y"))
        assert not list(manager.lookup_string("X"))
        manager.check_consistency()

    def test_update_to_same_value(self):
        manager = fresh_manager()
        manager.update_text(text_nid(manager, "Dent"), "Dent")
        assert list(manager.lookup_string("ArthurDent"))
        manager.check_consistency()

    def test_empty_batch(self):
        manager = fresh_manager()
        assert manager.update_texts([]) == 0


class TestStructuralUpdates:
    def test_delete_subtree(self):
        manager = fresh_manager()
        manager.delete_subtree(elem_nid(manager, "weight"))
        assert list(manager.lookup_typed_equal("double", 78.23)) == []
        assert list(manager.lookup_string("ArthurDent1966-09-2642"))
        manager.check_consistency()

    def test_delete_text_makes_parent_empty(self):
        manager = fresh_manager()
        manager.delete_subtree(text_nid(manager, "Dent"))
        hits = list(manager.lookup_string("Arthur"))
        # text node, <first>, and now also <name> ("Arthur" + "")
        assert len(hits) == 3
        manager.check_consistency()

    def test_insert_subtree(self):
        manager = fresh_manager()
        manager.insert_xml(elem_nid(manager, "name"), "<middle>Philip</middle>")
        assert list(manager.lookup_string("ArthurDentPhilip"))
        assert list(manager.lookup_string("Philip"))
        manager.check_consistency()

    def test_insert_numeric_subtree(self):
        manager = fresh_manager()
        manager.insert_xml(elem_nid(manager, "age"), "<months>.5</months>")
        hits = list(manager.lookup_typed_equal("double", 42.5))
        assert len(hits) == 1
        manager.check_consistency()

    def test_paper_deletion_rule(self):
        """Section 5: after deleting a subtree, the parent recomputes
        from its remaining children."""
        manager = fresh_manager()
        manager.delete_subtree(elem_nid(manager, "decades"))
        hits = list(manager.lookup_typed_equal("double", 2.0))
        assert elem_nid(manager, "age") in hits
        manager.check_consistency()

    def test_insert_then_update_inserted(self):
        manager = fresh_manager()
        change = manager.insert_xml(elem_nid(manager, "person"), "<iq>160</iq>")
        text = next(
            nid
            for nid in change.added_nids
            if manager.store.node(nid)[0].kind[manager.store.node(nid)[1]]
            == TEXT
        )
        manager.update_text(text, "170")
        assert list(manager.lookup_typed_equal("double", 170.0))
        assert not list(manager.lookup_typed_equal("double", 160.0))
        manager.check_consistency()


# ---------------------------------------------------------------------------
# Property: any sequence of random updates leaves the indices identical
# to a from-scratch rebuild (the paper's core maintenance claim).
# ---------------------------------------------------------------------------

_texts = st.sampled_from(
    ["Arthur", "42", "4.2", ".", "E+9", "", "  7 ", "towel", "0.001", "x"]
)


@st.composite
def random_xml(draw, max_depth=3):
    def node(depth):
        if depth >= max_depth or draw(st.booleans()):
            return draw(_texts)
        children = draw(st.lists(st.just(None), min_size=0, max_size=3))
        inner = "".join(node(depth + 1) for _ in children)
        name = draw(st.sampled_from("abcde"))
        return f"<{name}>{inner}</{name}>"

    children = draw(st.lists(st.just(None), min_size=1, max_size=4))
    inner = "".join(node(1) for _ in children)
    return f"<root>{inner}</root>"


@given(random_xml(), st.data())
@settings(max_examples=60, deadline=None)
def test_random_updates_equal_rebuild(xml, data):
    manager = IndexManager(typed=("double",))
    manager.load("doc", xml)
    doc = manager.store.document("doc")
    updatable = [
        doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT
    ]
    steps = data.draw(st.integers(0, 5))
    for _ in range(steps):
        if updatable and data.draw(st.booleans()):
            nid = data.draw(st.sampled_from(updatable))
            manager.update_text(nid, data.draw(_texts))
        else:
            root_nid = doc.nid[doc.root_element()]
            fragment = data.draw(_texts)
            manager.insert_xml(root_nid, f"<n>{fragment}</n>")
    manager.check_consistency()


@given(random_xml(), st.data())
@settings(max_examples=40, deadline=None)
def test_random_deletes_equal_rebuild(xml, data):
    manager = IndexManager(typed=("double",))
    manager.load("doc", xml)
    doc = manager.store.document("doc")
    for _ in range(data.draw(st.integers(0, 3))):
        candidates = [
            doc.nid[p]
            for p in range(1, len(doc))
            if doc.kind[p] in (ELEM, TEXT) and p != doc.root_element()
        ]
        if not candidates:
            break
        manager.delete_subtree(data.draw(st.sampled_from(candidates)))
    manager.check_consistency()


def test_randomized_soak():
    """Seeded random soak: many mixed updates, then consistency check."""
    rng = random.Random(42)
    manager = fresh_manager(typed=("double", "integer"))
    doc = manager.store.document("doc")
    values = ["1", "2.5", "Zaphod", "", " 44 ", "-0.5", "towel", "9E2"]
    for step in range(200):
        texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
        action = rng.random()
        if action < 0.7 and texts:
            manager.update_text(rng.choice(texts), rng.choice(values))
        elif action < 0.85:
            parent = elem_nid(manager, "person")
            manager.insert_xml(parent, f"<x{step}>{rng.choice(values)}</x{step}>")
        else:
            deletable = [
                doc.nid[p]
                for p in range(len(doc))
                if doc.kind[p] == ELEM and doc.name_of(p).startswith("x")
            ]
            if deletable:
                manager.delete_subtree(rng.choice(deletable))
    manager.check_consistency()
