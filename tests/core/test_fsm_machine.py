"""Tests for the DFA framework (repro.core.fsm.machine)."""

import pytest

from repro.core.fsm.machine import DEAD, DfaSpec

# A toy machine: 'a'+ optionally followed by 'b'+.
TOY = DfaSpec(
    name="toy",
    states=["start", "a", "b"],
    initial="start",
    finals={"a", "b"},
    classes={"a": "a", "b": "b"},
    transitions={
        ("start", "a"): "a",
        ("a", "a"): "a",
        ("a", "b"): "b",
        ("b", "b"): "b",
    },
)


class TestCompile:
    def test_dead_state_is_zero(self):
        dfa = TOY.compile()
        assert dfa.table[DEAD] == (DEAD, DEAD)

    def test_state_and_class_counts(self):
        dfa = TOY.compile()
        assert dfa.n_states == 4  # 3 named + dead
        assert dfa.n_classes == 2

    def test_rejects_unknown_initial(self):
        with pytest.raises(ValueError, match="initial"):
            DfaSpec("x", ["s"], "nope", set(), {}, {}).compile()

    def test_rejects_unknown_final(self):
        with pytest.raises(ValueError, match="final"):
            DfaSpec("x", ["s"], "s", {"nope"}, {}, {}).compile()

    def test_rejects_overlapping_classes(self):
        with pytest.raises(ValueError, match="classes"):
            DfaSpec(
                "x", ["s"], "s", set(), {"one": "ab", "two": "bc"}, {}
            ).compile()

    def test_rejects_transition_from_unknown_state(self):
        with pytest.raises(ValueError, match="unknown state"):
            DfaSpec(
                "x", ["s"], "s", set(), {"a": "a"}, {("ghost", "a"): "s"}
            ).compile()

    def test_rejects_transition_on_unknown_class(self):
        with pytest.raises(ValueError, match="unknown class"):
            DfaSpec(
                "x", ["s"], "s", set(), {"a": "a"}, {("s", "ghost"): "s"}
            ).compile()


class TestRun:
    @pytest.fixture()
    def dfa(self):
        return TOY.compile()

    def test_accepts(self, dfa):
        assert dfa.accepts("a")
        assert dfa.accepts("aaab")
        assert not dfa.accepts("")
        assert not dfa.accepts("b")
        assert not dfa.accepts("aba")
        assert not dfa.accepts("ax")

    def test_illegal_char_goes_dead(self, dfa):
        assert dfa.step(dfa.initial, "z") == DEAD
        assert dfa.run("az") == DEAD

    def test_classify(self, dfa):
        assert dfa.classify("a") is not None
        assert dfa.classify("z") is None

    def test_run_from_explicit_state(self, dfa):
        mid = dfa.run("aa")
        assert dfa.run("b", state=mid) in dfa.finals

    def test_reachable_states(self, dfa):
        names = {dfa.state_names[s] for s in dfa.reachable_states()}
        assert names == {"start", "a", "b"}

    def test_coreachable_states(self, dfa):
        names = {dfa.state_names[s] for s in dfa.coreachable_states()}
        assert names == {"start", "a", "b"}

    def test_unreachable_state_detected(self):
        spec = DfaSpec(
            name="orphan",
            states=["start", "island"],
            initial="start",
            finals={"start"},
            classes={"a": "a"},
            transitions={("island", "a"): "island"},
        )
        dfa = spec.compile()
        island = dfa.state_names.index("island")
        assert island not in dfa.reachable_states()
        assert island not in dfa.coreachable_states()


class TestMinimize:
    def test_merges_equivalent_states(self):
        # Two states with identical futures collapse.
        spec = DfaSpec(
            name="dup",
            states=["start", "a1", "a2", "end"],
            initial="start",
            finals={"end"},
            classes={"a": "a", "b": "b"},
            transitions={
                ("start", "a"): "a1",
                ("start", "b"): "a2",
                ("a1", "a"): "end",
                ("a2", "a"): "end",
                ("end", "a"): "end",
            },
        )
        dfa = spec.compile()
        mini = dfa.minimize()
        assert mini.n_states < dfa.n_states
        for text in ("aa", "ba", "aaa", "b", "", "ab"):
            assert dfa.accepts(text) == mini.accepts(text), text

    def test_drops_unreachable_states(self):
        spec = DfaSpec(
            name="orphan",
            states=["start", "island"],
            initial="start",
            finals={"start"},
            classes={"a": "a"},
            transitions={("island", "a"): "island"},
        )
        mini = spec.compile().minimize()
        assert mini.n_states == 2  # dead + start

    def test_dead_stays_state_zero(self):
        mini = TOY.compile().minimize()
        assert mini.table[DEAD] == tuple([DEAD] * mini.n_classes)
        assert DEAD not in mini.finals

    def test_idempotent(self):
        mini = TOY.compile().minimize()
        again = mini.minimize()
        assert again.n_states == mini.n_states

    def test_builtin_machines_shrink_or_hold(self):
        from repro.core.fsm.double import DOUBLE_SPEC
        from repro.core.fsm.temporal import DATETIME_SPEC

        for spec in (DOUBLE_SPEC, DATETIME_SPEC):
            dfa = spec.compile()
            assert dfa.minimize().n_states <= dfa.n_states

    def test_language_preserved_exhaustively(self):
        import itertools

        dfa = TOY.compile()
        mini = dfa.minimize()
        for length in range(0, 6):
            for word in itertools.product("ab", repeat=length):
                text = "".join(word)
                assert dfa.accepts(text) == mini.accepts(text), text
