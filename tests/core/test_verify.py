"""Tests for the first-principles database verifier."""

import pytest

from repro.core import IndexManager
from repro.core.verify import verify_database
from repro.workloads import generate_xmark
from repro.xmldb import TEXT


@pytest.fixture()
def manager():
    m = IndexManager(typed=("double",), substring=True)
    m.load("xmark", generate_xmark(0.3))
    return m


class TestCleanDatabase:
    def test_fresh_build_verifies(self, manager):
        report = verify_database(manager)
        assert report.ok, report.summary()
        assert report.nodes_checked > 100
        assert report.entries_checked > report.nodes_checked

    def test_after_updates(self, manager):
        doc = manager.store.document("xmark")
        texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
        for nid in texts[:20]:
            manager.update_text(nid, "7.5")
        root = doc.nid[doc.root_element()]
        manager.insert_xml(root, "<extra>42</extra>")
        report = verify_database(manager)
        assert report.ok, report.summary()

    def test_summary_format(self, manager):
        report = verify_database(manager)
        assert "verification: OK" in report.summary()


class TestCorruptionDetection:
    def test_detects_wrong_hash(self, manager):
        nid = next(iter(manager.string_index.hash_of))
        manager.string_index.hash_of[nid] ^= 0xDEADBEEF
        report = verify_database(manager)
        assert not report.ok
        assert any("hash" in p for p in report.problems)

    def test_detects_missing_hash_entry(self, manager):
        nid = next(iter(manager.string_index.hash_of))
        del manager.string_index.hash_of[nid]
        report = verify_database(manager)
        assert any("missing hash entry" in p for p in report.problems)

    def test_detects_wrong_typed_state(self, manager):
        index = manager.typed_index("double")
        nid = next(iter(index.fragment_of_node))
        del index.fragment_of_node[nid]
        report = verify_database(manager)
        assert any("state" in p for p in report.problems)

    def test_detects_tree_orphans(self, manager):
        manager.string_index.tree.insert((12345, 10**9))
        report = verify_database(manager)
        assert any("orphan" in p for p in report.problems)

    def test_detects_structure_damage(self, manager):
        doc = manager.store.document("xmark")
        doc.size[doc.root_element()] -= 1  # corrupt the pre/size plane
        report = verify_database(manager)
        assert not report.ok

    def test_detects_stale_substring_postings(self, manager):
        doc = manager.store.document("xmark")
        text_pre = next(
            p
            for p in range(len(doc))
            if doc.kind[p] == TEXT and len(doc.text_of(p)) >= 3
        )
        # Bypass the manager: mutate the document without maintenance.
        doc.texts[doc.text_id[text_pre]] = "zzzzzzzz"
        report = verify_database(manager)
        assert not report.ok
