"""Tests for the xs:duration machine."""

import pytest
from decimal import Decimal
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fsm import get_plugin
from repro.core.fsm.duration import SECONDS_PER_MONTH


@pytest.fixture(scope="module")
def duration():
    return get_plugin("duration")


class TestAcceptance:
    @pytest.mark.parametrize(
        "text",
        [
            "P1Y", "P2M", "P3D", "PT4H", "PT5M", "PT6S", "PT6.5S",
            "P1Y2M3DT4H5M6.7S", "-P1D", " P1Y ", "P1YT1S", "P12M",
        ],
    )
    def test_valid(self, duration, text):
        assert duration.value_of_text(text) is not None, text

    @pytest.mark.parametrize(
        "text",
        [
            "P",  # no components
            "PT",  # T without time component
            "P1",  # number without unit
            "P1S",  # S in the date part
            "PT1Y",  # Y in the time part
            "P1D2Y",  # wrong order
            "PT1M2H",  # wrong order
            "1Y",  # missing P
            "P1.5Y",  # fraction only allowed on seconds
            "P1Y text",
        ],
    )
    def test_invalid(self, duration, text):
        assert duration.value_of_text(text) is None, text


class TestValues:
    def test_simple_components(self, duration):
        assert duration.value_of_text("PT1S") == 1
        assert duration.value_of_text("PT1M") == 60
        assert duration.value_of_text("PT1H") == 3600
        assert duration.value_of_text("P1D") == 86400
        assert duration.value_of_text("P1M") == SECONDS_PER_MONTH
        assert duration.value_of_text("P1Y") == 12 * SECONDS_PER_MONTH

    def test_date_month_vs_time_minute(self, duration):
        """'M' means months before T and minutes after it."""
        assert duration.value_of_text("P1M") != duration.value_of_text("PT1M")

    def test_fractional_seconds(self, duration):
        assert duration.value_of_text("PT0.25S") == Decimal("0.25")

    def test_negative(self, duration):
        assert duration.value_of_text("-PT30S") == -30

    def test_composite(self, duration):
        value = duration.value_of_text("P1DT2H3M4S")
        assert value == 86400 + 2 * 3600 + 3 * 60 + 4

    def test_year_equals_twelve_months(self, duration):
        assert duration.value_of_text("P1Y") == duration.value_of_text("P12M")

    def test_ordering(self, duration):
        assert duration.value_of_text("PT1S") < duration.value_of_text("PT2S")
        assert duration.value_of_text("P1D") < duration.value_of_text("P1M")


class TestCombination:
    def test_split_fragments(self, duration):
        left = duration.fragment_of_text("P1Y2")
        right = duration.fragment_of_text("M")
        combined = duration.combine(left, right)
        assert duration.cast(combined) == duration.value_of_text("P1Y2M")

    def test_split_in_time_part(self, duration):
        combined = duration.combine_all(
            duration.fragment_of_text(t) for t in ("PT", "4H", "30M")
        )
        assert duration.cast(combined) == duration.value_of_text("PT4H30M")

    def test_rejected_fragment(self, duration):
        assert duration.fragment_of_text("Q").is_rejected


_DURATION_ALPHABET = "0123456789PYMDTHS.- "
duration_texts = st.text(alphabet=_DURATION_ALPHABET, max_size=16)


@given(duration_texts, duration_texts)
@settings(max_examples=200)
def test_sct_matches_concatenation(a, b):
    duration = get_plugin("duration")
    combined = duration.combine(
        duration.fragment_of_text(a), duration.fragment_of_text(b)
    )
    direct = duration.fragment_of_text(a + b)
    assert combined.state == direct.state
    assert duration.cast(combined) == duration.cast(direct)


def test_typed_index_on_durations():
    from repro.core import IndexManager

    manager = IndexManager(typed=("duration",))
    manager.load(
        "tasks",
        "<tasks>"
        "<task><est>PT2H</est></task>"
        "<task><est>P1DT1H</est></task>"
        "<task><est>PT45M</est></task>"
        "<task><est>soon</est></task>"
        "</tasks>",
    )
    hits = list(
        manager.lookup_typed_range("duration", 3600, 86400)
    )
    values = sorted(v for v, _ in hits)
    # PT2H appears as text, <est> and the wrapping <task> (whose string
    # value is also "PT2H") — 7200 s each.
    assert values == [7200, 7200, 7200]
