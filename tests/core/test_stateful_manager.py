"""Stateful model testing of the IndexManager (hypothesis rules).

Hypothesis drives arbitrary interleavings of every update primitive
against one manager; after each step the structural invariants hold,
and at teardown the indices must equal a from-scratch rebuild — the
strongest form of the paper's maintenance claim.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core import IndexManager
from repro.xmldb import ATTR, ELEM, TEXT

_VALUES = ["", "x", "42", "4.2", " 7 ", "E+", "towel", "0.001"]


class ManagerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.manager = IndexManager(typed=("double",), substring=True)
        self.doc = self.manager.load(
            "doc",
            '<root a="1"><item>42</item><item>words</item>'
            "<mixed>4<inner/>2</mixed></root>",
        )
        self.counter = 0

    def _texts(self):
        doc = self.doc
        return [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]

    def _attrs(self):
        doc = self.doc
        return [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == ATTR]

    def _extras(self):
        doc = self.doc
        return [
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == ELEM and doc.name_of(p).startswith("x")
        ]

    @rule(pick=st.integers(0, 10**6), value=st.sampled_from(_VALUES))
    def update_text(self, pick, value):
        texts = self._texts()
        if texts:
            self.manager.update_text(texts[pick % len(texts)], value)

    @rule(pick=st.integers(0, 10**6), value=st.sampled_from(_VALUES))
    def update_attribute(self, pick, value):
        attrs = self._attrs()
        if attrs:
            self.manager.update_text(attrs[pick % len(attrs)], value)

    @rule(value=st.sampled_from(_VALUES))
    def insert_fragment(self, value):
        self.counter += 1
        root = self.doc.nid[self.doc.root_element()]
        self.manager.insert_xml(
            root, f"<x{self.counter}>{value}</x{self.counter}>"
        )

    @rule(pick=st.integers(0, 10**6))
    def delete_extra(self, pick):
        extras = self._extras()
        if extras:
            self.manager.delete_subtree(extras[pick % len(extras)])

    @rule(value=st.sampled_from(_VALUES))
    def add_attribute(self, value):
        self.counter += 1
        root = self.doc.nid[self.doc.root_element()]
        self.manager.insert_attribute(root, f"k{self.counter}", value)

    @rule(pick=st.integers(0, 10**6))
    def remove_attribute(self, pick):
        attrs = self._attrs()
        if attrs:
            self.manager.delete_attribute(attrs[pick % len(attrs)])

    @rule(pick=st.integers(0, 10**6))
    def rename_extra(self, pick):
        extras = self._extras()
        if extras:
            self.counter += 1
            self.manager.rename(
                extras[pick % len(extras)], f"x{self.counter}r"
            )

    @rule(value=st.sampled_from(_VALUES))
    def query_agreement(self, value):
        from repro.query import query

        if value.strip() and '"' not in value:
            text = f'//item[. = "{value}"]'
            assert query(self.manager, text) == query(
                self.manager, text, use_indexes=False
            )

    @invariant()
    def document_invariants(self):
        if hasattr(self, "doc"):
            self.doc.check_invariants()

    def teardown(self):
        if hasattr(self, "manager"):
            self.manager.check_consistency()


ManagerMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
TestManagerStateful = ManagerMachine.TestCase
