"""Tests for index statistics and the cost-based planner mode."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexManager
from repro.core.statistics import (
    EquiDepthHistogram,
    StringIndexStatistics,
    TypedIndexStatistics,
)
from repro.query import query
from repro.workloads import generate_xmark


class TestEquiDepthHistogram:
    def test_empty(self):
        histogram = EquiDepthHistogram([])
        assert histogram.estimate_range(0, 10) == 0.0
        assert histogram.estimate_equal(5) == 0.0

    def test_bucket_validation(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram([1.0], buckets=0)

    def test_full_range_is_total(self):
        values = [float(i) for i in range(1000)]
        histogram = EquiDepthHistogram(values)
        assert histogram.estimate_range(None, None) == 1000.0
        assert histogram.estimate_less_equal(999.0) == 1000.0
        assert histogram.estimate_less_equal(-1.0) == 0.0

    def test_half_range_roughly_half(self):
        values = [float(i) for i in range(1000)]
        histogram = EquiDepthHistogram(values)
        estimate = histogram.estimate_range(None, 499.0)
        assert 400 <= estimate <= 600

    def test_skewed_distribution(self):
        # 90% of the mass at one value; equi-depth adapts.
        values = [1.0] * 900 + [float(i) for i in range(2, 102)]
        histogram = EquiDepthHistogram(values)
        assert histogram.estimate_equal(1.0) > 100
        assert histogram.estimate_range(50.0, 100.0) < 200

    @given(
        st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=500),
        st.floats(0, 1000),
        st.floats(0, 1000),
    )
    @settings(max_examples=100, deadline=None)
    def test_estimates_bounded_and_ordered(self, values, a, b):
        low, high = min(a, b), max(a, b)
        histogram = EquiDepthHistogram(values)
        estimate = histogram.estimate_range(low, high)
        assert 0.0 <= estimate <= len(values) + 1
        assert histogram.estimate_less_equal(low) <= (
            histogram.estimate_less_equal(high) + 1e-9
        )


class TestIndexStatistics:
    @pytest.fixture(scope="class")
    def manager(self):
        m = IndexManager(typed=("double",))
        m.load("xmark", generate_xmark(1.0))
        return m

    def test_typed_snapshot(self, manager):
        stats = TypedIndexStatistics.from_index(manager.typed_index("double"))
        total = stats.histogram.total
        assert total == manager.typed_index("double").castable_count()
        # Estimates track reality within a factor for broad ranges.
        actual = len(list(manager.lookup_typed_range("double", 0.0, 100.0)))
        estimate = stats.estimate("<=", 100.0)
        assert estimate > 0
        assert actual / 4 <= estimate + stats.estimate("<", 0.0) + 50

    def test_string_snapshot(self, manager):
        stats = StringIndexStatistics.from_index(manager.string_index)
        assert stats.entries == len(manager.string_index)
        assert 1 <= stats.estimate_equal() < 10

    def test_manager_cache_reuses_snapshot(self, manager):
        first = manager.statistics("double")
        second = manager.statistics("double")
        assert first is second

    def test_cache_invalidated_after_drift(self):
        m = IndexManager(typed=("double",))
        m.load("doc", "<r>" + "".join(f"<v>{i}</v>" for i in range(50)) + "</r>")
        first = m.statistics("double")
        doc = m.store.document("doc")
        from repro.xmldb import TEXT

        texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
        # Churn far past the 10%/100-entry drift threshold.
        for round_ in range(3):
            m.update_texts([(nid, str(round_ * 1000)) for nid in texts])
        second = m.statistics("double")
        assert second is not first

    def test_drift_refresh_rebuilds_histogram(self):
        """Once mutations pass the drift threshold the snapshot is
        recomputed and its histogram reflects the *new* values."""
        m = IndexManager(typed=("double",))
        m.load(
            "doc", "<r>" + "".join(f"<v>{i}</v>" for i in range(200)) + "</r>"
        )
        stale = m.statistics("double")
        assert stale.estimate("<=", 199.0) > 100
        doc = m.store.document("doc")
        from repro.xmldb import TEXT

        texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
        # Move every value three orders of magnitude up, well past the
        # max(100, 10%) drift threshold.
        m.update_texts([(nid, str(100_000 + nid)) for nid in texts])
        fresh = m.statistics("double")
        assert fresh is not stale
        assert fresh.estimate("<=", 199.0) < stale.estimate("<=", 199.0)
        assert fresh.estimate(">=", 100_000.0) > 100
        counters = m.metrics.snapshot()["counters"]
        assert counters["statistics.refreshes"] == 2

    def test_small_drift_keeps_snapshot(self):
        m = IndexManager(typed=("double",))
        m.load(
            "doc", "<r>" + "".join(f"<v>{i}</v>" for i in range(200)) + "</r>"
        )
        first = m.statistics("double")
        doc = m.store.document("doc")
        from repro.xmldb import TEXT

        nid = next(
            doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT
        )
        m.update_text(nid, "9999")  # far below the drift threshold
        assert m.statistics("double") is first
        assert m.metrics.snapshot()["counters"]["statistics.cached"] >= 1

    def test_string_stats_requires_index(self):
        m = IndexManager(string=False, typed=("double",))
        from repro.errors import IndexError_

        with pytest.raises(IndexError_):
            m.statistics("string")


class TestAutoMode:
    @pytest.fixture(scope="class")
    def manager(self):
        m = IndexManager(typed=("double",))
        m.load("xmark", generate_xmark(1.0))
        return m

    def test_rejects_bad_mode(self, manager):
        with pytest.raises(ValueError):
            query(manager, "//item", use_indexes="maybe")

    def test_auto_equals_forced_and_scan(self, manager):
        for text in (
            "//item[quantity = 5]",
            "//item[price > 0]",  # unselective
            "//person[age >= 97]",
        ):
            auto = query(manager, text, use_indexes="auto")
            forced = query(manager, text, use_indexes=True)
            scan = query(manager, text, use_indexes=False)
            assert auto == forced == scan, text

    def test_auto_scans_unselective_range(self, manager):
        """price > 0 matches ~every double: the estimate must exceed the
        scan threshold so auto mode skips the index."""
        from repro.query.planner import SCAN_THRESHOLD, _estimate_driver
        from repro.query.parser import parse_query

        parsed = parse_query("//item[price > 0]")
        driver = parsed.path.steps[0].predicates[0]
        doc = manager.store.document("xmark")
        estimate = _estimate_driver(manager, driver)
        assert estimate > SCAN_THRESHOLD * len(doc) * 0.1
        # And a selective one stays under it.
        selective = parse_query("//person[age = 55]")
        estimate = _estimate_driver(
            manager, selective.path.steps[0].predicates[0]
        )
        assert estimate < SCAN_THRESHOLD * len(doc)
