"""Tests for the query layer: parser, naive evaluator, index plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexManager
from repro.errors import QuerySyntaxError
from repro.query import explain, parse_query, query
from repro.xmldb import ATTR, ELEM, TEXT

PERSONS = (
    "<persons>"
    "<person><name><first>Arthur</first><family>Dent</family></name>"
    "<age><decades>4</decades>2<years/></age></person>"
    "<person><name><first>Ford</first><family>Prefect</family></name>"
    "<age>200</age></person>"
    "<person><name><first>Tricia</first><family>McMillan</family></name>"
    "<age>42</age></person>"
    "</persons>"
)

ITEMS = (
    "<items>"
    '<item price="10.5" currency="EUR"><title>towel</title></item>'
    '<item price="42" currency="USD"><title>guide</title></item>'
    '<item price="7" currency="EUR"><title>fish</title></item>'
    "</items>"
)


@pytest.fixture(scope="module")
def manager():
    m = IndexManager(typed=("double",))
    m.load("persons", PERSONS)
    m.load("items", ITEMS)
    return m


def names(manager, nids):
    out = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        kind = doc.kind[pre]
        if kind == ELEM:
            out.append(doc.name_of(pre))
        elif kind == TEXT:
            out.append(f"text({doc.text_of(pre)})")
        elif kind == ATTR:
            out.append(f"@{doc.name_of(pre)}")
    return out


class TestParser:
    def test_paper_query_1(self):
        parsed = parse_query('doc("persons.xml")//person[.//age = 42]')
        assert parsed.document == "persons.xml"
        assert len(parsed.path.steps) == 1
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.op == "=" and predicate.literal == 42.0

    def test_paper_query_2(self):
        parsed = parse_query('doc("person")//person[first/text()="Arthur"]')
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.literal == "Arthur"
        assert len(predicate.operand.steps) == 2

    def test_paper_query_3(self):
        parsed = parse_query('doc("person")//*[fn:data(name)="ArthurDent"]')
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.literal == "ArthurDent"

    def test_multi_step_path(self):
        parsed = parse_query("/persons/person/name")
        assert [s.axis for s in parsed.path.steps] == ["child"] * 3

    def test_attribute_predicate(self):
        parsed = parse_query("//item[@price < 11]")
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.op == "<" and predicate.literal == 11.0

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "//",
            "//person[",
            "//person[age 42]",
            "//person[age = ]",
            "//person[age = 'x]",
            "doc('a'//x",
            "//person]extra",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_query(bad)


class TestNaiveEvaluation:
    def test_descendant_name(self, manager):
        hits = query(manager, "//first", use_indexes=False)
        assert names(manager, hits) == ["first", "first", "first"]

    def test_child_path(self, manager):
        hits = query(manager, "/persons/person/name", use_indexes=False)
        assert len(hits) == 3

    def test_wildcard(self, manager):
        hits = query(manager, "/persons/*", document="persons", use_indexes=False)
        assert names(manager, hits) == ["person"] * 3

    def test_text_nodes(self, manager):
        hits = query(manager, "//first/text()", use_indexes=False)
        assert len(hits) == 3

    def test_attributes(self, manager):
        hits = query(manager, "//item/@price", use_indexes=False)
        assert names(manager, hits) == ["@price"] * 3

    def test_attribute_wildcard(self, manager):
        hits = query(manager, "//item/@*", use_indexes=False)
        assert len(hits) == 6

    def test_document_scoping(self, manager):
        assert query(manager, 'doc("items")//person', use_indexes=False) == []
        assert len(query(manager, "//item", document="items")) == 3


# The paper's three motivating queries, evaluated both ways.
PAPER_QUERIES = [
    ('//person[.//age = 42]', ["person", "person"]),  # Arthur + Tricia
    ('//person[name/first/text()="Arthur"]', ["person"]),
    ('//*[fn:data(name)="ArthurDent"]', ["person"]),
]


class TestIndexedEvaluation:
    @pytest.mark.parametrize("text,expected", PAPER_QUERIES)
    def test_paper_queries(self, manager, text, expected):
        indexed = query(manager, text, document="persons")
        naive = query(manager, text, document="persons", use_indexes=False)
        assert indexed == naive
        assert names(manager, indexed) == expected

    def test_numeric_equality_uses_index(self, manager):
        assert explain(manager, "//person[.//age = 42]") == "index(double)"

    def test_string_equality_uses_index(self, manager):
        assert explain(manager, '//person[name = "ArthurDent"]') == "index(string)"

    def test_no_predicate_scans(self, manager):
        assert explain(manager, "//person") == "scan"

    def test_not_equal_scans(self, manager):
        assert explain(manager, "//person[age != 42]") == "scan"

    def test_range_queries(self, manager):
        for text in (
            "//item[@price < 11]",
            "//item[@price <= 10.5]",
            "//item[@price > 7]",
            "//item[@price >= 42]",
        ):
            indexed = query(manager, text, document="items")
            naive = query(manager, text, document="items", use_indexes=False)
            assert indexed == naive, text
        cheap = query(manager, "//item[@price < 11]", document="items")
        assert len(cheap) == 2  # towel (10.5) and fish (7)

    def test_self_comparison(self, manager):
        indexed = query(manager, "//age[. = 42]", document="persons")
        naive = query(
            manager, "//age[. = 42]", document="persons", use_indexes=False
        )
        assert indexed == naive
        assert names(manager, indexed) == ["age", "age"]

    def test_deep_outer_path(self, manager):
        text = '/persons/person[name/family = "Prefect"]'
        indexed = query(manager, text)
        naive = query(manager, text, use_indexes=False)
        assert indexed == naive
        assert len(indexed) == 1

    def test_string_equality_on_text_step(self, manager):
        text = '//family[text() = "Dent"]'
        assert query(manager, text) == query(manager, text, use_indexes=False)

    def test_results_after_update(self, manager):
        # Index plans must follow updates.  Use a dedicated manager to
        # leave the module fixture untouched.
        m = IndexManager(typed=("double",))
        m.load("persons", PERSONS)
        doc = m.store.document("persons")
        tricia_age = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == TEXT and doc.text_of(p) == "42"
        )
        m.update_text(tricia_age, "43")
        hits = query(m, "//person[.//age = 42]")
        assert len(hits) == 1  # only Arthur's mixed-content age remains


class TestMixedContentSemantics:
    """The paper's core correctness claim: value predicates see the
    concatenated string value of mixed-content and element nodes."""

    def test_decomposed_age_matches(self, manager):
        hits = query(manager, "//age[. = 42]", document="persons")
        # Arthur's <age><decades>4</decades>2<years/></age> matches.
        assert len(hits) == 2

    def test_concatenated_name(self, manager):
        hits = query(manager, '//name[. = "ArthurDent"]', document="persons")
        assert len(hits) == 1


@st.composite
def _query_strings(draw):
    name = draw(st.sampled_from(["person", "name", "first", "age", "item"]))
    op = draw(st.sampled_from(["=", "<", "<=", ">", ">="]))
    value = draw(st.sampled_from(["42", "7", "200", "10.5", "0"]))
    inner = draw(st.sampled_from([".", ".//age", "name/first", "@price"]))
    return f"//{name}[{inner} {op} {value}]"


@given(_query_strings())
@settings(max_examples=60, deadline=None)
def test_indexed_equals_naive(manager_query):
    manager = _MODULE_MANAGER
    indexed = query(manager, manager_query)
    naive = query(manager, manager_query, use_indexes=False)
    assert indexed == naive


_MODULE_MANAGER = IndexManager(typed=("double",))
_MODULE_MANAGER.load("persons", PERSONS)
_MODULE_MANAGER.load("items", ITEMS)
