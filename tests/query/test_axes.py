"""Tests for the extended axes: parent, ancestor, siblings, node()."""

import pytest

from repro.core import IndexManager
from repro.query import query

DOC = (
    "<library>"
    "<shelf id='s1'><book>A</book><book>B</book><book>C</book></shelf>"
    "<shelf id='s2'><book>D</book>note<book>E</book></shelf>"
    "</library>"
)


@pytest.fixture(scope="module")
def manager():
    m = IndexManager(typed=("double",))
    m.load("lib", DOC)
    return m


def names(manager, nids):
    """Element names (text nodes show their content, doc '#doc')."""
    out = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        kind = doc.kind[pre]
        if kind == 1:
            out.append(doc.name_of(pre))
        elif kind == 2:
            out.append(doc.text_of(pre))
        elif kind == 0:
            out.append("#doc")
    return out


def values(manager, nids):
    """XDM string values (concatenated text for elements)."""
    out = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        if doc.kind[pre] == 0:
            out.append("#doc")
        else:
            out.append(doc.string_value(pre))
    return out


class TestParentAxis:
    def test_dotdot(self, manager):
        hits = query(manager, "//book/..")
        assert names(manager, hits) == ["shelf", "shelf"]

    def test_named_parent_axis(self, manager):
        hits = query(manager, "//book/parent::shelf")
        assert names(manager, hits) == ["shelf", "shelf"]

    def test_parent_with_name_mismatch(self, manager):
        assert query(manager, "//book/parent::library") == []

    def test_dotdot_mid_path(self, manager):
        hits = query(manager, '//book[. = "A"]/../book[last()]')
        assert values(manager, hits) == ["C"]


class TestAncestorAxis:
    def test_ancestors_of_book(self, manager):
        hits = query(manager, '//book[. = "D"]/ancestor::*')
        assert sorted(names(manager, hits)) == ["library", "shelf"]

    def test_ancestor_node_includes_document(self, manager):
        hits = query(manager, '//book[. = "D"]/ancestor::node()')
        assert "#doc" in names(manager, hits)


class TestSiblingAxes:
    def test_following_siblings(self, manager):
        hits = query(manager, '//book[. = "A"]/following-sibling::book')
        assert values(manager, hits) == ["B", "C"]

    def test_preceding_siblings(self, manager):
        hits = query(manager, '//book[. = "C"]/preceding-sibling::book')
        assert values(manager, hits) == ["A", "B"]

    def test_sibling_text_nodes(self, manager):
        hits = query(manager, '//book[. = "D"]/following-sibling::node()')
        assert values(manager, hits) == ["note", "E"]

    def test_no_siblings_beyond_edges(self, manager):
        assert query(
            manager, '//book[. = "C"]/following-sibling::book'
        ) == []


class TestNodeTest:
    def test_node_matches_text_and_elements(self, manager):
        hits = query(manager, "/library/shelf/node()")
        assert values(manager, hits) == ["A", "B", "C", "D", "note", "E"]


class TestAxesInPredicates:
    def test_sibling_predicate(self, manager):
        hits = query(
            manager, '//book[following-sibling::book = "E"]'
        )
        assert values(manager, hits) == ["D"]

    def test_parent_predicate(self, manager):
        hits = query(manager, '//book[../@id = "s2"]')
        assert values(manager, hits) == ["D", "E"]

    def test_planner_falls_back_and_agrees(self, manager):
        for text in (
            '//book[following-sibling::book = "E"]',
            '//book[../@id = "s2"]',
            '//book[. = "A"]/following-sibling::book',
        ):
            assert query(manager, text) == query(
                manager, text, use_indexes=False
            ), text


class TestFullDocumentAxes:
    def test_following(self, manager):
        hits = query(manager, '//book[. = "C"]/following::book')
        assert values(manager, hits) == ["D", "E"]

    def test_following_excludes_own_subtree(self, manager):
        hits = query(manager, '//shelf[@id = "s1"]/following::node()')
        labels = values(manager, hits)
        assert "A" not in labels and "D" in labels

    def test_preceding(self, manager):
        hits = query(manager, '//book[. = "D"]/preceding::book')
        assert values(manager, hits) == ["A", "B", "C"]

    def test_preceding_excludes_ancestors(self, manager):
        hits = query(manager, '//book[. = "A"]/preceding::*')
        assert values(manager, hits) == []

    def test_indexed_agrees(self, manager):
        for text in (
            '//book[. = "C"]/following::book',
            '//book[preceding::book = "A"]',
        ):
            assert query(manager, text) == query(
                manager, text, use_indexes=False
            ), text
