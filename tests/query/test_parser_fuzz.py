"""Fuzz tests: the query parser/evaluator never fail unexpectedly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexManager
from repro.errors import (
    QueryEvaluationError,
    QuerySyntaxError,
)
from repro.query import parse_query, query

_query_chars = st.text(
    alphabet="/[]()@*.=<>!'\"abc123 ndorcotainslmt-:+",
    min_size=0,
    max_size=40,
)


@given(_query_chars)
@settings(max_examples=400, deadline=None)
def test_parser_raises_only_query_errors(text):
    """Arbitrary input either parses or raises QuerySyntaxError —
    never an internal exception."""
    try:
        parse_query(text)
    except QuerySyntaxError:
        pass


_MANAGER = IndexManager(typed=("double",), substring=True)
_MANAGER.load(
    "doc",
    '<a x="1"><b>text</b><c>42</c><b>more<d/>tail</b></a>',
)


@given(_query_chars)
@settings(max_examples=300, deadline=None)
def test_evaluation_never_crashes_internally(text):
    """Whatever parses must evaluate (or raise a documented
    QueryEvaluationError), and indexed == naive when it does."""
    try:
        parsed_ok = True
        parse_query(text)
    except QuerySyntaxError:
        parsed_ok = False
    if not parsed_ok:
        return
    try:
        indexed = query(_MANAGER, text)
        naive = query(_MANAGER, text, use_indexes=False)
    except QueryEvaluationError:
        return
    except Exception as exc:  # regex predicates may carry bad patterns
        import re

        if isinstance(exc, re.error):
            return
        raise
    assert indexed == naive, text


@pytest.mark.parametrize(
    "text",
    [
        "//b",
        "//a/b",
        '//a[b = "text"]',
        "//a[c = 42]",
        "//*[. = 42]",
        "//b[1]",
        "//b/..",
        '//b[contains(., "ex")]',
    ],
)
def test_known_good_queries_still_work(text):
    assert query(_MANAGER, text) == query(_MANAGER, text, use_indexes=False)
