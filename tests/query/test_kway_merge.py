"""The k-way merge kernel: sorted shard result arrays → global order."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.kernels import kway_merge


def _reference(arrays):
    if not arrays:
        return np.empty(0, dtype=np.int64)
    return np.sort(np.concatenate(arrays))


class TestKwayMerge:
    def test_empty_input(self):
        merged = kway_merge([])
        assert merged.size == 0
        assert merged.dtype == np.int64

    def test_all_empty_arrays(self):
        assert kway_merge([np.empty(0, dtype=np.int64)] * 3).size == 0

    def test_single_array_passthrough(self):
        a = np.array([1, 5, 9], dtype=np.int64)
        assert kway_merge([a]).tolist() == [1, 5, 9]

    def test_interleaved_disjoint_arrays(self):
        arrays = [
            np.array([0, 6, 12], dtype=np.int64),
            np.array([2, 8], dtype=np.int64),
            np.array([1, 7, 13, 14], dtype=np.int64),
        ]
        assert kway_merge(arrays).tolist() == [0, 1, 2, 6, 7, 8, 12, 13, 14]

    def test_shard_key_encoding_scale(self):
        # Keys as the coordinator builds them: doc_index << 40 | pre.
        keys = [
            np.array([(0 << 40) | 5, (2 << 40) | 1], dtype=np.int64),
            np.array([(1 << 40) | 9, (2 << 40) | 2], dtype=np.int64),
        ]
        merged = kway_merge(keys)
        assert (merged >> 40).tolist() == [0, 1, 2, 2]
        assert (merged & ((1 << 40) - 1)).tolist() == [5, 9, 1, 2]

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.lists(st.integers(0, 2**50), min_size=0, max_size=40),
            min_size=0, max_size=7,
        )
    )
    def test_matches_sort_of_concatenation(self, raw):
        arrays = [np.sort(np.array(part, dtype=np.int64)) for part in raw]
        merged = kway_merge(arrays)
        np.testing.assert_array_equal(
            merged, _reference([a for a in arrays if a.size])
        )
