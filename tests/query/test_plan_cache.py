"""Plan-cache behaviour: hits on repeats, invalidation on mutation.

Cached plans never embed results (execution always re-reads the
indices), but a stale plan could still carry outdated cost decisions —
and above all, a cached plan served after a mutation must return the
*current* document state.  These tests drive every mutation kind
through the public API and check both the counters and the results.
"""

from repro.core import IndexManager
from repro.query import query
from repro.xmldb import TEXT

XML = (
    "<people>"
    "<p><age>42</age><name>Arthur</name></p>"
    "<p><age>7</age><name>Ford</name></p>"
    "<p><age>99</age><name>Marvin</name></p>"
    "</people>"
)

Q = "//p[.//age = 42]"


def _manager():
    m = IndexManager(typed=("double",))
    m.load("people", XML)
    return m


def _counters(m):
    return m.metrics.snapshot()["counters"]


def _text_nid(m, content):
    doc = m.store.document("people")
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(content)


def _names_of(m, nids):
    out = []
    for nid in nids:
        doc, pre = m.store.node(nid)
        for child in doc.children(pre):
            if doc.name_of(child) == "name":
                out.append(doc.string_value(child))
    return sorted(out)


class TestCacheHits:
    def test_repeat_query_hits_cache(self):
        m = _manager()
        first = query(m, Q)
        for _ in range(5):
            assert query(m, Q) == first
        counters = _counters(m)
        assert counters["query.plan_cache.misses"] == 1
        assert counters["query.plan_cache.hits"] == 5

    def test_modes_are_cached_separately(self):
        m = _manager()
        query(m, Q, use_indexes=True)
        query(m, Q, use_indexes="auto")
        query(m, Q, use_indexes=False)
        assert _counters(m)["query.plan_cache.misses"] == 3

    def test_cache_is_bounded(self):
        from repro.query.planner import PLAN_CACHE_SIZE

        m = _manager()
        for i in range(PLAN_CACHE_SIZE + 50):
            query(m, f"//p[.//age = {i}]")
        assert len(m._plan_cache) <= PLAN_CACHE_SIZE


class TestCacheInvalidation:
    def test_update_text_invalidates(self):
        m = _manager()
        assert _names_of(m, query(m, Q)) == ["Arthur"]
        m.update_text(_text_nid(m, "7"), "42")
        assert _names_of(m, query(m, Q)) == ["Arthur", "Ford"]
        counters = _counters(m)
        assert counters["query.plan_cache.misses"] == 2

    def test_insert_xml_invalidates(self):
        m = _manager()
        assert len(query(m, Q)) == 1
        doc = m.store.document("people")
        people_elem = next(iter(doc.children(0)))
        m.insert_xml(doc.nid[people_elem],
                     "<p><age>42</age><name>Zaphod</name></p>")
        assert _names_of(m, query(m, Q)) == ["Arthur", "Zaphod"]

    def test_delete_subtree_invalidates(self):
        m = _manager()
        hits = query(m, Q)
        assert len(hits) == 1
        m.delete_subtree(hits[0])
        assert query(m, Q) == []

    def test_unload_invalidates(self):
        m = _manager()
        assert query(m, Q)
        m.unload("people")
        m.load("people", "<people><p><age>1</age></p></people>")
        assert query(m, Q) == []

    def test_epoch_advances_per_mutation(self):
        m = _manager()
        start = m.epoch
        m.update_text(_text_nid(m, "Ford"), "Prefect")
        owner = query(m, Q)[0]  # a <p> element
        m.insert_attribute(owner, "id", "x")
        assert m.epoch >= start + 2


class TestEpochKeyedEntries:
    """Snapshot readers and the plan cache (docs/concurrency.md).

    Cached plans are keyed by the epoch they were priced at.  A reader
    pinned at an old epoch must never be served (or poison the cache
    with) a plan priced against a newer epoch's statistics — and vice
    versa.
    """

    def _mutate_in_thread(self, m, nid, value):
        import threading

        t = threading.Thread(target=lambda: m.update_text(nid, value))
        t.start()
        t.join(timeout=60)
        assert not t.is_alive()

    def test_pinned_view_never_sees_newer_epoch_plan(self):
        m = _manager()
        m.enable_concurrency()
        with m.read_view() as view:
            assert _names_of(m, query(m, Q)) == ["Arthur"]
            pinned = view.epoch
            # A concurrent writer publishes a newer epoch.
            self._mutate_in_thread(m, _text_nid(m, "7"), "42")
            assert m.epoch > pinned
            # Unpinned clients re-plan at the new epoch and see Ford...
            t = []
            import threading

            worker = threading.Thread(
                target=lambda: t.append(query(m, Q))
            )
            worker.start()
            worker.join(timeout=60)
            assert _names_of(m, t[0]) == ["Arthur", "Ford"]
            cached_epoch, _plan = m._plan_cache[(Q, "people", True)]
            assert cached_epoch == m.epoch
            # ...but this view still answers — and re-prices — at its
            # pinned epoch: the newer entry is a miss, not a stale hit.
            misses = _counters(m)["query.plan_cache.misses"]
            assert _names_of(m, query(m, Q)) == ["Arthur"]
            assert _counters(m)["query.plan_cache.misses"] == misses + 1
            cached_epoch, _plan = m._plan_cache[(Q, "people", True)]
            assert cached_epoch == pinned

    def test_view_statistics_are_pinned(self):
        m = _manager()
        m.enable_concurrency()
        with m.read_view():
            before = m.statistics("string").entries
            self._mutate_in_thread(m, _text_nid(m, "Ford"), "Arthur")
            # The live distribution changed; the view's has not (and is
            # memoized per view, so repeated pricing is stable).
            assert m.statistics("string").entries == before
        assert m.statistics("string").entries == before

    def test_view_epoch_plan_does_not_poison_live_cache(self):
        m = _manager()
        m.enable_concurrency()
        self._mutate_in_thread(m, _text_nid(m, "99"), "42")
        live = m.epoch
        with m.read_view() as view:
            assert view.epoch == live
            query(m, Q)
        # The entry priced inside the view is valid for live clients
        # only because the epochs coincide; after one more mutation it
        # must be re-priced, not served.
        self._mutate_in_thread(m, _text_nid(m, "7"), "42")
        misses = _counters(m)["query.plan_cache.misses"]
        assert _names_of(m, query(m, Q)) == ["Arthur", "Ford", "Marvin"]
        assert _counters(m)["query.plan_cache.misses"] == misses + 1


class TestDatabaseFacade:
    def test_metrics_expose_cache_counters(self, tmp_path):
        from repro.database import Database

        with Database(str(tmp_path / "db")) as db:
            db.load("people", XML)
            db.query(Q)
            db.query(Q)
            counters = db.metrics()["counters"]
            assert counters["query.plan_cache.hits"] >= 1
            assert counters["wal.truncates"] >= 1
