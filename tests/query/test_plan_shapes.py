"""Structured plans: operator trees, cost annotations, explain reports."""

from repro.core import IndexManager
from repro.query import (
    AncestorWalk,
    FullScan,
    IndexLookup,
    StructuralVerify,
    Union,
    build_plan,
    explain,
    parse_query,
    query,
)

XML = (
    "<people>"
    + "".join(
        f"<p><age>{i % 50}</age><weight>{i}</weight></p>" for i in range(100)
    )
    + "</people>"
)


def _manager():
    m = IndexManager(typed=("double",))
    m.load("people", XML)
    return m


class TestBuildPlan:
    def test_index_plan_shape(self):
        m = _manager()
        doc = m.store.document("people")
        plan = build_plan(m, doc, parse_query("//p[.//age = 7]").path)
        assert isinstance(plan, StructuralVerify)
        walk = plan.children[0]
        assert isinstance(walk, AncestorWalk)
        lookup = walk.children[0]
        assert isinstance(lookup, IndexLookup)
        assert lookup.kind == "double"
        assert lookup.estimated_rows > 0
        # Pre-order numbering is stable and complete.
        assert [node.op_id for node in plan.walk()] == [0, 1, 2]

    def test_or_produces_union(self):
        m = _manager()
        doc = m.store.document("people")
        plan = build_plan(
            m, doc, parse_query("//p[.//age = 7 or .//age = 9]").path
        )
        assert isinstance(plan, StructuralVerify)
        assert isinstance(plan.children[0], Union)
        assert len(plan.children[0].children) == 2

    def test_forced_scan(self):
        m = _manager()
        doc = m.store.document("people")
        plan = build_plan(
            m, doc, parse_query("//p[.//age = 7]").path, use_indexes=False
        )
        assert isinstance(plan, FullScan)
        assert plan.reason == "forced"
        assert plan.estimated_rows == float(len(doc))

    def test_auto_scan_reason_mentions_cost(self):
        m = _manager()
        doc = m.store.document("people")
        plan = build_plan(
            m, doc, parse_query("//p[.//age >= 0]").path, use_indexes="auto"
        )
        assert isinstance(plan, FullScan)
        assert plan.reason.startswith("cost")

    def test_positional_predicate_scans(self):
        m = _manager()
        doc = m.store.document("people")
        plan = build_plan(m, doc, parse_query("//p[1]").path)
        assert isinstance(plan, FullScan)
        assert plan.reason == "positional predicate"


class TestExplain:
    def test_summary_is_string_compatible(self):
        m = _manager()
        result = explain(m, "//p[.//age = 7]")
        assert result == "index(double)"
        assert result.startswith("index")
        assert isinstance(result, str)

    def test_reports_carry_plan_trees(self):
        m = _manager()
        result = explain(m, "//p[.//age = 7]")
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report.document == "people"
        assert "IndexLookup[double]" in report.render()
        assert "est rows" in report.render()

    def test_execute_attaches_actuals(self):
        m = _manager()
        result = explain(m, "//p[.//age = 7]", execute=True)
        report = result.reports[0]
        assert report.actuals is not None
        root_actual = report.actuals[0]
        assert root_actual["rows"] == len(query(m, "//p[.//age = 7]"))
        assert root_actual["seconds"] >= 0.0
        assert "actual rows" in report.render()

    def test_to_dict_round_trips_to_json(self):
        import json

        m = _manager()
        result = explain(m, "//p[.//age = 7]", execute=True)
        data = json.loads(json.dumps(result.to_dict()))
        assert data["summary"] == "index(double)"
        assert data["documents"][0]["plan"]["op"] == "StructuralVerify"

    def test_no_documents(self):
        m = IndexManager(typed=("double",))
        result = explain(m, "//p[.//age = 7]")
        assert result.reports == []
        assert "no documents" in result.tree()
