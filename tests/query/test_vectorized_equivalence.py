"""Differential suite: batch executor vs. scalar executor vs. naive.

The vectorized executor must be bit-identical to the scalar one on
every workload query, in every execution mode, and its supporting
caches (contains/regex memo, lazy nid map, plan-proved predicate
elision) must never leak stale results across mutations.
"""

import os
from unittest import mock

import pytest

from repro.core import IndexManager
from repro.query import parse_query, query
from repro.query.executor import _scalar_forced
from repro.query.planner import build_plan
from repro.query.plan import (
    AncestorWalk,
    IndexLookup,
    Intersect,
    StructuralVerify,
    Union as PlanUnion,
)
from repro.query.vexecutor import _residual_predicates
from repro.workloads import DATASETS, QUERY_SETS

#: Small generator scale: a few thousand nodes per corpus keeps the
#: sweep in tier-1 time while exercising every query shape.
SCALE = 1.0


@pytest.fixture(scope="module")
def managers():
    loaded = {}
    for name in ("XMark1", "DBLP", "PSD", "Wiki", "EPAGeo"):
        manager = IndexManager(
            string=True, typed=("double",), substring=True
        )
        manager.load(name, DATASETS[name].build(SCALE))
        loaded[name] = manager
    return loaded


def _workload_cases():
    for dataset in ("XMark1", "DBLP", "PSD", "Wiki", "EPAGeo"):
        for query_name, text in QUERY_SETS[dataset]:
            yield pytest.param(
                dataset, text, id=f"{dataset}-{query_name}"
            )


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("dataset,text", _workload_cases())
    def test_three_way_agreement(self, managers, dataset, text):
        manager = managers[dataset]
        vectorized = query(manager, text, vectorized=True)
        scalar = query(manager, text, vectorized=False)
        naive = query(manager, text, use_indexes=False)
        assert vectorized == scalar == naive

    @pytest.mark.parametrize("use_indexes", [True, False, "auto"])
    def test_modes_agree(self, managers, use_indexes):
        manager = managers["DBLP"]
        text = "//inproceedings[year >= 2000 and year < 2005]"
        assert query(
            manager, text, use_indexes=use_indexes, vectorized=True
        ) == query(manager, text, use_indexes=use_indexes, vectorized=False)


class TestScalarEscapeHatch:
    def test_env_forces_scalar(self, managers):
        with mock.patch.dict(os.environ, {"REPRO_SCALAR_EXEC": "1"}):
            assert _scalar_forced()
        with mock.patch.dict(os.environ, {"REPRO_SCALAR_EXEC": "0"}):
            assert not _scalar_forced()
        assert _scalar_forced() is (
            os.environ.get("REPRO_SCALAR_EXEC", "").lower()
            in ("1", "true", "yes")
        )

    def test_env_routes_execution(self, managers):
        manager = managers["XMark1"]
        text = "//item[price < 10]"
        expected = query(manager, text, vectorized=False)
        before = manager.metrics.counter("query.exec.vectorized_ops").value
        with mock.patch.dict(os.environ, {"REPRO_SCALAR_EXEC": "1"}):
            assert query(manager, text) == expected
        after = manager.metrics.counter("query.exec.vectorized_ops").value
        assert after == before  # no batch operators ran


class TestPlanProvedPredicates:
    """The residual re-check shrinks exactly as the plan proves parts
    of the predicate, and never drops an unproven conjunct."""

    def _verify_node(self, manager, text):
        parsed = parse_query(text)
        doc = next(iter(manager.store.documents.values()))
        plan = build_plan(manager, doc, parsed.path, True)
        assert isinstance(plan, StructuralVerify)
        return plan

    def test_single_driver_fully_proved(self, managers):
        node = self._verify_node(managers["XMark1"], "//item[price < 10]")
        assert _residual_predicates(node) == []

    def test_fused_range_window(self, managers):
        node = self._verify_node(
            managers["DBLP"],
            "//inproceedings[year >= 2000 and year < 2005]",
        )
        fused = node.children[0]
        # Exact decomposition: window ∪ (walk(¬high) ∩ walk(¬low)) —
        # XPath conjuncts are existential, so the straddling case
        # (one year past the window, another below it) needs the
        # complement branch.
        assert isinstance(fused, PlanUnion)
        window, complement = fused.children
        assert isinstance(window, AncestorWalk)
        assert isinstance(complement, Intersect)
        lookup = window.children[0]
        assert isinstance(lookup, IndexLookup)
        # Both conjuncts fused into one bounded window scan...
        assert lookup.high_op == "<" and lookup.high_value == 2005.0
        assert lookup.op_symbol == ">=" and lookup.value == 2000.0
        assert len(lookup.proves) == 2
        # ...and every branch proves both, so no scalar re-check
        # remains.
        assert _residual_predicates(node) == []

    def test_partially_covered_conjunction_keeps_residual(self, managers):
        manager = managers["XMark1"]
        text = '//item[quantity = 5 and payment = "Cash"]'
        node = self._verify_node(manager, text)
        residual = _residual_predicates(node)
        # The uncovered string-inequality conjunct must be re-checked.
        predicate = node.predicate
        assert all(part in predicate.children for part in residual)
        assert query(manager, text, vectorized=True) == query(
            manager, text, use_indexes=False
        )


class TestContainsCache:
    def test_cache_hits_and_epoch_invalidation(self):
        manager = IndexManager(
            string=True, typed=("double",), substring=True
        )
        manager.load(
            "d",
            "<r><a>hay needle stack</a><b>plain</b>"
            "<c x='needle'>t</c></r>",
        )
        first = sorted(manager.lookup_contains("needle"))
        hits_before = manager.metrics.counter(
            "query.text_lookup.cache_hits"
        ).value
        assert sorted(manager.lookup_contains("needle")) == first
        assert (
            manager.metrics.counter("query.text_lookup.cache_hits").value
            == hits_before + 1
        )
        # A text update bumps the epoch: the cache entry must die.
        victim = first[0]
        manager.update_texts([(victim, "gone")])
        stale = sorted(manager.lookup_contains("needle"))
        assert victim not in stale
        assert len(stale) == len(first) - 1

    def test_regex_cache_matches_scalar(self):
        manager = IndexManager(
            string=True, typed=("double",), substring=True
        )
        manager.load("d", "<r><a>abc123</a><b>xyz</b><c>12</c></r>")
        expected = sorted(manager.lookup_regex(r"\d{2,}"))
        assert sorted(manager.lookup_regex(r"\d{2,}")) == expected


class TestLazyNidMap:
    def test_rebuilds_coalesce(self):
        manager = IndexManager(string=True, typed=("double",))
        manager.load("d", "<r><a>1</a><b>2</b><c>3</c></r>")
        doc = manager.store.document("d")
        rebuilds = doc.nid_map_rebuilds
        for _ in range(5):
            doc.rebuild_nid_map()  # marks dirty, does no work
        assert doc.nid_map_rebuilds == rebuilds
        doc.pre_of(doc.nid[1])  # first consumer pays one rebuild
        assert doc.nid_map_rebuilds == rebuilds + 1
        doc.pre_of(doc.nid[2])
        assert doc.nid_map_rebuilds == rebuilds + 1
