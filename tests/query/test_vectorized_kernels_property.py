"""Randomized differential tests for the batch structural kernels.

Generates seeded adversarial documents — deep single-child chains,
wide flat fanouts, mixed element/attribute/text shapes with heavy tag
reuse — and checks the numpy kernels against the scalar recursions
they replace, node for node:

* ``ancestor_walk``  ≡ union of ``_context_starts`` over the hit set;
* ``structural_verify`` ≡ ``_matches_absolute`` per candidate;
* full ``query()``  ≡ scalar executor ≡ ``evaluate_naive``.

Tag reuse is the adversarial ingredient: the same name appearing at
many depths produces overlapping containment intervals, which is
exactly what the prefix-maximum interval stabbing must get right.
"""

import random

import numpy as np
import pytest

from repro.core import IndexManager
from repro.query import evaluate_naive, parse_query, query
from repro.query.ast import (
    AttributeTest,
    NameTest,
    Step,
    TextTest,
    WildcardTest,
)
from repro.query.executor import _context_starts, _matches_absolute
from repro.query.kernels import ancestor_walk, structural_verify

TAGS = ("a", "b", "c", "d")
ATTRS = ("x", "y")


def _random_xml(rng: random.Random, budget: int) -> str:
    """One adversarial document: recursive, tag-poor, mixed-kind."""

    def element(depth: int, budget: int) -> tuple[str, int]:
        tag = rng.choice(TAGS)
        attrs = ""
        if rng.random() < 0.3:
            attrs = f' {rng.choice(ATTRS)}="{rng.randint(0, 9)}"'
        children = []
        budget -= 1
        # Bias the shape: long chains at low fanout rolls, wide
        # fanouts otherwise — both extremes stress the interval maths.
        fanout = rng.choice((1, 1, 1, 2, 2, 3, 8))
        for _ in range(fanout):
            if budget <= 0:
                break
            if rng.random() < 0.35:
                children.append(str(rng.randint(0, 99)))
            else:
                child, budget = element(depth + 1, budget)
                children.append(child)
        return f"<{tag}{attrs}>{''.join(children)}</{tag}>", budget

    body, _ = element(0, budget)
    return f"<root>{body}</root>"


def _random_steps(rng: random.Random) -> tuple[Step, ...]:
    steps = []
    for idx in range(rng.randint(1, 4)):
        axis = "descendant" if idx == 0 or rng.random() < 0.5 else "child"
        roll = rng.random()
        if roll < 0.6:
            test = NameTest(rng.choice(TAGS + ("root", "zzz")))
        elif roll < 0.75:
            test = WildcardTest()
        elif roll < 0.9:
            test = AttributeTest(rng.choice(ATTRS + ("*",)))
        else:
            test = TextTest()
        steps.append(Step(axis=axis, test=test))
    return tuple(steps)


def _load(rng: random.Random, budget: int = 60):
    manager = IndexManager(string=True, typed=("double",))
    manager.load("doc", _random_xml(rng, budget))
    doc = manager.store.document("doc")
    return manager, doc, doc.columns()


@pytest.mark.parametrize("seed", range(25))
def test_ancestor_walk_matches_scalar_recursion(seed):
    rng = random.Random(seed)
    manager, doc, cols = _load(rng)
    all_pres = np.arange(len(doc), dtype=np.int64)
    for _ in range(8):
        steps = _random_steps(rng)
        hits = np.sort(
            rng.sample(range(len(doc)), rng.randint(0, min(12, len(doc))))
        ).astype(np.int64) if len(doc) else all_pres[:0]
        expected = set()
        for pre in hits.tolist():
            expected |= _context_starts(doc, pre, steps, len(steps) - 1)
        got = ancestor_walk(doc, cols, hits, steps)
        assert got.tolist() == sorted(expected), (seed, steps)


@pytest.mark.parametrize("seed", range(25))
def test_structural_verify_matches_scalar_recursion(seed):
    rng = random.Random(1000 + seed)
    manager, doc, cols = _load(rng)
    for _ in range(8):
        steps = _random_steps(rng)
        candidates = np.sort(
            rng.sample(range(len(doc)), rng.randint(0, min(15, len(doc))))
        ).astype(np.int64)
        expected = [
            pre
            for pre in candidates.tolist()
            if _matches_absolute(doc, pre, steps, len(steps) - 1, None, {})
        ]
        got = structural_verify(doc, cols, candidates, steps, None)
        assert got.tolist() == expected, (seed, steps)


#: Query templates exercising index routes over the adversarial docs.
QUERY_TEMPLATES = (
    "//{t}[{u} = {n}]",
    "//{t}[{u} > {n}]",
    "//{t}[{u} >= {n} and {u} < {m}]",
    "//{t}[@{a} = '{n}']",
    "//{t}[.//{u} = {n}]",
    "//{t}/{u}",
    "//{t}[{u} = {n} or @{a} = '{m}']",
)


@pytest.mark.parametrize("seed", range(15))
def test_full_query_equivalence_on_random_docs(seed):
    rng = random.Random(2000 + seed)
    manager, doc, cols = _load(rng, budget=120)
    for template in QUERY_TEMPLATES:
        text = template.format(
            t=rng.choice(TAGS),
            u=rng.choice(TAGS),
            a=rng.choice(ATTRS),
            n=rng.randint(0, 99),
            m=rng.randint(0, 99),
        )
        vectorized = query(manager, text, vectorized=True)
        scalar = query(manager, text, vectorized=False)
        parsed = parse_query(text)
        naive = [doc.nid[pre] for pre in evaluate_naive(doc, parsed.path)]
        assert vectorized == scalar == naive, (seed, text)
