"""Planner routing through arbitrary configured typed indices.

The planner must not assume a ``double`` index exists: numeric
comparisons route through any configured index whose plugin implements
xs:double, temporal comparisons (quoted literals with an order
operator) route through an index of the literal's detected type, and
anything uncovered falls back to the naive scan with identical results.
"""

from repro.core import IndexManager
from repro.query import evaluate_naive, explain, parse_query, query

EVENTS = (
    "<log>"
    "<event><at>2002-05-06T10:00:00</at><code>7</code></event>"
    "<event><at>2002-05-06T12:30:00</at><code>42</code></event>"
    "<event><at>2003-01-01T00:00:00</at><code>42</code></event>"
    "</log>"
)


def _naive(manager, text):
    doc = manager.store.document("log")
    return [doc.nid[p] for p in evaluate_naive(doc, parse_query(text).path)]


class TestDateTimeOnlyManager:
    """A manager configured with *only* a dateTime index."""

    def _manager(self):
        m = IndexManager(typed=("dateTime",))
        m.load("log", EVENTS)
        return m

    def test_temporal_range_uses_datetime_index(self):
        m = self._manager()
        text = '//event[.//at >= "2002-05-06T11:00:00"]'
        assert explain(m, text) == "index(dateTime)"
        for mode in (True, False, "auto"):
            assert query(m, text, use_indexes=mode) == _naive(m, text)
        assert len(query(m, text)) == 2

    def test_all_order_ops(self):
        m = self._manager()
        for op in ("<", "<=", ">", ">="):
            text = f'//event[.//at {op} "2002-05-06T12:30:00"]'
            assert explain(m, text).startswith("index")
            assert query(m, text) == _naive(m, text), op

    def test_numeric_comparison_falls_back_to_scan(self):
        """No double-domain index configured: numeric predicates scan
        (a dateTime index cannot answer xs:double casts)."""
        m = self._manager()
        text = "//event[.//code = 42]"
        assert explain(m, text) == "scan"
        assert query(m, text) == _naive(m, text)
        assert len(query(m, text)) == 2

    def test_temporal_equality_stays_on_string_index(self):
        """``=`` against a quoted literal keeps string-equality
        semantics and the string index."""
        m = self._manager()
        text = '//event[.//at = "2003-01-01T00:00:00"]'
        assert explain(m, text) == "index(string)"
        assert query(m, text) == _naive(m, text)


class TestMixedManagers:
    def test_numeric_routes_through_double_index(self):
        m = IndexManager(typed=("dateTime", "double"))
        m.load("log", EVENTS)
        text = "//event[.//code = 42]"
        assert explain(m, text) == "index(double)"
        assert query(m, text) == _naive(m, text)

    def test_date_literal_picks_date_index(self):
        m = IndexManager(typed=("date",))
        m.load(
            "log",
            "<log><d>2001-01-01</d><d>2002-06-06</d><d>2003-12-31</d></log>",
        )
        text = '//d[. > "2002-01-01"]'
        doc = m.store.document("log")
        naive = [
            doc.nid[p] for p in evaluate_naive(doc, parse_query(text).path)
        ]
        assert query(m, text) == naive
        assert len(naive) == 2

    def test_temporal_literal_without_matching_index_scans(self):
        m = IndexManager(typed=("double",))
        m.load("log", EVENTS)
        text = '//event[.//at >= "2002-05-06T11:00:00"]'
        assert explain(m, text) == "scan"
        assert query(m, text) == _naive(m, text)
        assert len(query(m, text)) == 2
