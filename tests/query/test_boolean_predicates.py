"""Tests for and/or predicate expressions and their index plans."""

import pytest

from repro.core import IndexManager
from repro.query import explain, parse_query, query
from repro.query.ast import BooleanExpr

ITEMS = (
    "<items>"
    '<item region="eu"><name>towel</name><price>10.5</price><stock>3</stock></item>'
    '<item region="us"><name>guide</name><price>42</price><stock>0</stock></item>'
    '<item region="eu"><name>fish</name><price>7</price><stock>12</stock></item>'
    '<item region="us"><name>towel</name><price>99</price><stock>5</stock></item>'
    "</items>"
)


@pytest.fixture(scope="module")
def manager():
    m = IndexManager(typed=("double",), substring=True)
    m.load("items", ITEMS)
    return m


class TestParsing:
    def test_and(self):
        parsed = parse_query('//item[price = 42 and stock = 0]')
        predicate = parsed.path.steps[0].predicates[0]
        assert isinstance(predicate, BooleanExpr)
        assert predicate.op == "and" and len(predicate.children) == 2

    def test_or(self):
        parsed = parse_query('//item[price = 42 or price = 7]')
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.op == "or"

    def test_precedence_and_binds_tighter(self):
        parsed = parse_query("//item[a = 1 or b = 2 and c = 3]")
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.op == "or"
        assert isinstance(predicate.children[1], BooleanExpr)
        assert predicate.children[1].op == "and"

    def test_parentheses(self):
        parsed = parse_query("//item[(a = 1 or b = 2) and c = 3]")
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate.op == "and"
        assert isinstance(predicate.children[0], BooleanExpr)
        assert predicate.children[0].op == "or"

    def test_keyword_needs_boundary(self):
        # "android" is a name, not "and" followed by "roid".
        parsed = parse_query("//item[android = 1]")
        predicate = parsed.path.steps[0].predicates[0]
        assert not isinstance(predicate, BooleanExpr)


QUERIES = [
    ('//item[price = 42 and stock = 0]', 1),
    ('//item[price = 42 and stock = 99]', 0),
    ('//item[price = 42 or price = 7]', 2),
    ('//item[name = "towel" and price > 50]', 1),
    ('//item[name = "towel" or name = "fish"]', 3),
    ('//item[price > 5 and price < 11]', 2),
    ('//item[(price = 42 or price = 7) and @region = "eu"]', 1),
    ('//item[contains(name/text(), "towel") and price < 20]', 1),
    ('//item[stock = 0 or contains(name/text(), "fish")]', 2),
]


class TestEvaluation:
    @pytest.mark.parametrize("text,expected", QUERIES)
    def test_indexed_equals_naive(self, manager, text, expected):
        indexed = query(manager, text)
        naive = query(manager, text, use_indexes=False)
        assert indexed == naive, text
        assert len(indexed) == expected, text


class TestPlans:
    def test_and_uses_one_driver(self, manager):
        assert explain(manager, "//item[price = 42 and stock = 0]") == (
            "index(double)"
        )

    def test_and_picks_the_indexable_conjunct(self, manager):
        # != is not indexable; the second conjunct drives.
        assert explain(manager, "//item[price != 42 and stock = 0]") == (
            "index(double)"
        )

    def test_or_requires_all_branches(self, manager):
        assert explain(manager, "//item[price = 42 or stock != 0]") == "scan"
        assert explain(
            manager, '//item[price = 42 or name = "fish"]'
        ) == "index(double+string)"

    def test_mixed_kind_drivers(self, manager):
        plan = explain(
            manager,
            '//item[stock = 0 or contains(name/text(), "fish")]',
        )
        assert plan == "index(double+substring)"

    def test_all_scan(self, manager):
        assert explain(manager, "//item[a != 1 and b != 2]") == "scan"
