"""Tests for positional predicates ([N], [last()])."""

import pytest

from repro.core import IndexManager
from repro.errors import QuerySyntaxError
from repro.query import parse_query, query
from repro.query.ast import PositionPredicate

DOC = (
    "<library>"
    "<shelf><book>A</book><book>B</book><book>C</book></shelf>"
    "<shelf><book>D</book><book>E</book></shelf>"
    "</library>"
)


@pytest.fixture(scope="module")
def manager():
    m = IndexManager(typed=())
    m.load("lib", DOC)
    return m


def values(manager, nids):
    out = []
    for nid in nids:
        doc, pre = manager.store.node(nid)
        out.append(doc.string_value(pre))
    return out


class TestParsing:
    def test_number(self):
        parsed = parse_query("//book[2]")
        predicate = parsed.path.steps[0].predicates[0]
        assert predicate == PositionPredicate(2)

    def test_last(self):
        parsed = parse_query("//book[last()]")
        assert parsed.path.steps[0].predicates[0] == PositionPredicate(None)

    def test_zero_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("//book[0]")

    def test_position_then_value_predicate(self):
        parsed = parse_query('//shelf[1][book = "A"]')
        predicates = parsed.path.steps[0].predicates
        assert isinstance(predicates[0], PositionPredicate)


class TestEvaluation:
    def test_first_per_context(self, manager):
        """[1] applies per shelf, not globally."""
        hits = query(manager, "/library/shelf/book[1]")
        assert values(manager, hits) == ["A", "D"]

    def test_second(self, manager):
        hits = query(manager, "/library/shelf/book[2]")
        assert values(manager, hits) == ["B", "E"]

    def test_out_of_range(self, manager):
        assert query(manager, "/library/shelf/book[7]") == []

    def test_last_per_context(self, manager):
        hits = query(manager, "/library/shelf/book[last()]")
        assert values(manager, hits) == ["C", "E"]

    def test_positional_on_outer_step(self, manager):
        hits = query(manager, "/library/shelf[2]/book")
        assert values(manager, hits) == ["D", "E"]

    def test_descendant_axis_position_is_global_per_context(self, manager):
        # From the single <library> context, //book candidates are in
        # document order, so [1] is the very first book.
        hits = query(manager, "/library//book[1]")
        assert values(manager, hits) == ["A"]

    def test_combined_with_value_predicate(self, manager):
        hits = query(manager, '/library/shelf[book = "D"]/book[last()]')
        assert values(manager, hits) == ["E"]

    def test_value_then_position(self, manager):
        # Left-to-right: filter by value first, then take the first of
        # the survivors.
        m = IndexManager(typed=("double",))
        m.load("nums", "<r><v>1</v><v>5</v><v>7</v><v>5</v></r>")
        hits = query(m, "//v[. = 5][1]", use_indexes=False)
        assert len(hits) == 1
        doc = m.store.document("nums")
        assert doc.pre_of(hits[0]) == min(
            p for p in range(len(doc))
            if doc.kind[p] == 1 and doc.string_value(p) == "5"
        )

    def test_indexed_path_falls_back_cleanly(self, manager):
        # A positional predicate forces the scan plan; results agree.
        m = IndexManager(typed=("double",))
        m.load("nums", "<r><v>5</v><v>5</v></r>")
        text = "//v[. = 5][1]"
        assert query(m, text) == query(m, text, use_indexes=False)
