"""Unit tests for the benchmark drivers (tiny scales)."""

import pytest

from repro.bench import concurrent, figure9, figure10, figure11, parallel, \
    table1
from repro.bench.harness import format_bytes, measure_seconds, render_table

SCALE = 0.02


class TestHarness:
    def test_measure_seconds(self):
        seconds, result = measure_seconds(lambda: 42, repeats=2)
        assert result == 42
        assert seconds >= 0.0

    def test_render_table_alignment(self):
        table = render_table(["a", "long"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines}) == 1  # aligned

    @pytest.mark.parametrize(
        "count,expected",
        [(10, "10.0 B"), (2048, "2.0 KB"), (3 * 1024 * 1024, "3.0 MB")],
    )
    def test_format_bytes(self, count, expected):
        assert format_bytes(count) == expected


class TestTable1Driver:
    def test_run_and_format(self):
        stats = table1.run(scale=SCALE)
        assert set(stats) == {
            "XMark1", "XMark2", "XMark4", "XMark8",
            "EPAGeo", "DBLP", "PSD", "Wiki",
        }
        report = table1.format_report(stats)
        assert "XMark1" in report and "Wiki" in report
        # Paper values shown in parentheses.
        assert "(64%)" in report


class TestFigure9Driver:
    def test_measure_dataset(self):
        from repro.workloads import dataset

        result = figure9.measure_dataset(
            "XMark1", dataset("XMark1").build(SCALE), repeats=1
        )
        assert result.nodes > 0
        assert result.shred_seconds > 0
        assert 0 < result.string_bytes < result.db_bytes
        assert 0 < result.double_bytes < result.string_bytes
        assert result.string_overhead > 0
        assert 0 < result.string_storage_fraction < 1

    def test_reports_mention_paper_values(self):
        from repro.workloads import dataset

        results = [
            figure9.measure_dataset(
                name, dataset(name).build(SCALE), repeats=1
            )
            for name in ("XMark1", "Wiki")
        ]
        time_report = figure9.format_time_report(results)
        storage_report = figure9.format_storage_report(results)
        assert "ovh (paper)" in time_report
        assert "String/DB (paper)" in storage_report


class TestFigure10Driver:
    def test_measure_series(self):
        from repro.workloads import dataset

        series = figure10.measure_dataset(
            "XMark1",
            dataset("XMark1").build(SCALE),
            "string",
            batches=(1, 10),
            repeats=1,
        )
        assert set(series.timings) == {1, 10}
        assert all(t >= 0 for t in series.timings.values())
        report = figure10.format_report([series])
        assert "1 upd (ms)" in report

    def test_double_kind(self):
        from repro.workloads import dataset

        series = figure10.measure_dataset(
            "XMark1",
            dataset("XMark1").build(SCALE),
            "double",
            batches=(1,),
            repeats=1,
        )
        assert series.index_kind == "double"


class TestFigure11Driver:
    def test_histogram_totals(self):
        results = figure11.run(scale=SCALE)
        for result in results:
            total = sum(
                size * count for size, count in result.histogram.items()
            )
            assert total == result.distinct_strings
            assert 0.0 <= result.collision_fraction <= 1.0
        report = figure11.format_report(results)
        assert "Collide%" in report

    def test_wiki_has_tail(self):
        results = {r.name: r for r in figure11.run(scale=0.1)}
        assert results["Wiki"].max_group >= 2


class TestParallelDriver:
    def test_run_and_report(self, tmp_path):
        results = parallel.run(
            scale=SCALE, workers=(2,), backend="thread", repeats=1
        )
        assert {r.name for r in results} == {
            "XMark1", "XMark2", "XMark4", "XMark8",
            "EPAGeo", "DBLP", "PSD", "Wiki",
        }
        for result in results:
            assert result.serial_seconds > 0
            assert result.parallel_seconds[2] > 0
            assert result.speedup(2) > 0
        report = parallel.format_report(results)
        assert "2w ms (x)" in report and "Wiki" in report
        path = tmp_path / "parallel.json"
        payload = parallel.write_json(
            results, path=str(path), backend="thread", scale=SCALE
        )
        assert path.exists()
        assert payload["bench"] == "parallel_build"
        assert payload["cores_available"] >= 1
        assert payload["workers"] == [2]
        assert payload["aggregate"]["speedup"]["2"] > 0


class TestConcurrentDriver:
    def test_run_and_report(self, tmp_path):
        results = concurrent.run(
            writer_counts=(1, 2), updates_per_writer=15
        )
        assert {(r.writers, r.group_commit) for r in results} == {
            (1, False), (2, False), (1, True), (2, True),
        }
        for result in results:
            assert result.commits == result.writers * 15
            assert result.commits_per_second > 0
            assert result.commit_p99_us >= result.commit_p50_us >= 0
            if not result.group_commit:
                assert result.batches == 0
        report = concurrent.format_report(results)
        assert "commits/s" in report and "batch occ" in report
        path = tmp_path / "serve.json"
        payload = concurrent.write_json(results, path=str(path))
        assert path.exists()
        assert payload["bench"] == "concurrent_serve"
        assert payload["aggregate"]["speedup_vs_baseline"] > 0
        baseline = payload["aggregate"]["baseline_1_writer_fsync_per_commit"]
        assert baseline > 0


class TestAblationBaselines:
    def test_rehash_equals_combine(self):
        import random

        from repro.bench.ablations import rehash_update
        from repro.core import IndexManager, apply_text_updates
        from repro.workloads import dataset, random_text_updates

        xml = dataset("XMark1").build(SCALE)
        left = IndexManager(typed=())
        left.load("x", xml)
        right = IndexManager(typed=())
        right.load("x", xml)
        updates = random_text_updates(
            left.store.document("x"), 5, random.Random(3)
        )
        for manager in (left, right):
            for nid, text in updates:
                manager.store.update_text(nid, text)
        apply_text_updates(left.store, [n for n, _ in updates], left.indexes)
        rehash_update(right.store, right.string_index, [n for n, _ in updates])
        assert left.string_index.hash_of == right.string_index.hash_of

    def test_refsm_equals_sct(self):
        import random

        from repro.bench.ablations import refsm_update
        from repro.core import IndexManager, apply_text_updates
        from repro.workloads import dataset, random_text_updates

        xml = dataset("XMark1").build(SCALE)
        left = IndexManager(string=False, typed=("double",))
        left.load("x", xml)
        right = IndexManager(string=False, typed=("double",))
        right.load("x", xml)
        updates = random_text_updates(
            left.store.document("x"), 5, random.Random(4)
        )
        for manager in (left, right):
            for nid, text in updates:
                manager.store.update_text(nid, text)
        apply_text_updates(left.store, [n for n, _ in updates], left.indexes)
        refsm_update(
            right.store, right.typed_index("double"), [n for n, _ in updates]
        )
        assert (
            left.typed_index("double").fragment_of_node
            == right.typed_index("double").fragment_of_node
        )


class TestAsciiPlot:
    def test_empty(self):
        from repro.bench.plot import ascii_plot

        assert ascii_plot({}) == "(no data)"

    def test_markers_and_legend(self):
        from repro.bench.plot import ascii_plot

        out = ascii_plot({"a": [(1, 1), (2, 2)], "b": [(1, 2)]})
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_log_axes(self):
        from repro.bench.plot import ascii_plot

        out = ascii_plot(
            {"s": [(1, 1), (10, 100), (100, 10000)]},
            log_x=True,
            log_y=True,
        )
        assert "1e" in out

    def test_single_point(self):
        from repro.bench.plot import ascii_plot

        out = ascii_plot({"s": [(5, 5)]})
        assert "o" in out

    def test_figure_plot_helpers(self):
        from repro.workloads import dataset

        series = figure10.measure_dataset(
            "XMark1", dataset("XMark1").build(SCALE), "string",
            batches=(1, 10), repeats=1,
        )
        plot = figure10.format_plot([series], "string")
        assert "legend" in plot
        results = figure11.run(scale=SCALE)
        assert "legend" in figure11.format_plot(results)
