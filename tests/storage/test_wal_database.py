"""Tests for the WAL and the durable Database facade."""

import os

import pytest

from repro.database import Database
from repro.storage.wal import (
    DELETE_ATTRIBUTE,
    DELETE_SUBTREE,
    INSERT_ATTRIBUTE,
    TEXT_UPDATE,
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    replay_records,
)
from repro.xmldb import ELEM, TEXT

PERSON = (
    "<person>"
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<age>42</age>"
    "</person>"
)


def text_nid(db, content):
    doc = db.store.document("person")
    for pre in range(len(doc)):
        if doc.kind[pre] == TEXT and doc.text_of(pre) == content:
            return doc.nid[pre]
    raise AssertionError(content)


def elem_nid(db, name):
    doc = db.store.document("person")
    for pre in range(len(doc)):
        if doc.kind[pre] == ELEM and doc.name_of(pre) == name:
            return doc.nid[pre]
    raise AssertionError(name)


class TestWalFormat:
    def test_record_roundtrip(self):
        record = WalRecord(TEXT_UPDATE, 42, text="héllo", name="n", extra=7)
        decoded, offset = decode_record(encode_record(record), 0)
        assert decoded == record

    def test_append_and_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        log.append(WalRecord(DELETE_SUBTREE, 2))
        log.close()
        records = list(replay_records(path))
        assert [r.kind for r in records] == [TEXT_UPDATE, DELETE_SUBTREE]

    def test_truncate(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        log.truncate()
        log.close()
        assert list(replay_records(path)) == []

    def test_torn_tail_ignored(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path)
        log.append(WalRecord(TEXT_UPDATE, 1, text="complete"))
        log.close()
        with open(path, "ab") as fh:
            fh.write(encode_record(WalRecord(TEXT_UPDATE, 2, text="torn"))[:-3])
        records = list(replay_records(path))
        assert len(records) == 1
        assert records[0].text == "complete"

    def test_missing_file(self, tmp_path):
        assert list(replay_records(str(tmp_path / "absent.log"))) == []

    def test_bad_sync_mode(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(str(tmp_path / "w"), sync="wrong")

    def test_close_is_idempotent(self, tmp_path):
        """Regression: the drain path can close an already-closed log
        (e.g. after a failed checkpoint released it); the second close
        used to raise ``ValueError: I/O operation on closed file``."""
        log = WriteAheadLog(str(tmp_path / "wal.log"))
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        log.close()
        log.close()

    def test_append_many_forwards_exception_to_timer(self, tmp_path):
        """Regression: a crashed batch write used to be recorded as a
        successful append timing — ``finally`` called
        ``timer.__exit__(None, None, None)`` regardless of the raise."""
        from repro.obs.metrics import MetricsRegistry
        from repro.storage import faults

        seen: list[tuple] = []

        class RecordingTimer:
            def __init__(self, inner):
                self._inner = inner

            def time(self):
                inner_cm = self._inner.time()
                record = seen

                class _CM:
                    def __enter__(self):
                        inner_cm.__enter__()
                        return self

                    def __exit__(self, *exc):
                        record.append(exc)
                        return inner_cm.__exit__(*exc)

                return _CM()

        metrics = MetricsRegistry()
        real_timer = metrics.timer("wal.append")
        shim = RecordingTimer(real_timer)
        metrics.timer = lambda name: (
            shim if name == "wal.append" else real_timer
        )
        log = WriteAheadLog(str(tmp_path / "wal.log"), metrics=metrics)
        injector = faults.FaultInjector(faults.CrashPlan("wal.append"))
        with faults.injected(injector):
            with pytest.raises(faults.InjectedCrash):
                log.append_many([WalRecord(TEXT_UPDATE, 1, text="a")])
        assert len(seen) == 1
        exc_type, exc_value, _tb = seen[0]
        assert exc_type is faults.InjectedCrash, (
            "timer.__exit__ must receive the real exception triple"
        )
        assert isinstance(exc_value, faults.InjectedCrash)

    def test_position_and_tail_frames_ship_complete_frames(self, tmp_path):
        from repro.storage.wal import (
            WAL_HEADER_SIZE,
            decode_frames,
            tail_frames,
        )

        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path, epoch=3)
        assert log.position() == WAL_HEADER_SIZE
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        log.append(WalRecord(TEXT_UPDATE, 2, text="b"))
        blob, cursor = tail_frames(path, WAL_HEADER_SIZE)
        assert cursor == log.position()
        records = decode_frames(blob)
        assert [(r.nid, r.text, r.epoch) for r in records] == [
            (1, "a", 3), (2, "b", 3),
        ]
        # A torn (half-visible) trailing frame is trimmed, not shipped.
        with open(path, "ab") as fh:
            from repro.storage.wal import encode_frame
            fh.write(encode_frame(
                WalRecord(TEXT_UPDATE, 9, text="torn"), 3)[:-2])
        blob2, cursor2 = tail_frames(path, cursor)
        assert blob2 == b"" and cursor2 == cursor
        log.close()

    def test_decode_frames_rejects_damaged_blob(self, tmp_path):
        from repro.storage.format import FormatError
        from repro.storage.wal import decode_frames, encode_frame

        frame = bytearray(encode_frame(WalRecord(TEXT_UPDATE, 1, "x"), 0))
        frame[-1] ^= 0xFF
        with pytest.raises(FormatError, match="damaged"):
            decode_frames(bytes(frame))
        with pytest.raises(FormatError, match="damaged"):
            decode_frames(bytes(frame[:-3]))

    def test_truncate_records_last_incarnation(self, tmp_path):
        path = str(tmp_path / "wal.log")
        log = WriteAheadLog(path, epoch=1)
        log.append(WalRecord(TEXT_UPDATE, 1, text="a"))
        final = log.position()
        log.truncate(epoch=2)
        assert log.last_truncate == (1, final)
        assert log.epoch == 2
        log.close()


class TestDatabase:
    def test_create_load_query(self, tmp_path):
        with Database(str(tmp_path / "db")) as db:
            db.load("person", PERSON)
            assert db.query("//person[age = 42]")
            assert db.explain("//person[age = 42]") == "index(double)"

    def test_reopen_without_crash(self, tmp_path):
        path = str(tmp_path / "db")
        with Database(path) as db:
            db.load("person", PERSON)
            db.update_text(text_nid(db, "Dent"), "Prefect")
        with Database(path) as db:
            assert db.recovered_records == 0  # clean close checkpointed
            assert list(db.lookup_string("ArthurPrefect"))

    def test_crash_recovery_replays_wal(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.load("person", PERSON)
        db.update_text(text_nid(db, "Dent"), "Prefect")
        db.insert_xml(elem_nid(db, "person"), "<iq>160</iq>")
        # Simulate a crash: no close(), no checkpoint.
        del db
        recovered = Database(path)
        assert recovered.recovered_records == 2
        assert list(recovered.lookup_string("ArthurPrefect"))
        assert list(recovered.lookup_typed_equal("double", 160.0))
        recovered.manager.check_consistency()
        recovered.close()

    def test_structural_replay_recreates_nids(self, tmp_path):
        """A logged structural insert must replay to the same nids so
        later log records targeting them stay valid."""
        path = str(tmp_path / "db")
        db = Database(path)
        db.load("person", PERSON)
        change = db.insert_xml(elem_nid(db, "person"), "<iq>160</iq>")
        iq_text = next(
            nid
            for nid in change.added_nids
            if db.store.node(nid)[0].kind[db.store.node(nid)[1]] == TEXT
        )
        db.update_text(iq_text, "170")  # targets a replayed nid
        del db
        recovered = Database(path)
        assert recovered.recovered_records == 2
        assert list(recovered.lookup_typed_equal("double", 170.0))
        assert not list(recovered.lookup_typed_equal("double", 160.0))
        recovered.close()

    def test_exception_preserves_wal(self, tmp_path):
        path = str(tmp_path / "db")
        with pytest.raises(RuntimeError):
            with Database(path) as db:
                db.load("person", PERSON)
                db.update_text(text_nid(db, "Dent"), "Prefect")
                raise RuntimeError("boom")
        recovered = Database(path)
        assert recovered.recovered_records == 1
        assert list(recovered.lookup_string("ArthurPrefect"))
        recovered.close()

    def test_auto_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path, checkpoint_every=3)
        db.load("person", PERSON)
        nid = text_nid(db, "Dent")
        for i in range(4):
            db.update_text(nid, f"v{i}")
        # 3 updates triggered a checkpoint; at most 1 record pending.
        del db
        recovered = Database(path)
        assert recovered.recovered_records <= 1
        doc = recovered.store.document("person")
        assert doc.string_value(doc.pre_of(nid)) == "v3"
        recovered.close()

    def test_attribute_and_rename_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.load("person", PERSON)
        change = db.insert_attribute(elem_nid(db, "person"), "id", "p1")
        db.rename(elem_nid(db, "age"), "years")
        db.delete_attribute(change.added_nids[0])
        del db
        recovered = Database(path)
        assert recovered.recovered_records == 3
        doc = recovered.store.document("person")
        assert "<years>" in doc.serialize()
        assert 'id="p1"' not in doc.serialize()
        recovered.manager.check_consistency()
        recovered.close()

    def test_delete_attribute_logs_dedicated_record(self, tmp_path):
        path = str(tmp_path / "db")
        db = Database(path)
        db.load("person", PERSON)
        change = db.insert_attribute(elem_nid(db, "person"), "id", "p1")
        db.delete_attribute(change.added_nids[0])
        records = list(replay_records(os.path.join(path, "wal.log")))
        assert [r.kind for r in records[-2:]] == [
            INSERT_ATTRIBUTE,
            DELETE_ATTRIBUTE,
        ]
        # Crash recovery replays it through the attribute-checked path.
        del db
        recovered = Database(path)
        assert recovered.recovered_records == 2
        assert 'id="p1"' not in recovered.store.document("person").serialize()
        recovered.manager.check_consistency()
        recovered.close()

    def test_legacy_delete_subtree_record_still_replays_attributes(
        self, tmp_path
    ):
        """Logs written before DELETE_ATTRIBUTE existed carry a
        DELETE_SUBTREE record for attribute deletes; they must keep
        replaying."""
        path = str(tmp_path / "db")
        db = Database(path)
        db.load("person", PERSON)
        change = db.insert_attribute(elem_nid(db, "person"), "id", "p1")
        db.checkpoint()
        attr_nid = change.added_nids[0]
        db.manager.delete_attribute(attr_nid)  # apply without logging...
        db._wal.append(WalRecord(DELETE_SUBTREE, attr_nid))  # ...legacy form
        db._wal.close()
        recovered = Database(path)
        assert recovered.recovered_records == 1
        assert 'id="p1"' not in recovered.store.document("person").serialize()
        recovered.close()

    def test_existing_config_preserved(self, tmp_path):
        path = str(tmp_path / "db")
        Database(path, typed=("double", "integer"), substring=True).close()
        reopened = Database(path)  # defaults ignored for existing db
        assert set(reopened.manager.typed_indexes) == {"double", "integer"}
        assert reopened.manager.substring_index is not None
        reopened.close()
