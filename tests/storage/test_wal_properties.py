"""Property tests: crash recovery replays any prefix of any op sequence."""

import os
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.database import Database
from repro.storage.wal import encode_record, WalRecord, TEXT_UPDATE
from repro.xmldb import ELEM, TEXT

BASE = "<r><a>one</a><b>two</b><c><d>three</d></c></r>"

_ops = st.lists(
    st.tuples(
        st.sampled_from(["update", "insert", "delete_extra", "attr", "rename"]),
        st.integers(0, 4),
        st.sampled_from(["x", "42", "4.5", ""]),
    ),
    max_size=8,
)


def _run_ops(db, ops):
    """Apply a deterministic op sequence derived from draws."""
    doc = db.store.document("doc")
    for kind, pick, value in ops:
        texts = [doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT]
        extras = [
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == ELEM and doc.name_of(p).startswith("x")
        ]
        if kind == "update" and texts:
            db.update_text(texts[pick % len(texts)], value)
        elif kind == "insert":
            root = doc.nid[doc.root_element()]
            db.insert_xml(root, f"<x{pick}>{value}</x{pick}>")
        elif kind == "delete_extra" and extras:
            db.delete_subtree(extras[pick % len(extras)])
        elif kind == "attr":
            root = doc.nid[doc.root_element()]
            existing = {
                doc.name_of(a)
                for a in doc.attributes(doc.pre_of(root))
            }
            name = f"k{pick}"
            if name not in existing:
                db.insert_attribute(root, name, value)
        elif kind == "rename" and extras:
            db.rename(extras[pick % len(extras)], f"y{pick}")


@given(_ops)
@settings(max_examples=40, deadline=None)
def test_crash_recovery_equals_uncrashed_run(ops):
    """Run ops in two databases; 'crash' one (skip close) and recover:
    both must hold identical documents and indices."""
    with tempfile.TemporaryDirectory() as crashed_path, \
            tempfile.TemporaryDirectory() as clean_path:
        crashed = Database(crashed_path, typed=("double",))
        crashed.load("doc", BASE)
        clean = Database(clean_path, typed=("double",))
        clean.load("doc", BASE)
        _run_ops(crashed, ops)
        _run_ops(clean, ops)
        clean.close()
        del crashed  # crash: no checkpoint, WAL intact
        recovered = Database(crashed_path)
        reopened = Database(clean_path)
        left = recovered.store.document("doc")
        right = reopened.store.document("doc")
        assert left.serialize() == right.serialize()
        assert left.nid == right.nid
        assert (
            recovered.manager.string_index.hash_of
            == reopened.manager.string_index.hash_of
        )
        recovered.manager.check_consistency()
        recovered.close()
        reopened.close()


@given(_ops, st.integers(0, 200))
@settings(max_examples=30, deadline=None)
def test_torn_wal_tail_recovers_prefix(ops, cut):
    """Truncating the WAL mid-record recovers a clean prefix (no crash,
    no partial application)."""
    with tempfile.TemporaryDirectory() as path:
        db = Database(path, typed=("double",))
        db.load("doc", BASE)
        _run_ops(db, ops)
        del db  # crash
        wal_path = os.path.join(path, "wal.log")
        size = os.path.getsize(wal_path)
        keep = max(8, size - cut)  # never cut into the header
        with open(wal_path, "r+b") as fh:
            fh.truncate(keep)
        recovered = Database(path)  # must not raise
        recovered.manager.check_consistency()
        recovered.verify()
        recovered.close()


def test_unknown_record_type_stops_replay(tmp_path):
    path = str(tmp_path / "db")
    db = Database(path, typed=())
    db.load("doc", BASE)
    doc = db.store.document("doc")
    text = next(doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT)
    db.update_text(text, "first")
    del db
    # Append garbage that decodes to an unknown type.
    with open(os.path.join(path, "wal.log"), "ab") as fh:
        fh.write(b"\xff" + encode_record(WalRecord(TEXT_UPDATE, 0))[1:])
    recovered = Database(path)
    assert recovered.recovered_records == 1  # the valid prefix
    recovered.close()
