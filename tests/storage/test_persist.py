"""Tests for the on-disk persistence layer."""

import json

import pytest

from repro.core import IndexManager
from repro.errors import ReproError
from repro.storage import FormatError, load_manager, load_store, save_manager, save_store
from repro.storage.format import decode_varint, encode_varint
from repro.workloads import generate_xmark
from repro.xmldb import Store, TEXT

PERSON = (
    '<person id="p1">'
    "<name><first>Arthur</first><family>Dent</family></name>"
    "<age><decades>4</decades>2<years/></age>"
    "<weight><kilos>78</kilos>.<grams>230</grams></weight>"
    "</person>"
)


class TestVarint:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 2**20, 2**64, 10**30]
    )
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded, 0)
        assert decoded == value and offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated(self):
        with pytest.raises(FormatError):
            decode_varint(b"\x80", 0)


class TestStoreRoundtrip:
    def test_single_document(self, tmp_path):
        store = Store()
        doc = store.add_document("person", PERSON)
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        again = loaded.document("person")
        assert again.serialize() == doc.serialize()
        assert again.kind == doc.kind
        assert again.size == doc.size
        assert again.level == doc.level
        assert again.nid == doc.nid
        assert again.parent_nid == doc.parent_nid
        assert again.texts == doc.texts
        assert again.source_bytes == doc.source_bytes
        again.check_invariants()

    def test_multiple_documents_and_nid_counter(self, tmp_path):
        store = Store()
        store.add_document("a", "<x>1</x>")
        store.add_document("b", "<y>2</y>")
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert set(loaded.documents) == {"a", "b"}
        assert loaded._next_nid == store._next_nid
        # New nids don't collide with existing ones.
        fresh = loaded.allocate_nid()
        assert fresh not in set(loaded.nids())

    def test_unicode_content(self, tmp_path):
        store = Store()
        store.add_document("u", "<a>héllo wörld — ünïcode</a>")
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        doc = loaded.document("u")
        assert doc.string_value(0) == "héllo wörld — ünïcode"

    def test_updates_after_reload(self, tmp_path):
        store = Store()
        store.add_document("d", "<a><b>x</b></a>")
        save_store(store, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        doc = loaded.document("d")
        nid = next(
            doc.nid[p] for p in range(len(doc)) if doc.kind[p] == TEXT
        )
        loaded.update_text(nid, "y")
        root_nid = doc.nid[doc.root_element()]
        loaded.insert_xml(root_nid, "<c>z</c>")
        assert doc.string_value(0) == "yz"
        doc.check_invariants()

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ReproError):
            load_store(str(tmp_path))

    def test_foreign_manifest_rejected(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(FormatError):
            load_store(str(tmp_path))

    def test_corrupt_document_file(self, tmp_path):
        store = Store()
        store.add_document("d", "<a/>")
        save_store(store, str(tmp_path / "db"))
        doc_file = next(
            p for p in (tmp_path / "db").iterdir() if p.suffix == ".doc"
        )
        doc_file.write_bytes(b"garbage")
        with pytest.raises(FormatError):
            load_store(str(tmp_path / "db"))


class TestManagerRoundtrip:
    @pytest.fixture()
    def manager(self):
        m = IndexManager(typed=("double", "dateTime"), substring=True)
        m.load("person", PERSON)
        return m

    def test_indices_roundtrip(self, manager, tmp_path):
        save_manager(manager, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        assert loaded.string_index.hash_of == manager.string_index.hash_of
        for name in ("double", "dateTime"):
            left = manager.typed_index(name)
            right = loaded.typed_index(name)
            assert left.fragment_of_node == right.fragment_of_node
            assert list(left.tree.keys()) == list(right.tree.keys())
        loaded.check_consistency()

    def test_lookups_after_reload(self, manager, tmp_path):
        save_manager(manager, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        assert list(loaded.lookup_string("ArthurDent"))
        assert list(loaded.lookup_typed_equal("double", 78.23))
        assert list(loaded.lookup_contains("Arthur"))

    def test_updates_after_reload(self, manager, tmp_path):
        save_manager(manager, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        doc = loaded.store.document("person")
        nid = next(
            doc.nid[p]
            for p in range(len(doc))
            if doc.kind[p] == TEXT and doc.text_of(p) == "Dent"
        )
        loaded.update_text(nid, "Prefect")
        assert list(loaded.lookup_string("ArthurPrefect"))
        loaded.check_consistency()

    def test_substring_config_preserved(self, manager, tmp_path):
        save_manager(manager, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        assert loaded.substring_index is not None
        assert loaded.substring_index.q == manager.substring_index.q

    def test_store_only_save_refuses_manager_load(self, tmp_path):
        store = Store()
        store.add_document("d", "<a/>")
        save_store(store, str(tmp_path / "db"))
        with pytest.raises(ReproError, match="save_store"):
            load_manager(str(tmp_path / "db"))

    def test_larger_document(self, tmp_path):
        m = IndexManager(typed=("double",))
        m.load("xmark", generate_xmark(0.3))
        save_manager(m, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        assert loaded.string_index.hash_of == m.string_index.hash_of
        loaded.check_consistency()
        # Real on-disk files exist with sensible sizes.
        files = list((tmp_path / "db").iterdir())
        assert any(f.suffix == ".doc" for f in files)
        assert any(f.suffix == ".sidx" for f in files)
        assert sum(f.stat().st_size for f in files) > 1000

    def test_weird_document_names(self, tmp_path):
        m = IndexManager(typed=())
        m.load("weird/name with spaces!.xml", "<a>x</a>")
        save_manager(m, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        assert "weird/name with spaces!.xml" in loaded.store.documents


class TestFragmentPacking:
    """Regression: char-class payloads are full UTF-8 sequences, but
    the unpacker used to consume a single byte, misaligning every
    token that followed a non-ASCII character."""

    @pytest.fixture()
    def index(self):
        from types import SimpleNamespace

        plugin = SimpleNamespace(
            run_class_ids=frozenset({0}), char_class_ids=frozenset({1})
        )
        return SimpleNamespace(plugin=plugin)

    @pytest.mark.parametrize("char", ["+", "€", "ß", "→", "𝄞"])
    def test_non_ascii_char_class_roundtrip(self, index, char):
        from repro.core.fsm import Fragment
        from repro.storage.persist import _pack_fragment, _unpack_fragment

        fragment = Fragment(3, ((1, char, 1), (0, 42, 2), (1, char, 1)))
        packed = _pack_fragment(index, fragment)
        unpacked, offset = _unpack_fragment(index, packed, 0)
        assert unpacked == fragment
        assert offset == len(packed)

    def test_non_ascii_typed_index_survives_reload(self, tmp_path):
        """End to end: a custom type whose sign class is the euro/dollar
        currency symbol — fragments with non-ASCII payloads must survive
        a save/load cycle and keep answering equality lookups."""
        from repro.core.fsm import DfaSpec, TypePlugin, register_type
        from repro.core.fsm import registry

        spec = DfaSpec(
            name="money",
            states=["start", "signed", "amount"],
            initial="start",
            finals={"amount"},
            classes={"cur": "€$", "digit": "0123456789"},
            transitions={
                ("start", "cur"): "signed",
                ("signed", "digit"): "amount",
                ("amount", "digit"): "amount",
            },
        )
        register_type(
            "money",
            lambda: TypePlugin(
                name="money",
                dfa=spec.compile(),
                cast=lambda plugin, tokens: plugin.render(tokens),
                run_classes=("digit",),
                char_classes=("cur",),
            ),
        )
        try:
            m = IndexManager(typed=("money",))
            m.load("prices", "<r><p>€42</p><q>$7</q><x>words</x></r>")
            expected = sorted(m.typed_indexes["money"]._value_of.items())
            save_manager(m, str(tmp_path / "db"))
            loaded = load_manager(str(tmp_path / "db"))
            index = loaded.typed_indexes["money"]
            assert sorted(index._value_of.items()) == expected
            assert list(index.lookup_equal("€42"))
            assert list(index.lookup_equal("$7"))
            loaded.check_consistency()
        finally:
            registry._FACTORIES.pop("money", None)
            registry._CACHE.pop("money", None)


class TestStemCollisions:
    """Regression: ``a/b`` and ``a_b`` both sanitised to the stem
    ``a_b``, so the second document silently overwrote the first's
    files on disk."""

    def test_colliding_names_keep_distinct_contents(self, tmp_path):
        m = IndexManager(typed=())
        m.load("a/b", "<slash>1</slash>")
        m.load("a_b", "<underscore>2</underscore>")
        m.load("a b", "<space>3</space>")
        save_manager(m, str(tmp_path / "db"))
        loaded = load_manager(str(tmp_path / "db"))
        assert loaded.store.document("a/b").serialize() == "<slash>1</slash>"
        assert (
            loaded.store.document("a_b").serialize()
            == "<underscore>2</underscore>"
        )
        assert loaded.store.document("a b").serialize() == "<space>3</space>"

    def test_manifest_records_disambiguated_stems(self, tmp_path):
        m = IndexManager(typed=())
        m.load("a/b", "<x/>")
        m.load("a_b", "<y/>")
        save_manager(m, str(tmp_path / "db"))
        manifest = json.loads((tmp_path / "db" / "MANIFEST.json").read_text())
        stems = manifest["documents"]
        assert len(set(stems.values())) == 2
        for stem in stems.values():
            # Every manifest stem resolves to a real file.
            assert (tmp_path / "db" / f"{stem}.doc").exists()
