"""Recursive-descent parser for the XPath subset.

Grammar (whitespace insignificant outside literals)::

    query     := ('doc(' STRING ')')? path
    path      := ('/' | '//')? step (('/' | '//') step)*
    step      := nodetest predicate*
    nodetest  := NAME | '*' | 'text()' | '@' (NAME | '*') | '.'
    predicate := '[' operand cmp literal ']'
    operand   := relpath | 'fn:data(' relpath ')' | '.'
    relpath   := ('.//' | './')? step (('/' | '//') step)*
    cmp       := '=' | '!=' | '<' | '<=' | '>' | '>='
    literal   := '"' chars '"' | "'" chars "'" | NUMBER
"""

from __future__ import annotations

from ..errors import QuerySyntaxError
from .ast import (
    AnyTest,
    AttributeTest,
    BooleanExpr,
    Comparison,
    FunctionPredicate,
    NameTest,
    Path,
    PositionPredicate,
    SelfTest,
    Step,
    TextTest,
    WildcardTest,
)

__all__ = ["parse_query", "ParsedQuery"]

_NAME_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.:"
)


class ParsedQuery:
    """A parsed query: optional document name plus the location path."""

    def __init__(self, document: str | None, path: Path):
        self.document = document
        self.path = path


class _Scanner:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(f"{message} at position {self.pos}: {self.text!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\n\r":
            self.pos += 1

    def peek(self, token: str) -> bool:
        self.skip_ws()
        return self.text.startswith(token, self.pos)

    def take(self, token: str) -> bool:
        if self.peek(token):
            self.pos += len(token)
            return True
        return False

    def expect(self, token: str) -> None:
        if not self.take(token):
            raise self.error(f"expected {token!r}")

    def take_word(self, word: str) -> bool:
        """Take a keyword, requiring a non-name character after it."""
        self.skip_ws()
        end = self.pos + len(word)
        if not self.text.startswith(word, self.pos):
            return False
        if end < len(self.text) and self.text[end] in _NAME_CHARS:
            return False
        self.pos = end
        return True

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def name(self) -> str:
        self.skip_ws()
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def string_literal(self) -> str:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] not in "\"'":
            raise self.error("expected a string literal")
        quote = self.text[self.pos]
        end = self.text.find(quote, self.pos + 1)
        if end == -1:
            raise self.error("unterminated string literal")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return value

    def number_literal(self) -> float:
        self.skip_ws()
        start = self.pos
        allowed = set("0123456789.eE+-")
        while self.pos < len(self.text) and self.text[self.pos] in allowed:
            self.pos += 1
        token = self.text[start : self.pos]
        try:
            return float(token)
        except ValueError:
            raise self.error(f"bad number literal {token!r}")


def _parse_node_test(scanner: _Scanner):
    if scanner.take("text()"):
        return TextTest()
    if scanner.take("node()"):
        return AnyTest()
    if scanner.take("@"):
        if scanner.take("*"):
            return AttributeTest("*")
        return AttributeTest(scanner.name())
    if scanner.take("*"):
        return WildcardTest()
    name = scanner.name()
    return NameTest(name)


#: Named axes accepted with the ``axis::test`` syntax.
_NAMED_AXES = (
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
    "ancestor",
    "descendant",
    "parent",
    "child",
)


def _parse_steps(scanner: _Scanner, first_axis: str) -> list[Step]:
    steps = []
    axis = first_axis
    while True:
        if scanner.take(".."):
            test = AnyTest()
            axis = "parent"
        else:
            for named in _NAMED_AXES:
                if scanner.take(f"{named}::"):
                    axis = named
                    break
            test = _parse_node_test(scanner)
        predicates = []
        while scanner.peek("["):
            predicates.append(_parse_predicate(scanner))
        steps.append(Step(axis, test, tuple(predicates)))
        if scanner.take("//"):
            axis = "descendant"
        elif scanner.take("/"):
            axis = "child"
        else:
            return steps


def _parse_relative_path(scanner: _Scanner) -> Path:
    if scanner.take(".//"):
        return Path(tuple(_parse_steps(scanner, "descendant")), absolute=False)
    if scanner.take("./"):
        return Path(tuple(_parse_steps(scanner, "child")), absolute=False)
    if scanner.peek(".") and not scanner.peek(".."):
        # A bare "." — the context node itself.
        scanner.expect(".")
        return Path((Step("self", SelfTest()),), absolute=False)
    return Path(tuple(_parse_steps(scanner, "child")), absolute=False)


def _parse_atom(scanner: _Scanner):
    """One comparison or function call inside a predicate."""
    for fn in ("contains", "matches"):
        for prefix in (f"fn:{fn}(", f"{fn}("):
            if scanner.take(prefix):
                operand = _parse_relative_path(scanner)
                scanner.expect(",")
                literal = scanner.string_literal()
                scanner.expect(")")
                return FunctionPredicate(fn, operand, literal)
    if scanner.take("("):
        inner = _parse_or_expr(scanner)
        scanner.expect(")")
        return inner
    if scanner.take("fn:data(") or scanner.take("data("):
        operand = _parse_relative_path(scanner)
        scanner.expect(")")
    else:
        operand = _parse_relative_path(scanner)
    for op in ("!=", "<=", ">=", "=", "<", ">"):
        if scanner.take(op):
            break
    else:
        raise scanner.error("expected a comparison operator")
    scanner.skip_ws()
    if scanner.pos < len(scanner.text) and scanner.text[scanner.pos] in "\"'":
        literal: str | float = scanner.string_literal()
    else:
        literal = scanner.number_literal()
    return Comparison(operand, op, literal)


def _parse_and_expr(scanner: _Scanner):
    children = [_parse_atom(scanner)]
    while scanner.take_word("and"):
        children.append(_parse_atom(scanner))
    if len(children) == 1:
        return children[0]
    return BooleanExpr("and", tuple(children))


def _parse_or_expr(scanner: _Scanner):
    children = [_parse_and_expr(scanner)]
    while scanner.take_word("or"):
        children.append(_parse_and_expr(scanner))
    if len(children) == 1:
        return children[0]
    return BooleanExpr("or", tuple(children))


def _parse_predicate(scanner: _Scanner):
    scanner.expect("[")
    scanner.skip_ws()
    if scanner.take("last()"):
        scanner.expect("]")
        return PositionPredicate(None)
    if scanner.pos < len(scanner.text) and scanner.text[scanner.pos].isdigit():
        # A bare number is a positional predicate (paths never start
        # with a digit in this grammar).
        start = scanner.pos
        while (
            scanner.pos < len(scanner.text)
            and scanner.text[scanner.pos].isdigit()
        ):
            scanner.pos += 1
        position = int(scanner.text[start : scanner.pos])
        if position < 1:
            raise scanner.error("positions are 1-based")
        scanner.expect("]")
        return PositionPredicate(position)
    expression = _parse_or_expr(scanner)
    scanner.expect("]")
    return expression


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string; raises ``QuerySyntaxError`` on bad input."""
    scanner = _Scanner(text)
    document = None
    if scanner.take("doc(") or scanner.take("fn:doc("):
        document = scanner.string_literal()
        scanner.expect(")")
    if scanner.take("//"):
        first_axis = "descendant"
    elif scanner.take("/"):
        first_axis = "child"
    elif document is not None:
        raise scanner.error("expected '/' or '//' after doc(...)")
    else:
        first_axis = "descendant"
    steps = _parse_steps(scanner, first_axis)
    if not scanner.at_end():
        raise scanner.error("trailing input")
    return ParsedQuery(document, Path(tuple(steps), absolute=True))
