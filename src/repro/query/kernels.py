"""Vectorized structural kernels over the pre/size/level columns.

These are the batch counterparts of the per-node walks in
:mod:`repro.query.executor`: ``ancestor_walk`` replaces the recursive
``_context_starts`` and ``structural_verify`` replaces the memoized
``_matches_absolute``.  Both operate on sorted numpy ``pre`` arrays and
reduce every axis question to integer arithmetic on the shredded
columns:

* parent — one gather from the ``parent_pre`` plane;
* ancestors — O(depth) parent gathers with per-level dedup;
* "has an ancestor in S" — the containment interval
  ``anc < pre <= anc + size[anc]`` probed with ``searchsorted`` plus a
  prefix maximum over subtree ends (intervals nest, so the running max
  is exact);
* node tests — boolean masks over the ``kind``/``name_id`` columns.

Steps that carry their own nested predicates fall back to the scalar
``_predicate_holds`` per *surviving* node — batches shrink before the
fallback runs, so the scalar work is bounded by the candidate set, not
the document.  Equivalence with the scalar operators is enforced by
``tests/query/test_vectorized_equivalence.py`` and the randomized
kernel property suite.
"""

from __future__ import annotations

import numpy as np

from ..xmldb.document import ATTR, ELEM, TEXT, Document
from ..xmldb.columns import EMPTY_PRES, DocColumns
from .ast import (
    AnyTest,
    AttributeTest,
    NameTest,
    SelfTest,
    Step,
    TextTest,
    WildcardTest,
)
from .evaluator import _predicate_holds

__all__ = ["match_test", "ancestor_walk", "structural_verify", "kway_merge"]


def kway_merge(arrays: "list[np.ndarray]") -> "np.ndarray":
    """Merge sorted int64 key arrays into one sorted array.

    The gather half of scatter-gather: each shard returns its hits as a
    sorted key array (``global_doc_index << 40 | pre`` — documents are
    whole-shard-resident, so the per-shard arrays are already in global
    order and, placements being disjoint, duplicate-free across
    shards).  Pairwise merges proceed tournament-style so every element
    moves O(log k) times; each pairwise merge is a vectorized
    searchsorted + slot scatter, not an elementwise Python loop.
    """
    arrays = [a for a in arrays if a.size]
    if not arrays:
        return np.empty(0, dtype=np.int64)
    while len(arrays) > 1:
        merged = []
        for i in range(0, len(arrays) - 1, 2):
            left, right = arrays[i], arrays[i + 1]
            out = np.empty(left.size + right.size, dtype=np.int64)
            # Positions of right's elements in the merged output: their
            # own index plus how many left elements precede them.
            right_slots = (
                np.searchsorted(left, right, side="left")
                + np.arange(right.size)
            )
            mask = np.ones(out.size, dtype=bool)
            mask[right_slots] = False
            out[right_slots] = right
            out[mask] = left
            merged.append(out)
        if len(arrays) % 2:
            merged.append(arrays[-1])
        arrays = merged
    return arrays[0]


def match_test(
    doc: Document, cols: DocColumns, pres: "np.ndarray", test
) -> "np.ndarray":
    """Boolean mask over ``pres``: which nodes satisfy the node test?"""
    if isinstance(test, NameTest):
        name_id = doc.vocabulary.lookup(test.name)
        if name_id is None:
            return np.zeros(pres.size, dtype=bool)
        return (cols.kind[pres] == ELEM) & (cols.name_id[pres] == name_id)
    if isinstance(test, WildcardTest):
        return cols.kind[pres] == ELEM
    if isinstance(test, TextTest):
        return cols.kind[pres] == TEXT
    if isinstance(test, AttributeTest):
        mask = cols.kind[pres] == ATTR
        if test.name != "*":
            name_id = doc.vocabulary.lookup(test.name)
            if name_id is None:
                return np.zeros(pres.size, dtype=bool)
            mask &= cols.name_id[pres] == name_id
        return mask
    if isinstance(test, (SelfTest, AnyTest)):
        return np.ones(pres.size, dtype=bool)
    raise TypeError(f"unknown node test {test!r}")


def _step_filter(
    doc: Document,
    cols: DocColumns,
    pres: "np.ndarray",
    step: Step,
    skip_predicate=None,
) -> "np.ndarray":
    """Nodes of ``pres`` matching the step's test and predicates
    (``skip_predicate`` excluded — the index already answered it)."""
    if pres.size == 0:
        return pres
    pres = pres[match_test(doc, cols, pres, step.test)]
    for predicate in step.predicates:
        if predicate is skip_predicate or pres.size == 0:
            continue
        keep = np.fromiter(
            (_predicate_holds(doc, int(pre), predicate) for pre in pres),
            dtype=bool,
            count=pres.size,
        )
        pres = pres[keep]
    return pres


def ancestor_walk(
    doc: Document,
    cols: DocColumns,
    hits: "np.ndarray",
    steps: tuple[Step, ...],
) -> "np.ndarray":
    """Batch ``_context_starts``: the sorted unique context pres from
    which the operand ``steps`` can select some node in ``hits``.

    Walks the steps backwards: the frontier is filtered by the current
    step's test/predicates, then expanded to its predecessors (parents
    for the child axis, the ancestor closure for descendant, itself for
    self).  The predecessors reached past step 0 are the contexts.
    """
    frontier = hits
    for idx in range(len(steps) - 1, -1, -1):
        step = steps[idx]
        frontier = _step_filter(doc, cols, frontier, step)
        if frontier.size == 0:
            return EMPTY_PRES
        if step.axis == "child":
            predecessors = cols.parents_of(frontier)
        elif step.axis == "descendant":
            predecessors = cols.ancestors_of(frontier)
        else:  # self
            predecessors = frontier
        if idx == 0:
            return predecessors
        frontier = predecessors
    return EMPTY_PRES  # pragma: no cover - loop always returns


def structural_verify(
    doc: Document,
    cols: DocColumns,
    candidates: "np.ndarray",
    steps: tuple[Step, ...],
    skip_predicate,
) -> "np.ndarray":
    """Batch ``_matches_absolute``: the candidates selectable by the
    absolute ``steps`` from the document node.

    Restricts work to the ancestor closure of the candidate batch and
    sweeps the steps *forwards* over it: ``matched`` holds the closure
    nodes reachable by ``steps[:idx+1]``; a child step requires the
    parent in the previous front, a descendant step requires *some*
    strict ancestor in it (interval stabbing, no tree walking).  The
    closure is ancestor-closed, so every chain the scalar recursion
    could find lives entirely inside it.
    """
    if candidates.size == 0:
        return EMPTY_PRES
    if len(steps) == 1:
        # Single-step path (``//item[...]``): the verify touches only
        # the candidates themselves — no closure, no final intersect.
        step = steps[0]
        mask = match_test(doc, cols, candidates, step.test)
        if step.axis == "child":
            mask &= cols.parent_pre[candidates] == 0
        else:  # descendant (self never starts an absolute path)
            mask &= candidates != 0
        matched = candidates[mask]
        for predicate in step.predicates:
            if predicate is skip_predicate or matched.size == 0:
                continue
            keep = np.fromiter(
                (
                    _predicate_holds(doc, int(pre), predicate)
                    for pre in matched
                ),
                dtype=bool,
                count=matched.size,
            )
            matched = matched[keep]
        return matched
    closure = np.union1d(candidates, cols.ancestors_of(candidates))
    matched = EMPTY_PRES
    for idx, step in enumerate(steps):
        mask = match_test(doc, cols, closure, step.test)
        if idx == 0:
            if step.axis == "child":
                mask &= cols.parent_pre[closure] == 0
            else:  # descendant (self never starts an absolute path)
                mask &= closure != 0
        elif step.axis == "child":
            mask &= cols.parent_in(matched, closure)
        else:
            # descendant — and, mirroring the scalar recursion, any
            # other axis resolves through the ancestor closure too.
            mask &= cols.has_ancestor_in(matched, closure)
        matched = closure[mask]
        if matched.size == 0:
            return EMPTY_PRES
        for predicate in step.predicates:
            if predicate is skip_predicate:
                continue
            keep = np.fromiter(
                (
                    _predicate_holds(doc, int(pre), predicate)
                    for pre in matched
                ),
                dtype=bool,
                count=matched.size,
            )
            matched = matched[keep]
            if matched.size == 0:
                return EMPTY_PRES
    return np.intersect1d(candidates, matched, assume_unique=False)
