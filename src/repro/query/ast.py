"""AST for the XPath subset the query layer evaluates.

The subset covers the paper's motivating queries:

* ``doc("persons.xml")//person[.//age = 42]``
* ``doc("person")//person[first/text()="Arthur"]``
* ``doc("person")//*[fn:data(name)="ArthurDent"]``

plus range predicates (``<``, ``<=``, ``>``, ``>=``) over typed values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "AnyTest",
    "AttributeTest",
    "BooleanExpr",
    "Comparison",
    "FunctionPredicate",
    "NameTest",
    "Path",
    "PositionPredicate",
    "SelfTest",
    "Step",
    "TextTest",
    "WildcardTest",
]


@dataclass(frozen=True)
class NameTest:
    """Match element nodes named ``name``."""

    name: str


@dataclass(frozen=True)
class WildcardTest:
    """Match any element node (``*``)."""


@dataclass(frozen=True)
class TextTest:
    """Match text nodes (``text()``)."""


@dataclass(frozen=True)
class AttributeTest:
    """Match attribute nodes (``@name``; name ``*`` matches any)."""

    name: str


@dataclass(frozen=True)
class SelfTest:
    """Match the context node itself (``.``)."""


@dataclass(frozen=True)
class AnyTest:
    """Match any node (``node()``; also the test behind ``..``)."""


NodeTest = Union[
    NameTest, WildcardTest, TextTest, AttributeTest, SelfTest, AnyTest
]


@dataclass(frozen=True)
class Step:
    """One location step.

    ``axis`` is ``"child"`` (``/``) or ``"descendant"`` (``//``,
    meaning descendant-or-self::node()/child-ish as XPath abbreviates
    it; for attribute tests the attributes of self and descendants).
    """

    axis: str
    test: NodeTest
    predicates: tuple["Comparison | FunctionPredicate | BooleanExpr | PositionPredicate", ...] = ()


@dataclass(frozen=True)
class Path:
    """A location path.

    ``absolute`` paths start at the document node (queries); relative
    paths start at the context node (inside predicates).
    """

    steps: tuple[Step, ...]
    absolute: bool = False


@dataclass(frozen=True)
class Comparison:
    """A predicate comparison ``path op literal``.

    ``literal`` is a ``str`` (string comparison on XDM string values)
    or a ``float`` (numeric general comparison: operand string values
    are cast to double; non-castable operands never match).
    """

    operand: Path
    op: str  # =, !=, <, <=, >, >=
    literal: str | float


@dataclass(frozen=True)
class FunctionPredicate:
    """A predicate of the form ``fn(path, "literal")``.

    Supported functions: ``contains`` (substring on the XDM string
    value) and ``matches`` (regular-expression search), both accelerated
    by the q-gram substring index when it is enabled.
    """

    function: str  # "contains" | "matches"
    operand: Path
    literal: str


@dataclass(frozen=True)
class PositionPredicate:
    """A positional filter: ``[N]`` (1-based) or ``[last()]``.

    Applies per context node to the step's candidate list in document
    order, after the predicates to its left (XPath semantics).
    ``position`` is ``None`` for ``last()``.
    """

    position: int | None


@dataclass(frozen=True)
class BooleanExpr:
    """``and``/``or`` combination of predicate expressions.

    ``and`` binds tighter than ``or`` (XPath precedence); children are
    comparisons, function predicates, or nested boolean expressions.
    """

    op: str  # "and" | "or"
    children: tuple["Comparison | FunctionPredicate | BooleanExpr", ...]
