"""Batch (vectorized) plan executor: sorted numpy row-id pipelines.

The scalar executor (:mod:`repro.query.executor`) walks one Python
object per node; this executor runs the *same plan trees* but lets
operators exchange :class:`RowBatch` objects — sorted, duplicate-free
numpy ``pre`` arrays — and evaluates the structural operators with the
merge/interval kernels of :mod:`repro.query.kernels`:

* ``IndexLookup`` maps the index's nids to owned pres with one
  ``searchsorted`` over the document's sorted nid plane;
* ``AncestorWalk`` / ``StructuralVerify`` become O(depth) batched
  column gathers plus interval stabbing (``anc < pre <= anc + size``);
* ``Intersect`` / ``Union`` are single ``np.intersect1d`` /
  ``np.union1d`` merges.

**Sortedness invariant**: every batch handed between operators is
sorted ascending with no duplicates.  All kernels both rely on it
(binary-search probes) and preserve it, so no operator ever re-sorts.

**Equivalence**: results are bit-identical to the scalar executor.
``StructuralVerify`` normally re-checks the full predicate with the
scalar ``_predicate_holds`` on the (already narrowed) survivors; parts
of that re-check are skipped when the plan shape proves them redundant.
The base case: an ``AncestorWalk`` over an ``IndexLookup`` whose driver
*is* an atomic predicate guarantees that predicate for every candidate
it emits (each candidate, by construction, reaches an exact, verified
index hit through the operand path), provided the operand path carries
no positional predicate (whose per-context counting the existential
walk cannot reproduce).  The guarantee propagates structurally: an
``Intersect`` guarantees whatever *any* child guarantees (its output is
a subset of each child's), a ``Union`` guarantees what *all* children
guarantee, and an ``or`` predicate is guaranteed once any disjunct is.
For ``and`` predicates the re-check shrinks to the *residual*
conjuncts the plan does not prove — e.g. ``[a >= x and a < y]``
planned as an intersection of two range walks needs no re-check at
all, while a partially covered conjunction re-checks only the
uncovered conjuncts.

The dispatcher in :func:`repro.query.executor.execute_plan` selects
this executor by default and falls back to the scalar one when numpy
is unavailable or ``REPRO_SCALAR_EXEC=1`` is set.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.manager import IndexManager
from ..xmldb.columns import EMPTY_PRES, DocColumns
from ..xmldb.document import ATTR, TEXT, Document
from ..xmldb.mvcc import read_epoch
from .ast import BooleanExpr, FunctionPredicate, PositionPredicate
from .evaluator import _predicate_holds, evaluate_naive
from .kernels import ancestor_walk, structural_verify
from .plan import (
    AncestorWalk,
    FullScan,
    IndexLookup,
    Intersect,
    PlanNode,
    StructuralVerify,
    Union,
)

__all__ = ["RowBatch", "run_vectorized"]


class RowBatch:
    """Sorted, duplicate-free ``pre`` row ids flowing between operators.

    ``pres`` is an int64 array in ascending order; ``doc`` is the owning
    document (batches never mix documents — the planner executes per
    document).  Operators that need values gather them from the
    document's column snapshot by ``pres``, so the batch itself stays
    one flat array.
    """

    __slots__ = ("pres", "doc")

    def __init__(self, pres: "np.ndarray", doc: Document | None = None):
        self.pres = pres
        self.doc = doc

    def __len__(self) -> int:
        return int(self.pres.size)

    def to_pres(self) -> list[int]:
        """Plain Python ints (the executor's external contract)."""
        return [int(pre) for pre in self.pres]


def _string_equal_pres(
    manager: IndexManager, doc: Document, cols: DocColumns, value: str
) -> "np.ndarray":
    """Owned pres whose XDM string value equals ``value``.

    Batch counterpart of ``manager.lookup_string``: one leaf-slice
    scan of the hash bucket, nid→pre mapping via ``searchsorted``
    (which also drops other documents' nids), then collision
    verification per *kind* — leaf nodes compare their heap slot
    directly (no per-node resolution through the store), containers
    fall back to ``string_value``.  Under an active MVCC overlay with
    a pinned epoch all verification goes through ``string_value`` so
    the reader sees its snapshot's values.
    """
    index = manager.string_index
    pres = cols.pres_of_nids(
        index.candidate_nids(value), assume_unique=True
    )
    if pres.size == 0:
        return pres
    if doc.text_overlay is not None and read_epoch() is not None:
        keep = np.fromiter(
            (doc.string_value(int(pre)) == value for pre in pres),
            dtype=bool,
            count=pres.size,
        )
        return pres[keep]
    kinds = cols.kind[pres]
    leaf = (kinds == TEXT) | (kinds == ATTR)
    keep = np.empty(pres.size, dtype=bool)
    texts = doc.texts
    leaf_slots = cols.text_id[pres[leaf]].tolist()
    keep[leaf] = [texts[slot] == value for slot in leaf_slots]
    container = ~leaf
    if container.any():
        keep[container] = _container_values_equal(
            doc, cols, pres[container], value
        )
    return pres[keep]


def _container_values_equal(
    doc: Document, cols: DocColumns, pres: "np.ndarray", value: str
) -> "np.ndarray":
    """Boolean mask: does each container node's XDM string value equal
    ``value``?

    Document/element values concatenate their TEXT descendants.  The
    dominant shape — an element wrapping exactly one text node (every
    field element of the workloads) — is resolved with two
    ``searchsorted`` probes against the sorted TEXT-position plane and
    one direct heap-slot comparison; zero-text containers compare
    against the empty string.  Only multi-text containers (and the
    rare comment/PI candidates, whose value is their own content) fall
    back to ``string_value``.
    """
    kinds = cols.kind[pres]
    concat = (kinds == 0) | (kinds == 1)  # DOC | ELEM
    keep = np.empty(pres.size, dtype=bool)
    text_pos = cols.text_positions()
    cpres = pres[concat]
    lo = np.searchsorted(text_pos, cpres + 1, side="left")
    hi = np.searchsorted(text_pos, cols.end[cpres], side="right")
    count = hi - lo
    ckeep = np.empty(cpres.size, dtype=bool)
    ckeep[count == 0] = value == ""
    one = count == 1
    if one.any():
        texts = doc.texts
        slots = cols.text_id[text_pos[lo[one]]].tolist()
        ckeep[one] = [texts[slot] == value for slot in slots]
    many = count > 1
    if many.any():
        ckeep[many] = [
            doc.string_value(int(pre)) == value for pre in cpres[many]
        ]
    keep[concat] = ckeep
    other = ~concat  # comment / processing-instruction candidates
    if other.any():
        keep[other] = [
            doc.string_value(int(pre)) == value for pre in pres[other]
        ]
    return keep


def _index_nids_batch(manager: IndexManager, node: IndexLookup):
    """``(nids, unique)`` for one ``IndexLookup``, batched where the
    index supports it.  Typed lookups collect their ``(value, nid)``
    keys with the B-tree's leaf-slice range scan — for wide range
    predicates the per-entry generator frames of the scalar path
    dominate the whole query, so the batch executor bypasses them.
    ``unique`` is True when the scan cannot repeat a nid (one typed
    value per node), letting the pre mapping skip its dedup."""
    from .executor import _index_nids

    driver = node.driver
    if isinstance(driver, FunctionPredicate) or node.kind in (
        "string",
        "substring",
    ):
        return _index_nids(manager, node), False
    kind, op, value = node.kind, node.op_symbol, node.value
    if node.high_op is not None:
        # Fused range conjunction: one bounded window scan.
        nids = manager.lookup_typed_range_nids(
            kind,
            low=value,
            high=node.high_value,
            include_low=(op == ">="),
            include_high=(node.high_op == "<="),
        )
    elif op == "=":
        nids = manager.lookup_typed_equal_nids(kind, value)
    elif op == "<":
        nids = manager.lookup_typed_range_nids(
            kind, high=value, include_high=False
        )
    elif op == "<=":
        nids = manager.lookup_typed_range_nids(kind, high=value)
    elif op == ">":
        nids = manager.lookup_typed_range_nids(
            kind, low=value, include_low=False
        )
    else:  # >=
        nids = manager.lookup_typed_range_nids(kind, low=value)
    return nids, True


def _plan_answers(plan: PlanNode, predicate) -> bool:
    """True when every candidate ``plan`` emits provably satisfies
    ``predicate`` (see the module docstring for the argument).

    Recurses on both sides: set operators delegate to their inputs
    (``Intersect`` output ⊆ each child, ``Union`` output ⊆ the union),
    boolean predicates decompose (``or`` needs one guaranteed disjunct,
    ``and`` needs all conjuncts).  The base case is the walk whose
    index driver *is* the atom.
    """
    if isinstance(plan, Intersect):
        if any(_plan_answers(child, predicate) for child in plan.children):
            return True
    elif isinstance(plan, Union):
        if plan.children and all(
            _plan_answers(child, predicate) for child in plan.children
        ):
            return True
    elif isinstance(plan, AncestorWalk):
        lookup = plan.children[0]
        if isinstance(lookup, IndexLookup) and any(
            proved is predicate for proved in lookup.proves
        ):
            return not any(
                isinstance(step_predicate, PositionPredicate)
                for step in predicate.operand.steps
                for step_predicate in step.predicates
            )
    if isinstance(predicate, BooleanExpr):
        if predicate.op == "or":
            return any(
                _plan_answers(plan, child) for child in predicate.children
            )
        return all(
            _plan_answers(plan, child) for child in predicate.children
        )
    return False


def _residual_predicates(node: StructuralVerify) -> list:
    """The predicate parts the scalar re-check must still evaluate on
    each survivor; empty when the plan proves the whole predicate."""
    child = node.children[0]
    predicate = node.predicate
    if _plan_answers(child, predicate):
        return []
    if isinstance(predicate, BooleanExpr) and predicate.op == "and":
        return [
            conjunct
            for conjunct in predicate.children
            if not _plan_answers(child, conjunct)
        ]
    return [predicate]


def _run_batch(
    manager: IndexManager,
    doc: Document,
    cols: DocColumns,
    node: PlanNode,
    actuals: dict[int, dict],
) -> RowBatch:
    """Execute one operator; returns its output batch (inclusive time
    and output cardinality are recorded into ``actuals``)."""
    start = time.perf_counter()
    if isinstance(node, FullScan):
        pres = np.asarray(evaluate_naive(doc, node.path), dtype=np.int64)
    elif isinstance(node, IndexLookup):
        if (
            node.kind == "string"
            and not isinstance(node.driver, FunctionPredicate)
            and manager.string_index is not None
        ):
            pres = _string_equal_pres(
                manager, doc, cols, node.driver.literal
            )
        else:
            nids, unique = _index_nids_batch(manager, node)
            pres = cols.pres_of_nids(nids, assume_unique=unique)
    elif isinstance(node, AncestorWalk):
        hits = _run_batch(manager, doc, cols, node.children[0], actuals)
        pres = ancestor_walk(doc, cols, hits.pres, node.operand_steps)
    elif isinstance(node, Intersect):
        batches = [
            _run_batch(manager, doc, cols, child, actuals)
            for child in node.children
        ]
        pres = batches[0].pres if batches else EMPTY_PRES
        for other in batches[1:]:
            pres = np.intersect1d(pres, other.pres, assume_unique=True)
    elif isinstance(node, Union):
        pres = EMPTY_PRES
        for child in node.children:
            branch = _run_batch(manager, doc, cols, child, actuals)
            pres = np.union1d(pres, branch.pres)
    elif isinstance(node, StructuralVerify):
        child = _run_batch(manager, doc, cols, node.children[0], actuals)
        pres = structural_verify(
            doc, cols, child.pres, node.path.steps, node.predicate
        )
        residual = _residual_predicates(node) if pres.size else []
        if residual:
            # Same guard as the scalar executor, narrowed to the
            # predicate parts the plan shape does not already prove.
            keep = np.fromiter(
                (
                    all(
                        _predicate_holds(doc, int(pre), part)
                        for part in residual
                    )
                    for pre in pres
                ),
                dtype=bool,
                count=pres.size,
            )
            pres = pres[keep]
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown plan node {node!r}")
    actuals[node.op_id] = {
        "rows": int(pres.size),
        "seconds": time.perf_counter() - start,
        "vectorized": True,
    }
    metrics = manager.metrics
    metrics.counter("query.exec.vectorized_ops").inc()
    metrics.histogram("query.exec.batch_rows").observe(int(pres.size))
    return RowBatch(pres, doc)


def run_vectorized(
    manager: IndexManager,
    doc: Document,
    cols: DocColumns,
    plan: PlanNode,
    actuals: dict[int, dict],
) -> list[int]:
    """Run a plan tree over one document with batch operators; returns
    matching pres sorted in document order (same contract as the
    scalar ``execute_plan``)."""
    return _run_batch(manager, doc, cols, plan, actuals).to_pres()
