"""XPath-subset query layer (naive baseline + index-accelerated plans)."""

from .ast import Comparison, Path, Step
from .evaluator import evaluate_naive
from .parser import parse_query
from .planner import explain, query

__all__ = [
    "Comparison",
    "Path",
    "Step",
    "evaluate_naive",
    "explain",
    "parse_query",
    "query",
]
