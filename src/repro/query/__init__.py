"""XPath-subset query layer: parse → plan (cost-based) → execute."""

from .ast import Comparison, Path, Step
from .evaluator import evaluate_naive
from .executor import execute_plan
from .parser import parse_query
from .plan import (
    AncestorWalk,
    FullScan,
    IndexLookup,
    Intersect,
    PlanNode,
    StructuralVerify,
    Union,
    render_plan,
)
from .planner import Explanation, build_plan, explain, query

__all__ = [
    "AncestorWalk",
    "Comparison",
    "Explanation",
    "FullScan",
    "IndexLookup",
    "Intersect",
    "Path",
    "PlanNode",
    "Step",
    "StructuralVerify",
    "Union",
    "build_plan",
    "evaluate_naive",
    "execute_plan",
    "explain",
    "parse_query",
    "query",
    "render_plan",
]
