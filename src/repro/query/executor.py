"""Executor for typed plan trees, with per-operator instrumentation.

Runs the plans built by :mod:`repro.query.planner` against one
document.  Each operator records its output cardinality and (inclusive)
wall time into an ``actuals`` dict keyed by the node's ``op_id``; the
registry passed as ``metrics`` receives aggregate counters so repeated
queries show up in :meth:`repro.database.Database.metrics`.

Correctness invariant: whatever the plan shape, the result equals
:func:`repro.query.evaluator.evaluate_naive` — index operators only
*narrow the candidate set*, and ``StructuralVerify`` re-establishes the
full path structure and predicate before a node is emitted.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Iterator

from ..core.manager import IndexManager
from ..xmldb.document import Document
from .ast import Comparison, FunctionPredicate, Step
from .evaluator import (
    _predicate_holds,
    evaluate_naive,
    test_matches,
)
from .plan import (
    AncestorWalk,
    FullScan,
    IndexLookup,
    Intersect,
    PlanNode,
    StructuralVerify,
    Union,
)

__all__ = ["execute_plan"]


# ---------------------------------------------------------------------------
# Structural navigation (shared with the legacy planner tests)
# ---------------------------------------------------------------------------


def _context_starts(
    doc: Document, pre: int, steps: tuple[Step, ...], idx: int
) -> set[int]:
    """Context nodes from which ``steps[:idx+1]`` can select ``pre``."""
    step = steps[idx]
    if not test_matches(doc, pre, step.test):
        return set()
    if any(not _predicate_holds(doc, pre, p) for p in step.predicates):
        return set()
    if idx == 0:
        if step.axis == "child":
            parent = doc.parent(pre)
            return set() if parent is None else {parent}
        if step.axis == "descendant":
            return set(doc.ancestors(pre))
        return {pre}  # self
    if step.axis == "child":
        predecessors: Iterable[int] = (
            () if doc.parent(pre) is None else (doc.parent(pre),)
        )
    elif step.axis == "descendant":
        predecessors = doc.ancestors(pre)
    else:  # self
        predecessors = (pre,)
    starts: set[int] = set()
    for predecessor in predecessors:
        starts |= _context_starts(doc, predecessor, steps, idx - 1)
    return starts


def _matches_absolute(
    doc: Document,
    pre: int,
    steps: tuple[Step, ...],
    idx: int,
    skip_predicate: Comparison | None,
    memo: dict[tuple[int, int], bool],
) -> bool:
    """Could ``pre`` be selected by ``steps[:idx+1]`` from the document
    node?  ``skip_predicate`` is the comparison the index already
    answered (not re-verified here; the caller re-checks it)."""
    key = (pre, idx)
    cached = memo.get(key)
    if cached is not None:
        return cached
    step = steps[idx]
    result = test_matches(doc, pre, step.test)
    if result:
        for predicate in step.predicates:
            if predicate is skip_predicate:
                continue
            if not _predicate_holds(doc, pre, predicate):
                result = False
                break
    if result:
        if idx == 0:
            if step.axis == "child":
                result = doc.parent(pre) == 0
            else:
                result = pre != 0
        elif step.axis == "child":
            parent = doc.parent(pre)
            result = parent is not None and _matches_absolute(
                doc, parent, steps, idx - 1, skip_predicate, memo
            )
        else:
            result = any(
                _matches_absolute(doc, anc, steps, idx - 1, skip_predicate, memo)
                for anc in doc.ancestors(pre)
            )
    memo[key] = result
    return result


# ---------------------------------------------------------------------------
# Operator execution
# ---------------------------------------------------------------------------


def _owned_pres(
    manager: IndexManager, doc: Document, nids: Iterable[int]
) -> Iterator[int]:
    """Pres of the nids that belong to ``doc`` (indices span documents)."""
    doc_of_nid = manager.store._doc_of_nid
    for nid in nids:
        if doc_of_nid.get(nid) is doc:
            yield doc.pre_of(nid)


def _index_nids(manager: IndexManager, node: IndexLookup) -> Iterable[int]:
    """nids of value-matching nodes for one ``IndexLookup`` (all
    documents; ownership filtering is the caller's job)."""
    driver = node.driver
    if isinstance(driver, FunctionPredicate):
        if driver.function == "contains":
            nids: Iterable[int] = manager.lookup_contains(driver.literal)
        else:
            nids = manager.lookup_regex(driver.literal)
    elif node.kind == "string":
        nids = manager.lookup_string(driver.literal)
    else:  # a typed index (double, dateTime, ...)
        kind, op, value = node.kind, node.op_symbol, node.value
        if node.high_op is not None:
            # Fused range conjunction: one bounded window scan.
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range(
                    kind,
                    low=value,
                    high=node.high_value,
                    include_low=(op == ">="),
                    include_high=(node.high_op == "<="),
                )
            )
        elif op == "=":
            nids = manager.lookup_typed_equal(kind, value)
        elif op == "<":
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range(
                    kind, high=value, include_high=False
                )
            )
        elif op == "<=":
            nids = (
                nid for _v, nid in manager.lookup_typed_range(kind, high=value)
            )
        elif op == ">":
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range(
                    kind, low=value, include_low=False
                )
            )
        else:  # >=
            nids = (
                nid for _v, nid in manager.lookup_typed_range(kind, low=value)
            )
    return nids


def _index_hits(
    manager: IndexManager, doc: Document, node: IndexLookup
) -> list[int]:
    """Pres of value-matching nodes for one ``IndexLookup``."""
    return list(_owned_pres(manager, doc, _index_nids(manager, node)))


def _run(
    manager: IndexManager,
    doc: Document,
    node: PlanNode,
    actuals: dict[int, dict],
):
    """Execute one operator; returns hit pres (list) or contexts (set)."""
    start = time.perf_counter()
    if isinstance(node, FullScan):
        result = evaluate_naive(doc, node.path)
    elif isinstance(node, IndexLookup):
        result = _index_hits(manager, doc, node)
    elif isinstance(node, AncestorWalk):
        hits = _run(manager, doc, node.children[0], actuals)
        steps = node.operand_steps
        contexts: set[int] = set()
        last = len(steps) - 1
        for pre in hits:
            contexts |= _context_starts(doc, pre, steps, last)
        result = contexts
    elif isinstance(node, Intersect):
        sets = [_run(manager, doc, child, actuals) for child in node.children]
        result = set.intersection(*sets) if sets else set()
    elif isinstance(node, Union):
        result = set()
        for child in node.children:
            result |= _run(manager, doc, child, actuals)
    elif isinstance(node, StructuralVerify):
        candidates = _run(manager, doc, node.children[0], actuals)
        steps = node.path.steps
        predicate = node.predicate
        memo: dict[tuple[int, int], bool] = {}
        last = len(steps) - 1
        verified: set[int] = set()
        for context in candidates:
            if not _matches_absolute(doc, context, steps, last, predicate, memo):
                continue
            # Structural match established; re-verify the full predicate
            # properly (guards general-comparison corners such as !=,
            # and the non-driver conjuncts).
            if _predicate_holds(doc, context, predicate):
                verified.add(context)
        result = sorted(verified)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown plan node {node!r}")
    actuals[node.op_id] = {
        "rows": len(result),
        "seconds": time.perf_counter() - start,
    }
    manager.metrics.counter("query.exec.scalar_ops").inc()
    return result


def _scalar_forced() -> bool:
    """Is the ``REPRO_SCALAR_EXEC=1`` escape hatch set?  Read per call
    so tests (and operators) can flip it at runtime."""
    return os.environ.get("REPRO_SCALAR_EXEC", "").lower() in (
        "1",
        "true",
        "yes",
    )


def execute_plan(
    manager: IndexManager,
    doc: Document,
    plan: PlanNode,
    actuals: dict[int, dict] | None = None,
    vectorized: bool | None = None,
) -> list[int]:
    """Run a plan tree over one document; returns matching pres sorted
    in document order.  ``actuals`` (if given) is filled with
    per-operator ``{"rows", "seconds"}`` entries keyed by ``op_id``.

    ``vectorized`` selects the executor: ``None`` (default) uses the
    batch executor (:mod:`repro.query.vexecutor`) unless the
    ``REPRO_SCALAR_EXEC=1`` escape hatch is set; ``True``/``False``
    force one side.  Without numpy the scalar executor always runs.
    Both executors return identical results.
    """
    if actuals is None:
        actuals = {}
    metrics = manager.metrics
    if vectorized is None:
        vectorized = not _scalar_forced()
    result: list[int] | None = None
    if vectorized:
        cols = doc.columns()
        if cols is not None:
            from .vexecutor import run_vectorized

            result = run_vectorized(manager, doc, cols, plan, actuals)
    if result is None:
        scalar = _run(manager, doc, plan, actuals)
        if isinstance(scalar, set):  # a bare candidate operator as root
            scalar = sorted(scalar)
        result = scalar
    if isinstance(plan, FullScan):
        metrics.counter("query.plans.scan").inc()
    else:
        metrics.counter("query.plans.index").inc()
    metrics.counter("query.rows").inc(len(result))
    return result
