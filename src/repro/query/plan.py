"""Typed plan trees for the query execution engine.

The planner (:mod:`repro.query.planner`) compiles a parsed query into a
tree of these operators for one document; the executor
(:mod:`repro.query.executor`) runs the tree with per-operator
instrumentation.  Shapes:

* ``FullScan`` — the naive evaluator over the whole document (always
  applicable; the baseline every other plan is priced against);
* ``IndexLookup → AncestorWalk`` — a value index supplies the nodes
  whose value matches one atomic predicate, and the predicate's operand
  path is walked ancestor-wards to candidate context nodes;
* ``Union`` / ``Intersect`` — combine candidate context sets of several
  drivers (disjunctive predicates need *all* branches covered and union
  them; conjunctive predicates may intersect several selective
  branches);
* ``StructuralVerify`` — the root of every index plan: verifies the
  outer path structurally and re-checks the full predicate, so results
  always equal :func:`repro.query.evaluator.evaluate_naive`.

Every node carries the planner's cost estimates (``estimated_rows``,
``estimated_cost``) and a stable ``op_id`` the executor uses to report
per-operator actuals in ``explain(..., execute=True)``.
"""

from __future__ import annotations

from typing import Any, Iterator

from .ast import Path, Step

__all__ = [
    "PlanNode",
    "FullScan",
    "IndexLookup",
    "AncestorWalk",
    "Intersect",
    "Union",
    "StructuralVerify",
    "ScatterGather",
    "RemotePlan",
    "render_plan",
]


class PlanNode:
    """Base class of all plan operators."""

    op = "plan"

    def __init__(self, children: tuple["PlanNode", ...] = ()):
        self.children = children
        #: Planner estimates (filled during plan construction).
        self.estimated_rows: float = 0.0
        self.estimated_cost: float = 0.0
        #: Stable pre-order operator id (assigned by :func:`number_plan`).
        self.op_id: int = -1

    # -- rendering ------------------------------------------------------

    def describe(self) -> str:
        """One-line operator description (no estimates)."""
        return self.op

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the tree."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, actuals: dict[int, dict] | None = None) -> dict:
        """JSON-friendly form of the subtree (with actuals if given)."""
        node: dict[str, Any] = {
            "op": self.op,
            "describe": self.describe(),
            "estimated_rows": round(self.estimated_rows, 2),
            "estimated_cost": round(self.estimated_cost, 2),
        }
        if actuals is not None and self.op_id in actuals:
            node["actual"] = actuals[self.op_id]
        if self.children:
            node["children"] = [
                child.to_dict(actuals) for child in self.children
            ]
        return node


class FullScan(PlanNode):
    """Evaluate the whole path with the naive evaluator."""

    op = "FullScan"

    def __init__(self, path: Path, reason: str = ""):
        super().__init__()
        self.path = path
        #: Why the planner scanned ("no index applies", "cost", ...).
        self.reason = reason

    def describe(self) -> str:
        return f"FullScan({self.reason})" if self.reason else "FullScan"


class IndexLookup(PlanNode):
    """Fetch value-matching nodes from one index.

    ``kind`` is ``"string"``, ``"substring"`` or the configured typed
    index's name (``"double"``, ``"dateTime"``, ...).  For typed
    lookups ``value`` holds the literal already cast into the index's
    value domain.

    A typed lookup may carry a *second* bound (``high_op``/
    ``high_value``): the planner fuses conjoined range comparisons over
    the same operand path (``[a >= x and a < y]``) into one bounded
    window scan of the value B-tree.  ``proves`` lists every atomic
    predicate each emitted node is guaranteed to satisfy (the driver
    alone for plain lookups; all fused conjuncts for a window) — the
    batch executor uses it to elide the scalar predicate re-check.
    """

    op = "IndexLookup"

    def __init__(self, kind: str, driver, op_symbol: str = "=",
                 value: Any = None, high_op: str | None = None,
                 high_value: Any = None,
                 proves: tuple | None = None):
        super().__init__()
        self.kind = kind
        self.driver = driver
        self.op_symbol = op_symbol
        self.value = value
        self.high_op = high_op
        self.high_value = high_value
        self.proves = (driver,) if proves is None else proves

    def describe(self) -> str:
        if self.high_op is not None:
            return (
                f"IndexLookup[{self.kind}] {self.op_symbol} {self.value!r} "
                f"and {self.high_op} {self.high_value!r}"
            )
        literal = getattr(self.driver, "literal", self.value)
        return f"IndexLookup[{self.kind}] {self.op_symbol} {literal!r}"


class AncestorWalk(PlanNode):
    """Walk index hits ancestor-wards through the operand path."""

    op = "AncestorWalk"

    def __init__(self, child: PlanNode, operand_steps: tuple[Step, ...]):
        super().__init__((child,))
        self.operand_steps = operand_steps

    def describe(self) -> str:
        return f"AncestorWalk[{len(self.operand_steps)} step(s)]"


class Intersect(PlanNode):
    """Intersect candidate context sets (conjunctive drivers)."""

    op = "Intersect"

    def __init__(self, children: tuple[PlanNode, ...]):
        super().__init__(children)

    def describe(self) -> str:
        return f"Intersect[{len(self.children)}]"


class Union(PlanNode):
    """Union candidate context sets (disjunctive drivers)."""

    op = "Union"

    def __init__(self, children: tuple[PlanNode, ...]):
        super().__init__(children)

    def describe(self) -> str:
        return f"Union[{len(self.children)}]"


class StructuralVerify(PlanNode):
    """Verify the outer path and re-check the full predicate."""

    op = "StructuralVerify"

    def __init__(self, child: PlanNode, path: Path, predicate):
        super().__init__((child,))
        self.path = path
        self.predicate = predicate

    def describe(self) -> str:
        return f"StructuralVerify[{len(self.path.steps)} step(s)]"


class ScatterGather(PlanNode):
    """Coordinator root: scatter the query to shards, k-way merge.

    Children are one :class:`RemotePlan` per participating shard.  Each
    shard evaluates its local plan (its own IndexLookup/window scans —
    predicate evaluation is pushed down with the query text, so only
    row-id batches cross the process boundary) and returns hits sorted
    by (global document index, pre); the gather side merges them with
    :func:`repro.query.kernels.kway_merge`.
    """

    op = "ScatterGather"

    def __init__(self, children: tuple["RemotePlan", ...]):
        super().__init__(children)

    def describe(self) -> str:
        return f"ScatterGather[{len(self.children)} shard(s)]"


class RemotePlan(PlanNode):
    """One shard's contribution to a scatter-gather plan.

    A display/accounting proxy: the actual operator tree lives in the
    shard process; ``summary`` carries the shard's own ``explain``
    rendering so a coordinator explain still shows where indices were
    used.
    """

    op = "RemotePlan"

    def __init__(self, shard: int, documents: tuple[str, ...],
                 summary: str = ""):
        super().__init__()
        self.shard = shard
        self.documents = documents
        self.summary = summary

    def describe(self) -> str:
        docs = ",".join(self.documents) if self.documents else "-"
        return f"RemotePlan[shard={self.shard} docs={docs}]"


def number_plan(root: PlanNode) -> PlanNode:
    """Assign pre-order ``op_id``\\ s; returns ``root`` for chaining."""
    for op_id, node in enumerate(root.walk()):
        node.op_id = op_id
    return root


def render_plan(
    root: PlanNode, actuals: dict[int, dict] | None = None
) -> str:
    """Indented text rendering of a plan tree with estimates/actuals."""
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        line = (
            f"{'  ' * depth}{node.describe()}  "
            f"(est rows={node.estimated_rows:.1f} "
            f"cost={node.estimated_cost:.1f}"
        )
        if actuals is not None and node.op_id in actuals:
            actual = actuals[node.op_id]
            line += (
                f" | actual rows={actual['rows']} "
                f"time={actual['seconds'] * 1000:.2f}ms"
            )
        lines.append(line + ")")
        for child in node.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)
