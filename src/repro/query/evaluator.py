"""Naive (full-traversal) evaluation of the XPath subset.

This is the baseline the value indices accelerate: every axis step is
navigated over the pre/size/level columns and every comparison reads
XDM string values from the document.  The index-accelerated path in
:mod:`repro.query.planner` must return exactly the same node sets.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..core.fsm import get_plugin
from ..errors import QueryEvaluationError
from ..xmldb.document import ATTR, ELEM, TEXT, Document
from .ast import (
    AnyTest,
    AttributeTest,
    BooleanExpr,
    FunctionPredicate,
    NameTest,
    Path,
    PositionPredicate,
    SelfTest,
    Step,
    TextTest,
    WildcardTest,
)

__all__ = [
    "evaluate_path",
    "test_matches",
    "compare_node",
    "typed_literal",
    "TYPED_LITERAL_TYPES",
]


def test_matches(doc: Document, pre: int, test) -> bool:
    """Does the node at ``pre`` satisfy a node test?"""
    kind = doc.kind[pre]
    if isinstance(test, NameTest):
        return kind == ELEM and doc.name_of(pre) == test.name
    if isinstance(test, WildcardTest):
        return kind == ELEM
    if isinstance(test, TextTest):
        return kind == TEXT
    if isinstance(test, AttributeTest):
        if kind != ATTR:
            return False
        return test.name == "*" or doc.name_of(pre) == test.name
    if isinstance(test, (SelfTest, AnyTest)):
        return True
    raise QueryEvaluationError(f"unknown node test {test!r}")


def _expand_step(doc: Document, pre: int, step: Step) -> Iterable[int]:
    """Candidate nodes of one axis step from one context node."""
    if isinstance(step.test, SelfTest) and step.axis == "self":
        yield pre
        return
    if isinstance(step.test, AttributeTest):
        if step.axis == "child":
            owners: Iterable[int] = (pre,)
        else:  # descendant(-or-self) attributes
            owners = (p for p in doc.subtree(pre) if doc.kind[p] == ELEM)
        for owner in owners:
            yield from doc.attributes(owner)
        # The document node has no attributes; elements handled above.
        return
    if step.axis == "child":
        yield from doc.children(pre)
    elif step.axis == "descendant":
        for candidate in doc.descendants(pre):
            if doc.kind[candidate] != ATTR:
                yield candidate
    elif step.axis == "parent":
        parent = doc.parent(pre)
        if parent is not None:
            yield parent
    elif step.axis == "ancestor":
        yield from doc.ancestors(pre)
    elif step.axis in ("following-sibling", "preceding-sibling"):
        parent = doc.parent(pre)
        if parent is None:
            return
        for sibling in doc.children(parent):
            if step.axis == "following-sibling" and sibling > pre:
                yield sibling
            elif step.axis == "preceding-sibling" and sibling < pre:
                yield sibling
    elif step.axis == "following":
        # Document order after the subtree, minus attributes.
        for candidate in range(pre + doc.size[pre] + 1, len(doc)):
            if doc.kind[candidate] != ATTR:
                yield candidate
    elif step.axis == "preceding":
        # Before pre in document order, minus ancestors and attributes.
        ancestors = set(doc.ancestors(pre))
        for candidate in range(1, pre):
            if doc.kind[candidate] != ATTR and candidate not in ancestors:
                yield candidate
    else:
        raise QueryEvaluationError(f"unknown axis {step.axis!r}")


_DOUBLE = None


def _double_value(text: str):
    """Cast a string value to xs:double the way general comparison does."""
    global _DOUBLE
    if _DOUBLE is None:
        _DOUBLE = get_plugin("double")
    return _DOUBLE.value_of_text(text)


#: Ordered XML types a quoted literal may denote in an order comparison,
#: most specific first (a dateTime lexical is also *not* a date, so the
#: first type whose grammar accepts the literal wins deterministically).
TYPED_LITERAL_TYPES = (
    "dateTime",
    "date",
    "time",
    "gYearMonth",
    "gMonthDay",
    "gYear",
    "gMonth",
    "gDay",
    "duration",
)

_TYPED_LITERAL_CACHE: dict[str, tuple[str, object] | None] = {}


def typed_literal(literal: str) -> tuple[str, object] | None:
    """Detect the typed domain of a quoted literal.

    Returns ``(type name, typed value)`` for literals that are a valid
    lexical form of one of :data:`TYPED_LITERAL_TYPES` (e.g.
    ``"2002-05-06T10:00:00"`` → dateTime), or ``None`` for plain
    strings.  This is what gives order comparisons against quoted
    literals their semantics: both sides are cast into the detected
    domain, and operands that do not cast never match — mirroring the
    numeric-literal rule, where operands are cast to xs:double.
    """
    cached = _TYPED_LITERAL_CACHE.get(literal)
    if cached is None and literal not in _TYPED_LITERAL_CACHE:
        for name in TYPED_LITERAL_TYPES:
            value = get_plugin(name).value_of_text(literal)
            if value is not None:
                cached = (name, value)
                break
        if len(_TYPED_LITERAL_CACHE) > 4096:
            _TYPED_LITERAL_CACHE.clear()
        _TYPED_LITERAL_CACHE[literal] = cached
    return cached


def _compare(left, op: str, right) -> bool:
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise QueryEvaluationError(f"unknown operator {op!r}")


def compare_node(doc: Document, pre: int, predicate) -> bool:
    """Check one operand node against a predicate's literal.

    Handles both general comparisons (XQuery semantics: numeric
    literals compare the double cast of the string value) and the
    ``contains``/``matches`` function predicates.
    """
    value = doc.string_value(pre)
    if isinstance(predicate, FunctionPredicate):
        if predicate.function == "contains":
            return predicate.literal in value
        if predicate.function == "matches":
            return re.search(predicate.literal, value) is not None
        raise QueryEvaluationError(
            f"unknown predicate function {predicate.function!r}"
        )
    if isinstance(predicate.literal, str):
        if predicate.op in ("=", "!="):
            return _compare(value, predicate.op, predicate.literal)
        detected = typed_literal(predicate.literal)
        if detected is None:
            raise QueryEvaluationError(
                "order comparisons against string literals are only "
                "supported for typed (temporal) literals"
            )
        type_name, literal_value = detected
        cast = get_plugin(type_name).value_of_text(value)
        if cast is None:
            return False
        return _compare(cast, predicate.op, literal_value)
    cast = _double_value(value)
    if cast is None:
        return False
    return _compare(cast, predicate.op, predicate.literal)


def _predicate_holds(doc: Document, pre: int, predicate) -> bool:
    """Existential semantics: true iff *some* node selected by the
    operand path satisfies the predicate; ``and``/``or`` expressions
    recurse per child (each child has its own operand path)."""
    if isinstance(predicate, BooleanExpr):
        if predicate.op == "and":
            return all(
                _predicate_holds(doc, pre, child)
                for child in predicate.children
            )
        return any(
            _predicate_holds(doc, pre, child) for child in predicate.children
        )
    for operand in evaluate_path(doc, [pre], predicate.operand.steps):
        if compare_node(doc, operand, predicate):
            return True
    return False


def evaluate_path(
    doc: Document, context: Iterable[int], steps: tuple[Step, ...]
) -> list[int]:
    """Evaluate location steps over ``context`` pres; document order,
    duplicates removed (XPath node-set semantics).

    Predicates apply left to right; positional predicates filter the
    candidate list *per context node* with positions taken after the
    predicates to their left (XPath 1.0 semantics).
    """
    current = list(context)
    for step in steps:
        result: set[int] = set()
        for pre in current:
            candidates = [
                candidate
                for candidate in _expand_step(doc, pre, step)
                if test_matches(doc, candidate, step.test)
            ]
            for predicate in step.predicates:
                if isinstance(predicate, PositionPredicate):
                    index = (
                        len(candidates) - 1
                        if predicate.position is None
                        else predicate.position - 1
                    )
                    if 0 <= index < len(candidates):
                        candidates = [candidates[index]]
                    else:
                        candidates = []
                else:
                    candidates = [
                        candidate
                        for candidate in candidates
                        if _predicate_holds(doc, candidate, predicate)
                    ]
            result.update(candidates)
        current = sorted(result)
    return current


def evaluate_naive(doc: Document, path: Path) -> list[int]:
    """Evaluate an absolute path over a document, no index use."""
    if not path.absolute:
        raise QueryEvaluationError("top-level paths must be absolute")
    return evaluate_path(doc, [0], path.steps)
