"""Index-accelerated query evaluation.

The planner recognises the shape the paper's indices target — a path
whose final step carries a value predicate::

    //person[.//age = 42]          (typed index, equality)
    //person[first/text() = "A"]   (string index)
    //item[@price < 10]            (typed index, range)

and evaluates it *backwards*: the value index supplies the nodes whose
value matches, the predicate's operand path is walked in reverse
(ancestor-wards) to find candidate context nodes, and the outer path is
verified structurally.  Anything the planner does not recognise falls
back to the naive evaluator, so results always equal
:func:`repro.query.evaluator.evaluate_naive`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.manager import IndexManager
from ..core.substring_index import literal_factors
from ..xmldb.document import Document
from .ast import (
    AttributeTest,
    BooleanExpr,
    Comparison,
    FunctionPredicate,
    Path,
    PositionPredicate,
    Step,
    TextTest,
)
from .evaluator import (
    _predicate_holds,
    evaluate_naive,
    test_matches,
)
from .parser import parse_query

__all__ = ["query", "explain"]


def _index_hits(
    manager: IndexManager, doc: Document, comparison
) -> Iterator[int] | None:
    """Pres of value-matching nodes from an index, or None if no index
    applies to this comparison."""
    if isinstance(comparison, FunctionPredicate):
        return _substring_hits(manager, doc, comparison)
    literal = comparison.literal
    op = comparison.op
    if isinstance(literal, str):
        if op != "=" or manager.string_index is None:
            return None
        nids = manager.lookup_string(literal)
    else:
        if "double" not in manager.typed_indexes:
            return None
        if op == "=":
            nids = manager.lookup_typed_equal("double", literal)
        elif op == "<":
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range(
                    "double", high=literal, include_high=False
                )
            )
        elif op == "<=":
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range("double", high=literal)
            )
        elif op == ">":
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range(
                    "double", low=literal, include_low=False
                )
            )
        elif op == ">=":
            nids = (
                nid
                for _v, nid in manager.lookup_typed_range("double", low=literal)
            )
        else:  # != has no useful index form
            return None

    def pres() -> Iterator[int]:
        for nid in nids:
            owner = manager.store._doc_of_nid.get(nid)
            if owner is doc:
                yield doc.pre_of(nid)

    return pres()


def _substring_hits(
    manager: IndexManager, doc: Document, predicate: FunctionPredicate
) -> Iterator[int] | None:
    """Pres of leaves satisfying a contains/matches predicate via the
    q-gram index.

    Only applies when the operand path targets leaves directly (a
    ``text()`` or attribute step): the q-gram index is leaf-accurate,
    and a match spanning element boundaries is only found by the scan
    fallback.
    """
    if manager.substring_index is None:
        return None
    last_test = predicate.operand.steps[-1].test
    if not isinstance(last_test, (TextTest, AttributeTest)):
        return None
    if predicate.function == "contains":
        if not manager.substring_index.supports(predicate.literal):
            return None
        nids = manager.lookup_contains(predicate.literal)
    else:
        pruned = manager.substring_index.candidates_for_regex(
            predicate.literal
        )
        if pruned is None:
            return None
        nids = manager.lookup_regex(predicate.literal)

    def pres() -> Iterator[int]:
        for nid in nids:
            owner = manager.store._doc_of_nid.get(nid)
            if owner is doc:
                yield doc.pre_of(nid)

    return pres()


def _context_starts(
    doc: Document, pre: int, steps: tuple[Step, ...], idx: int
) -> set[int]:
    """Context nodes from which ``steps[:idx+1]`` can select ``pre``."""
    step = steps[idx]
    if not test_matches(doc, pre, step.test):
        return set()
    if any(not _predicate_holds(doc, pre, p) for p in step.predicates):
        return set()
    if idx == 0:
        if step.axis == "child":
            parent = doc.parent(pre)
            return set() if parent is None else {parent}
        if step.axis == "descendant":
            return set(doc.ancestors(pre))
        return {pre}  # self
    if step.axis == "child":
        predecessors: Iterable[int] = (
            () if doc.parent(pre) is None else (doc.parent(pre),)
        )
    elif step.axis == "descendant":
        predecessors = doc.ancestors(pre)
    else:  # self
        predecessors = (pre,)
    starts: set[int] = set()
    for predecessor in predecessors:
        starts |= _context_starts(doc, predecessor, steps, idx - 1)
    return starts


def _matches_absolute(
    doc: Document,
    pre: int,
    steps: tuple[Step, ...],
    idx: int,
    skip_predicate: Comparison | None,
    memo: dict[tuple[int, int], bool],
) -> bool:
    """Could ``pre`` be selected by ``steps[:idx+1]`` from the document
    node?  ``skip_predicate`` is the comparison the index already
    answered (not re-verified here; the caller re-checks it)."""
    key = (pre, idx)
    cached = memo.get(key)
    if cached is not None:
        return cached
    step = steps[idx]
    result = test_matches(doc, pre, step.test)
    if result:
        for predicate in step.predicates:
            if predicate is skip_predicate:
                continue
            if not _predicate_holds(doc, pre, predicate):
                result = False
                break
    if result:
        if idx == 0:
            if step.axis == "child":
                result = doc.parent(pre) == 0
            else:
                result = pre != 0
        elif step.axis == "child":
            parent = doc.parent(pre)
            result = parent is not None and _matches_absolute(
                doc, parent, steps, idx - 1, skip_predicate, memo
            )
        else:
            result = any(
                _matches_absolute(doc, anc, steps, idx - 1, skip_predicate, memo)
                for anc in doc.ancestors(pre)
            )
    memo[key] = result
    return result


def _plan_drivers(manager: IndexManager, predicate) -> list | None:
    """The atomic predicates whose index hits jointly *cover* all
    context nodes satisfying ``predicate``.

    * an indexable atom covers itself;
    * ``and``: any one indexable conjunct covers (the rest is verified);
    * ``or``: every disjunct must be covered (hits are unioned).

    Returns ``None`` when no covering driver set exists.
    """
    if isinstance(predicate, (Comparison, FunctionPredicate)):
        if _driver_kind(manager, predicate) is None:
            return None
        return [predicate]
    if isinstance(predicate, BooleanExpr):
        if predicate.op == "and":
            for child in predicate.children:
                drivers = _plan_drivers(manager, child)
                if drivers is not None:
                    return drivers
            return None
        drivers: list = []
        for child in predicate.children:
            child_drivers = _plan_drivers(manager, child)
            if child_drivers is None:
                return None
            drivers.extend(child_drivers)
        return drivers
    return None


#: ``auto`` mode scans when the index is expected to return more than
#: this fraction of the document as candidates.
SCAN_THRESHOLD = 0.25


def _estimate_driver(manager: IndexManager, driver) -> float:
    """Expected number of index candidates for one atomic predicate."""
    if isinstance(driver, FunctionPredicate):
        if driver.function == "contains":
            estimate = manager.substring_index.estimate_candidates(
                driver.literal
            )
        else:
            factors = [
                factor
                for factor in literal_factors(driver.literal)
                if len(factor) >= manager.substring_index.q
            ]
            estimate = (
                manager.substring_index.estimate_candidates(
                    max(factors, key=len)
                )
                if factors
                else None
            )
        return float("inf") if estimate is None else float(estimate)
    if isinstance(driver.literal, str):
        return manager.statistics("string").estimate_equal()
    return manager.statistics("double").estimate(driver.op, driver.literal)


def _evaluate_with_index(
    manager: IndexManager, doc: Document, path: Path, cost_based: bool = False
) -> list[int] | None:
    """Index-accelerated evaluation; None if the plan does not apply."""
    if any(
        isinstance(predicate, PositionPredicate)
        for step in path.steps
        for predicate in step.predicates
    ):
        return None  # positional filters need full per-context lists
    if not all(
        step.axis in ("child", "descendant", "self") for step in path.steps
    ):
        return None  # reverse/sibling axes are scan-only
    final = path.steps[-1]
    predicate = next(iter(final.predicates), None)
    if predicate is None:
        return None
    drivers = _plan_drivers(manager, predicate)
    if drivers is None:
        return None
    if cost_based:
        expected = sum(_estimate_driver(manager, d) for d in drivers)
        if expected > SCAN_THRESHOLD * len(doc):
            return None
    memo: dict[tuple[int, int], bool] = {}
    results: set[int] = set()
    rejected: set[int] = set()
    for driver in drivers:
        if not all(
            step.axis in ("child", "descendant", "self")
            for step in driver.operand.steps
        ):
            return None  # reverse/sibling operand axes are scan-only
        hits = _index_hits(manager, doc, driver)
        if hits is None:
            return None
        operand_steps = driver.operand.steps
        for value_pre in hits:
            for context in _context_starts(
                doc, value_pre, operand_steps, len(operand_steps) - 1
            ):
                if context in results or context in rejected:
                    continue
                if not _matches_absolute(
                    doc, context, path.steps, len(path.steps) - 1,
                    predicate, memo,
                ):
                    rejected.add(context)
                    continue
                # Structural match established; re-verify the full
                # predicate properly (guards general-comparison corners
                # such as !=, and the non-driver conjuncts).
                if _predicate_holds(doc, context, predicate):
                    results.add(context)
                else:
                    rejected.add(context)
    return sorted(results)


def query(
    manager: IndexManager,
    text: str,
    document: str | None = None,
    use_indexes: bool | str = True,
) -> list[int]:
    """Evaluate a query; returns matching node ids in document order.

    ``document`` restricts evaluation to one document (a ``doc("...")``
    prefix in the query does the same).  ``use_indexes``:

    * ``True`` — always use an index plan when one applies;
    * ``False`` — always scan (the baseline for speedup benchmarks);
    * ``"auto"`` — cost-based: use the index only when its statistics
      predict fewer candidates than :data:`SCAN_THRESHOLD` of the
      document (an unselective range is cheaper to scan).
    """
    if use_indexes not in (True, False, "auto"):
        raise ValueError("use_indexes must be True, False or 'auto'")
    parsed = parse_query(text)
    doc_name = parsed.document or document
    if doc_name is not None:
        docs = [manager.store.document(doc_name)]
    else:
        docs = list(manager.store.documents.values())
    results: list[int] = []
    for doc in docs:
        pres: list[int] | None = None
        if use_indexes:
            pres = _evaluate_with_index(
                manager, doc, parsed.path, cost_based=use_indexes == "auto"
            )
        if pres is None:
            pres = evaluate_naive(doc, parsed.path)
        results.extend(doc.nid[pre] for pre in pres)
    return results


def _driver_kind(manager: IndexManager, driver) -> str | None:
    """Which index would serve this atomic predicate, or ``None``."""
    if isinstance(driver, FunctionPredicate):
        index = manager.substring_index
        if index is None:
            return None
        last_test = driver.operand.steps[-1].test
        if not isinstance(last_test, (TextTest, AttributeTest)):
            return None
        if driver.function == "contains":
            usable = index.supports(driver.literal)
        else:
            usable = index.candidates_for_regex(driver.literal) is not None
        return "substring" if usable else None
    if isinstance(driver.literal, str):
        if driver.op == "=" and manager.string_index is not None:
            return "string"
        return None
    if driver.op != "!=" and "double" in manager.typed_indexes:
        return "double"
    return None


def explain(manager: IndexManager, text: str) -> str:
    """Report which plan the query would use (``"index(...)"``/``"scan"``)."""
    parsed = parse_query(text)
    final = parsed.path.steps[-1]
    predicate = next(iter(final.predicates), None)
    if predicate is None:
        return "scan"
    drivers = _plan_drivers(manager, predicate)
    if drivers is None:
        return "scan"
    kinds = []
    for driver in drivers:
        kind = _driver_kind(manager, driver)
        if kind is None:
            return "scan"
        kinds.append(kind)
    return "index(" + "+".join(sorted(set(kinds))) + ")"
