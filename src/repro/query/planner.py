"""Cost-based query planning over the generic value indices.

The engine runs in three explicit phases:

1. **Plan** — :func:`build_plan` compiles a parsed query into a typed
   operator tree (:mod:`repro.query.plan`): either a ``FullScan`` or an
   index plan ``IndexLookup → AncestorWalk → (Union/Intersect) →
   StructuralVerify`` that evaluates the paper's shape *backwards* (the
   value index supplies value-matching nodes, the operand path is
   walked ancestor-wards, the outer path is verified structurally).
2. **Price** — candidate plans are priced with the selectivity
   snapshots of :mod:`repro.core.statistics`; in ``auto`` mode the
   index plan is only chosen when its estimated candidate set is
   cheaper than the scan it replaces.
3. **Execute** — :mod:`repro.query.executor` runs the tree with
   per-operator instrumentation.

Any configured typed index is eligible: numeric literals route through
an index whose plugin implements xs:double, and quoted temporal
literals (``"2002-05-06T10:00:00"``) route through a matching
dateTime/date/... index.  Anything the planner does not recognise falls
back to a ``FullScan``, so results always equal
:func:`repro.query.evaluator.evaluate_naive`.

Plans are cached per ``(query text, document, mode)`` and invalidated
by the manager's mutation epoch (every update path bumps it), so
repeated queries skip recognition, routing and pricing entirely.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.concurrency import active_view
from ..core.manager import IndexManager
from ..core.substring_index import literal_factors
from ..xmldb.document import Document
from .ast import (
    AttributeTest,
    BooleanExpr,
    Comparison,
    FunctionPredicate,
    Path,
    PositionPredicate,
    TextTest,
)
from .evaluator import typed_literal
from .executor import execute_plan
from .plan import (
    AncestorWalk,
    FullScan,
    IndexLookup,
    Intersect,
    PlanNode,
    StructuralVerify,
    Union,
    number_plan,
    render_plan,
)
from .parser import parse_query

__all__ = ["query", "explain", "Explanation", "build_plan"]

#: ``auto`` mode scans when the index is expected to return more than
#: this fraction of the document as candidates.
SCAN_THRESHOLD = 0.25

#: Cost units: visiting one document node during a scan costs 1.
SCAN_COST_PER_NODE = 1.0

#: Each index candidate pays a tree walk, an ancestor walk and a
#: structural verification — modelled as ``1/SCAN_THRESHOLD`` scan
#: nodes so the cost crossover sits exactly at the validated threshold.
CANDIDATE_COST = SCAN_COST_PER_NODE / SCAN_THRESHOLD

#: Bound on the per-manager plan cache (entries, FIFO eviction).
PLAN_CACHE_SIZE = 256

_parse = lru_cache(maxsize=512)(parse_query)


# ---------------------------------------------------------------------------
# Driver recognition and routing
# ---------------------------------------------------------------------------

_INDEXABLE_AXES = ("child", "descendant", "self")


def _typed_route(manager: IndexManager, driver: Comparison):
    """``(index name, op, typed literal)`` of the configured typed index
    serving this comparison, or ``None``.

    Numeric literals need an index whose plugin implements xs:double
    (general-comparison semantics cast operands to double); quoted
    literals with an order operator need an index of the literal's
    detected temporal type.  ``!=`` has no useful index form.
    """
    if driver.op == "!=":
        return None
    if isinstance(driver.literal, str):
        if driver.op == "=":
            return None  # string equality belongs to the string index
        detected = typed_literal(driver.literal)
        if detected is None:
            return None
        type_name, value = detected
        for name, index in manager.typed_indexes.items():
            if index.plugin.name == type_name:
                return name, driver.op, value
        return None
    for name, index in manager.typed_indexes.items():
        if index.plugin.name == "double":
            return name, driver.op, driver.literal
    return None


def _driver_kind(manager: IndexManager, driver) -> str | None:
    """Which index would serve this atomic predicate, or ``None``."""
    if isinstance(driver, FunctionPredicate):
        index = manager.substring_index
        if index is None:
            return None
        last_test = driver.operand.steps[-1].test
        if not isinstance(last_test, (TextTest, AttributeTest)):
            return None
        if driver.function == "contains":
            usable = index.supports(driver.literal)
        else:
            usable = index.candidates_for_regex(driver.literal) is not None
        return "substring" if usable else None
    if isinstance(driver.literal, str) and driver.op in ("=", "!="):
        if driver.op == "=" and manager.string_index is not None:
            return "string"
        return None
    route = _typed_route(manager, driver)
    return None if route is None else route[0]


def _plan_drivers(manager: IndexManager, predicate) -> list | None:
    """The atomic predicates whose index hits jointly *cover* all
    context nodes satisfying ``predicate``.

    * an indexable atom covers itself;
    * ``and``: any one indexable conjunct covers (the rest is verified);
    * ``or``: every disjunct must be covered (hits are unioned).

    Returns ``None`` when no covering driver set exists.  (This is the
    recognition rule behind the compact ``explain`` summary; the cost
    model may pick a different — cheaper — covering conjunct.)
    """
    if isinstance(predicate, (Comparison, FunctionPredicate)):
        if _driver_kind(manager, predicate) is None:
            return None
        return [predicate]
    if isinstance(predicate, BooleanExpr):
        if predicate.op == "and":
            for child in predicate.children:
                drivers = _plan_drivers(manager, child)
                if drivers is not None:
                    return drivers
            return None
        drivers: list = []
        for child in predicate.children:
            child_drivers = _plan_drivers(manager, child)
            if child_drivers is None:
                return None
            drivers.extend(child_drivers)
        return drivers
    return None


def _estimate_driver(manager: IndexManager, driver) -> float:
    """Expected number of index candidates for one atomic predicate."""
    if isinstance(driver, FunctionPredicate):
        if driver.function == "contains":
            estimate = manager.substring_index.estimate_candidates(
                driver.literal
            )
        else:
            factors = [
                factor
                for factor in literal_factors(driver.literal)
                if len(factor) >= manager.substring_index.q
            ]
            estimate = (
                manager.substring_index.estimate_candidates(
                    max(factors, key=len)
                )
                if factors
                else None
            )
        return float("inf") if estimate is None else float(estimate)
    if isinstance(driver.literal, str) and driver.op in ("=", "!="):
        return manager.statistics("string").estimate_equal()
    route = _typed_route(manager, driver)
    if route is None:
        return float("inf")
    name, op, value = route
    return manager.statistics(name).estimate(op, value)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def _atom_plan(manager: IndexManager, atom) -> PlanNode | None:
    """``IndexLookup → AncestorWalk`` for one atomic predicate, priced;
    ``None`` when no index applies (or reverse/sibling operand axes
    make the backwards walk unsound)."""
    kind = _driver_kind(manager, atom)
    if kind is None:
        return None
    if not all(step.axis in _INDEXABLE_AXES for step in atom.operand.steps):
        return None
    if isinstance(atom, FunctionPredicate) or kind in ("string", "substring"):
        lookup = IndexLookup(kind, atom)
    else:
        name, op, value = _typed_route(manager, atom)
        lookup = IndexLookup(name, atom, op_symbol=op, value=value)
    estimate = _estimate_driver(manager, atom)
    lookup.estimated_rows = estimate
    lookup.estimated_cost = estimate * SCAN_COST_PER_NODE
    walk = AncestorWalk(lookup, atom.operand.steps)
    walk.estimated_rows = estimate
    walk.estimated_cost = lookup.estimated_cost + estimate * SCAN_COST_PER_NODE
    return walk


_LOW_OPS = (">", ">=")
_HIGH_OPS = ("<", "<=")

#: Negation of a bound: a value *fails* ``< h`` exactly when it
#: satisfies ``>= h``, and so on.
_NEGATED_OP = {"<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def _bound_implies(op: str, value, conjunct_op: str, conjunct_value) -> bool:
    """Does every witness of ``op value`` also satisfy
    ``conjunct_op conjunct_value``?  Both ops must be on the same side
    (both lows or both highs)."""
    if op in _LOW_OPS:
        if value > conjunct_value:
            return True
        return value == conjunct_value and not (
            op == ">=" and conjunct_op == ">"
        )
    if value < conjunct_value:
        return True
    return value == conjunct_value and not (
        op == "<=" and conjunct_op == "<"
    )


def _range_walk(
    manager: IndexManager,
    name: str,
    operand,
    driver,
    op: str,
    value,
    proves: tuple,
) -> AncestorWalk:
    """One priced ``IndexLookup → AncestorWalk`` over a typed bound.

    ``proves`` may be empty: the lookup still *generates* candidates
    from ``driver``'s operand path, it just guarantees nothing about
    the original conjuncts (the residual re-check covers them).
    """
    lookup = IndexLookup(
        name, driver, op_symbol=op, value=value, proves=proves
    )
    estimate = manager.statistics(name).estimate(op, value)
    lookup.estimated_rows = estimate
    lookup.estimated_cost = estimate * SCAN_COST_PER_NODE
    walk = AncestorWalk(lookup, operand.steps)
    walk.estimated_rows = estimate
    walk.estimated_cost = lookup.estimated_cost + estimate * SCAN_COST_PER_NODE
    return walk


def _fuse_range_conjuncts(manager: IndexManager, conjuncts):
    """Fuse typed range conjuncts over the same operand path into
    bounded window lookups.

    ``[year >= 2000 and year < 2005]`` becomes a B-tree scan of the
    ``[2000, 2005)`` window instead of an open-ended scan of everything
    ``>= 2000`` whose bulk is then discarded.

    XPath comparisons are existential, so the two conjuncts may be
    witnessed by *different* operand nodes: a context with years 1998
    and 2007 satisfies both yet has nothing inside the window.  The
    window alone is therefore an incomplete candidate generator, and
    each fused plan is the exact decomposition

        window(low, high)  ∪  (walk(¬high) ∩ walk(¬low))

    — a context satisfying both bounds either has a single witness in
    the window, or its low witness fails the high bound (``¬high``)
    while some other node fails the low bound (``¬low``).  The
    complement intersect is usually near-empty; the window does the
    heavy lifting.  Returns ``(fused plans, leftover conjuncts)``;
    every branch ``proves`` the absorbed conjuncts its witnesses
    imply, so the batch executor can skip the scalar re-check
    (:func:`repro.query.vexecutor._residual_predicates`).
    """
    groups: dict = {}
    leftovers = []
    for conjunct in conjuncts:
        route = None
        if (
            isinstance(conjunct, Comparison)
            and conjunct.op in _LOW_OPS + _HIGH_OPS
            and all(
                step.axis in _INDEXABLE_AXES
                for step in conjunct.operand.steps
            )
        ):
            route = _typed_route(manager, conjunct)
        if route is None:
            leftovers.append(conjunct)
            continue
        name, op, value = route
        groups.setdefault((name, conjunct.operand), []).append(
            (conjunct, op, value)
        )
    fused = []
    for (name, operand), members in groups.items():
        lows = [m for m in members if m[1] in _LOW_OPS]
        highs = [m for m in members if m[1] in _HIGH_OPS]
        if not lows or not highs:
            leftovers.extend(atom for atom, _op, _value in members)
            continue
        # Tightest bound per side; at equal values the exclusive op
        # is the tighter one.
        _, low_op, low_value = max(lows, key=lambda m: (m[2], m[1] == ">"))
        _, high_op, high_value = min(
            highs, key=lambda m: (m[2], m[1] == "<=")
        )
        proves = tuple(atom for atom, _op, _value in members)
        lookup = IndexLookup(
            name,
            proves[0],
            op_symbol=low_op,
            value=low_value,
            high_op=high_op,
            high_value=high_value,
            proves=proves,
        )
        histogram = manager.statistics(name).histogram
        estimate = histogram.estimate_range(low_value, high_value)
        if low_op == ">":
            estimate -= histogram.estimate_equal(low_value)
        if high_op == "<":
            estimate -= histogram.estimate_equal(high_value)
        estimate = max(0.0, estimate)
        lookup.estimated_rows = estimate
        lookup.estimated_cost = estimate * SCAN_COST_PER_NODE
        window = AncestorWalk(lookup, operand.steps)
        window.estimated_rows = estimate
        window.estimated_cost = (
            lookup.estimated_cost + estimate * SCAN_COST_PER_NODE
        )
        # Complement: low witness past the high bound, high witness
        # below the low bound.  Each branch proves the same-side
        # conjuncts its witnesses imply (``>= 2005`` implies
        # ``>= 2000``); anything unimplied stays a residual.
        neg_high_op = _NEGATED_OP[high_op]
        neg_low_op = _NEGATED_OP[low_op]
        neg_high = _range_walk(
            manager, name, operand, proves[0], neg_high_op, high_value,
            tuple(
                atom for atom, op, value in lows
                if _bound_implies(neg_high_op, high_value, op, value)
            ),
        )
        neg_low = _range_walk(
            manager, name, operand, proves[0], neg_low_op, low_value,
            tuple(
                atom for atom, op, value in highs
                if _bound_implies(neg_low_op, low_value, op, value)
            ),
        )
        complement = Intersect((neg_high, neg_low))
        complement.estimated_rows = min(
            neg_high.estimated_rows, neg_low.estimated_rows
        )
        complement.estimated_cost = (
            neg_high.estimated_cost + neg_low.estimated_cost
        )
        node = Union((window, complement))
        node.estimated_rows = window.estimated_rows + complement.estimated_rows
        node.estimated_cost = window.estimated_cost + complement.estimated_cost
        fused.append(node)
    return fused, leftovers


def _cover_plan(manager: IndexManager, predicate) -> PlanNode | None:
    """Candidate-context subplan covering ``predicate``, or ``None``.

    ``or`` unions all branches (each must be covered); ``and`` first
    fuses same-path range conjuncts into bounded window scans
    (:func:`_fuse_range_conjuncts`), then picks the *cheapest* covered
    conjunct by estimate and intersects any further conjunct whose own
    candidate walk is comparably cheap — every extra intersection is
    sound (the true result is a subset of each conjunct's candidates)
    and shrinks the verification load.
    """
    if isinstance(predicate, (Comparison, FunctionPredicate)):
        return _atom_plan(manager, predicate)
    if not isinstance(predicate, BooleanExpr):
        return None
    if predicate.op == "and":
        fused, leftovers = _fuse_range_conjuncts(
            manager, predicate.children
        )
        covers = fused + [
            plan
            for plan in (
                _cover_plan(manager, child) for child in leftovers
            )
            if plan is not None
        ]
    else:
        covers = [
            plan
            for plan in (
                _cover_plan(manager, child) for child in predicate.children
            )
            if plan is not None
        ]
    if predicate.op == "and":
        if not covers:
            return None
        covers.sort(key=lambda plan: plan.estimated_rows)
        cheapest = covers[0]
        extras = [
            plan
            for plan in covers[1:]
            if plan.estimated_rows <= 2 * cheapest.estimated_rows + 64
        ]
        if not extras:
            return cheapest
        node = Intersect((cheapest, *extras))
        node.estimated_rows = cheapest.estimated_rows
        node.estimated_cost = sum(p.estimated_cost for p in (cheapest, *extras))
        return node
    if len(covers) != len(predicate.children):
        return None  # a disjunct without an index breaks the cover
    if len(covers) == 1:
        return covers[0]
    node = Union(tuple(covers))
    node.estimated_rows = sum(plan.estimated_rows for plan in covers)
    node.estimated_cost = sum(plan.estimated_cost for plan in covers)
    return node


def build_plan(
    manager: IndexManager,
    doc: Document,
    path: Path,
    use_indexes: bool | str = True,
) -> PlanNode:
    """Compile one document's plan for a parsed path.

    ``use_indexes`` mirrors :func:`query`: ``True`` forces the index
    plan whenever one applies, ``False`` forces the scan, and ``"auto"``
    prices both and keeps the cheaper.
    """
    scan = FullScan(path)
    scan.estimated_rows = float(len(doc))
    scan.estimated_cost = len(doc) * SCAN_COST_PER_NODE
    if use_indexes is False:
        scan.reason = "forced"
        return number_plan(scan)
    if any(
        isinstance(predicate, PositionPredicate)
        for step in path.steps
        for predicate in step.predicates
    ):
        scan.reason = "positional predicate"
        return number_plan(scan)
    if not all(step.axis in _INDEXABLE_AXES for step in path.steps):
        scan.reason = "reverse/sibling axis"
        return number_plan(scan)
    final = path.steps[-1]
    predicate = next(iter(final.predicates), None)
    if predicate is None:
        scan.reason = "no value predicate"
        return number_plan(scan)
    cover = _cover_plan(manager, predicate)
    if cover is None:
        scan.reason = "no index applies"
        return number_plan(scan)
    candidates = cover.estimated_rows
    if use_indexes == "auto" and candidates > SCAN_THRESHOLD * len(doc):
        scan.reason = (
            f"cost: ~{candidates:.0f} candidates > "
            f"{SCAN_THRESHOLD:.0%} of {len(doc)} nodes"
        )
        return number_plan(scan)
    verify = StructuralVerify(cover, path, predicate)
    verify.estimated_rows = candidates
    verify.estimated_cost = (
        cover.estimated_cost
        + candidates * (CANDIDATE_COST - 2 * SCAN_COST_PER_NODE)
    )
    return number_plan(verify)


def _plan_for(
    manager: IndexManager,
    doc: Document,
    text: str,
    path: Path,
    use_indexes: bool | str,
) -> PlanNode:
    """Cached :func:`build_plan`, keyed by query text, document and
    mode; entries are valid for one index epoch only.

    A reader inside a pinned view resolves the epoch from the *view*,
    not the live manager: its plan is cached under — and priced
    against statistics of — the epoch it pinned, so a concurrent
    writer's newer statistics can never leak into it (and its plan
    never poisons the cache for readers at the newer epoch).
    """
    view = active_view()
    epoch = manager.epoch if view is None else view.epoch
    cache = manager._plan_cache
    key = (text, doc.name, use_indexes)
    entry = cache.get(key)
    if entry is not None and entry[0] == epoch:
        manager.metrics.counter("query.plan_cache.hits").inc()
        return entry[1]
    manager.metrics.counter("query.plan_cache.misses").inc()
    plan = build_plan(manager, doc, path, use_indexes)
    with manager._plan_lock:
        if len(cache) >= PLAN_CACHE_SIZE:
            cache.pop(next(iter(cache)))
        cache[key] = (epoch, plan)
    return plan


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def query(
    manager: IndexManager,
    text: str,
    document: str | None = None,
    use_indexes: bool | str = True,
    vectorized: bool | None = None,
) -> list[int]:
    """Evaluate a query; returns matching node ids in document order.

    ``document`` restricts evaluation to one document (a ``doc("...")``
    prefix in the query does the same).  ``use_indexes``:

    * ``True`` — always use an index plan when one applies;
    * ``False`` — always scan (the baseline for speedup benchmarks);
    * ``"auto"`` — cost-based: use the index only when its statistics
      predict fewer candidates than :data:`SCAN_THRESHOLD` of the
      document (an unselective range is cheaper to scan).

    ``vectorized`` picks the executor (``None``: batch by default with
    the ``REPRO_SCALAR_EXEC=1`` escape hatch; see
    :func:`repro.query.executor.execute_plan`).
    """
    if use_indexes not in (True, False, "auto"):
        raise ValueError("use_indexes must be True, False or 'auto'")
    parsed = _parse(text)
    doc_name = parsed.document or document
    if doc_name is not None:
        docs = [manager.store.document(doc_name)]
    else:
        docs = list(manager.store.documents.values())
    metrics = manager.metrics
    results: list[int] = []
    with metrics.timer("query.evaluate").time():
        for doc in docs:
            plan = _plan_for(manager, doc, text, parsed.path, use_indexes)
            pres = execute_plan(manager, doc, plan, vectorized=vectorized)
            results.extend(doc.nid[pre] for pre in pres)
    metrics.counter("query.executed").inc()
    return results


class ExplainReport:
    """One document's plan (tree + estimates, optionally actuals)."""

    def __init__(self, document: str, plan: PlanNode,
                 actuals: dict[int, dict] | None = None):
        self.document = document
        self.plan = plan
        self.actuals = actuals

    def render(self) -> str:
        return (
            f"document {self.document!r}:\n"
            + render_plan(self.plan, self.actuals)
        )

    def to_dict(self) -> dict:
        return {
            "document": self.document,
            "plan": self.plan.to_dict(self.actuals),
        }


class Explanation(str):
    """Structured ``explain`` result.

    The string value keeps the compact legacy summary
    (``"scan"``/``"index(double)"``/...), so existing comparisons keep
    working; :attr:`reports` carries one cost-annotated plan tree per
    document, :meth:`tree` renders them, and :meth:`to_dict` is the
    JSON form.
    """

    reports: list[ExplainReport]

    def __new__(cls, summary: str, reports: list[ExplainReport]):
        obj = super().__new__(cls, summary)
        obj.reports = reports
        return obj

    def tree(self) -> str:
        if not self.reports:
            return "(no documents loaded)"
        return "\n".join(report.render() for report in self.reports)

    def to_dict(self) -> dict:
        return {
            "summary": str(self),
            "documents": [report.to_dict() for report in self.reports],
        }


def explain(
    manager: IndexManager,
    text: str,
    document: str | None = None,
    execute: bool = False,
) -> Explanation:
    """Report the plan a query would use.

    Returns an :class:`Explanation` — comparable to the legacy compact
    strings (``"index(...)"``/``"scan"``) and carrying per-document
    plan trees with cost estimates.  With ``execute=True`` the plans
    are run and each operator's actual row count and time is attached.
    """
    parsed = _parse(text)
    final = parsed.path.steps[-1]
    predicate = next(iter(final.predicates), None)
    summary = "scan"
    if predicate is not None:
        drivers = _plan_drivers(manager, predicate)
        if drivers is not None:
            kinds = [_driver_kind(manager, driver) for driver in drivers]
            if all(kind is not None for kind in kinds):
                summary = "index(" + "+".join(sorted(set(kinds))) + ")"
    doc_name = parsed.document or document
    if doc_name is not None:
        docs = [manager.store.document(doc_name)]
    else:
        docs = list(manager.store.documents.values())
    reports = []
    for doc in docs:
        plan = build_plan(manager, doc, parsed.path, "auto")
        actuals: dict[int, dict] | None = None
        if execute:
            actuals = {}
            execute_plan(manager, doc, plan, actuals)
        reports.append(ExplainReport(doc.name, plan, actuals))
    return Explanation(summary, reports)
