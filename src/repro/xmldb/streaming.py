"""Incremental (streaming) XML parsing.

:class:`StreamingParser` accepts input in arbitrary chunks and yields
the same event stream as :func:`repro.xmldb.parser.parse_events`, so
documents larger than memory-comfortable strings can be shredded from
a file handle (:func:`shred_stream` / ``Store.add_document_file``).

The batch parser stays separate (it is the hot path of the Figure 9
shred baseline and avoids all suspension bookkeeping); both share the
low-level helpers and are cross-checked by tests on identical input.
"""

from __future__ import annotations

import os
from typing import IO, Iterator

from ..errors import XmlSyntaxError
from .document import Document
from .parser import (
    _is_name,
    _parse_attributes,
    _parse_internal_subset,
    unescape,
)

__all__ = ["StreamingParser", "parse_stream", "shred_stream"]

#: Default read size for file streaming.
CHUNK_SIZE = 64 * 1024


class StreamingParser:
    """Push-based XML parser: ``feed`` chunks, receive events.

    Events match :func:`~repro.xmldb.parser.parse_events`.  Input held
    back for incomplete constructs is bounded by the largest single
    token (tag, comment, CDATA section or text run between tags).
    """

    def __init__(self) -> None:
        self._buffer = ""
        self._offset = 0  # consumed characters (error positions)
        self._stack: list[str] = []
        self._seen_root = False
        self._entities: dict[str, str] | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def feed(self, chunk: str) -> list[tuple]:
        """Consume a chunk; return the events it completed."""
        if self._closed:
            raise XmlSyntaxError("feed() after close()")
        self._buffer += chunk
        return list(self._drain(final=False))

    def close(self) -> list[tuple]:
        """Signal end of input; return trailing events.

        Raises :class:`XmlSyntaxError` on truncated documents.
        """
        if self._closed:
            return []
        self._closed = True
        events = list(self._drain(final=True))
        rest = self._buffer
        if rest.strip():
            if self._stack:
                raise self._error(f"unclosed element <{self._stack[-1]}>")
            raise self._error("character data outside the root element")
        if self._stack:
            raise self._error(f"unclosed element <{self._stack[-1]}>")
        if not self._seen_root:
            raise self._error("no root element")
        return events

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------

    def _error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, position=self._offset)

    def _consume(self, upto: int) -> None:
        self._offset += upto
        self._buffer = self._buffer[upto:]

    def _drain(self, final: bool) -> Iterator[tuple]:
        while True:
            buffer = self._buffer
            if not buffer:
                return
            lt = buffer.find("<")
            if lt == -1:
                # Pure text; without a following '<' it may continue in
                # the next chunk (unless this is the end).
                if not final:
                    return
                if self._stack:  # pragma: no cover - close() rejects
                    yield ("text", unescape(buffer, buffer, 0, self._entities))
                    self._consume(len(buffer))
                return
            if lt > 0:
                text = buffer[:lt]
                if self._stack:
                    yield ("text", unescape(buffer, text, 0, self._entities))
                elif text.strip():
                    raise self._error("character data outside the root element")
                self._consume(lt)
                continue
            # buffer starts with '<'
            if len(buffer) < 2:
                if final:
                    raise self._error("truncated markup")
                return
            marker = buffer[1]
            if marker == "/":
                event = self._scan_end_tag(final)
                if event is None:
                    return
                yield event
            elif marker == "?":
                done, event = self._scan_terminated(final, "?>", "processing instruction")
                if not done:
                    return
                body = event[2:-2]
                target, _, data = body.partition(" ")
                if not _is_name(target):
                    raise self._error(f"bad PI target {target!r}")
                if target.lower() != "xml" and self._stack:
                    yield ("pi", target, data.strip())
            elif marker == "!":
                result = self._scan_declaration(final)
                if result is None:
                    return
                if result:
                    yield result
            else:
                events = self._scan_start_tag(final)
                if events is None:
                    return
                yield from events
        # not reached

    def _scan_end_tag(self, final: bool) -> tuple | None:
        gt = self._buffer.find(">", 2)
        if gt == -1:
            if final:
                raise self._error("unterminated end tag")
            return None
        name = self._buffer[2:gt].strip()
        if not self._stack:
            raise self._error(f"unexpected end tag </{name}>")
        if name != self._stack[-1]:
            raise self._error(
                f"mismatched end tag </{name}>, open <{self._stack[-1]}>"
            )
        self._stack.pop()
        self._consume(gt + 1)
        return ("end", name)

    def _scan_terminated(
        self, final: bool, terminator: str, what: str
    ) -> tuple[bool, str]:
        end = self._buffer.find(terminator, 2)
        if end == -1:
            if final:
                raise self._error(f"unterminated {what}")
            return False, ""
        token = self._buffer[: end + len(terminator)]
        self._consume(end + len(terminator))
        return True, token

    def _scan_declaration(self, final: bool):
        buffer = self._buffer
        if buffer.startswith("<!--"):
            close = buffer.find("-->", 4)
            if close == -1:
                if final:
                    raise self._error("unterminated comment")
                return None
            data = buffer[4:close]
            self._consume(close + 3)
            return ("comment", data) if self._stack else False
        if buffer.startswith("<![CDATA["):
            close = buffer.find("]]>", 9)
            if close == -1:
                if final:
                    raise self._error("unterminated CDATA section")
                return None
            if not self._stack:
                raise self._error("CDATA outside the root element")
            data = buffer[9:close]
            self._consume(close + 3)
            return ("text", data)
        if buffer.startswith("<!DOCTYPE"):
            depth = 0
            subset = (-1, -1)
            j = 9
            while j < len(buffer):
                ch = buffer[j]
                if ch == "[":
                    if depth == 0:
                        subset = (j + 1, -1)
                    depth += 1
                elif ch == "]":
                    depth -= 1
                    if depth == 0:
                        subset = (subset[0], j)
                elif ch == ">" and depth <= 0:
                    break
                j += 1
            else:
                if final:
                    raise self._error("unterminated DOCTYPE")
                return None
            if subset != (-1, -1) and subset[1] != -1:
                self._entities = _parse_internal_subset(buffer, *subset)
            self._consume(j + 1)
            return False
        # A partial "<!D..." might still become one of the above.
        if not final and len(buffer) < 9:
            return None
        raise self._error("unrecognised markup declaration")

    def _scan_start_tag(self, final: bool) -> list | None:
        buffer = self._buffer
        gt = 1
        quote = ""
        while gt < len(buffer):
            ch = buffer[gt]
            if quote:
                if ch == quote:
                    quote = ""
            elif ch in "\"'":
                quote = ch
            elif ch == ">":
                break
            gt += 1
        else:
            if final:
                raise self._error("unterminated start tag")
            return None
        self_closing = buffer[gt - 1] == "/"
        body = buffer[1 : gt - 1 if self_closing else gt]
        name_end = 0
        while name_end < len(body) and body[name_end] not in " \t\n\r":
            name_end += 1
        name = body[:name_end]
        if not _is_name(name):
            raise self._error(f"bad element name {name!r}")
        if not self._stack:
            if self._seen_root:
                raise self._error("multiple root elements")
            self._seen_root = True
        attributes = _parse_attributes(
            buffer, 1 + name_end, 1 + len(body), self._entities
        )
        events = [("start", name, attributes)]
        if self_closing:
            events.append(("end", name))
        else:
            self._stack.append(name)
        self._consume(gt + 1)
        return events


def parse_stream(
    stream: IO[str], chunk_size: int = CHUNK_SIZE
) -> Iterator[tuple]:
    """Parse a text stream incrementally into events."""
    parser = StreamingParser()
    while True:
        chunk = stream.read(chunk_size)
        if not chunk:
            break
        yield from parser.feed(chunk)
    yield from parser.close()


def shred_stream(
    name: str,
    stream: IO[str],
    allocate_nid,
    chunk_size: int = CHUNK_SIZE,
) -> Document:
    """Shred a document straight from a stream (constant parse memory)."""
    from .shredder import shred_events

    doc = shred_events(name, parse_stream(stream, chunk_size), allocate_nid)
    try:
        doc.source_bytes = stream.tell()
    except (OSError, AttributeError):  # pragma: no cover - exotic streams
        doc.source_bytes = 0
    return doc


def add_document_file(store, name: str, path: str) -> Document:
    """Shred an XML file into ``store`` without loading it whole."""
    from ..errors import DocumentError

    if name in store.documents:
        raise DocumentError(f"document {name!r} already exists")
    with open(path, encoding="utf-8") as fh:
        doc = shred_stream(name, fh, store.allocate_nid)
    doc.source_bytes = os.path.getsize(path)
    store._register(doc)
    return doc
