"""XML storage substrate: parser, shredder, documents, store, updates."""

from .document import ATTR, COMMENT, DOC, ELEM, KIND_NAMES, PI, TEXT, Document
from .names import Vocabulary
from .parser import parse_events
from .shredder import shred, shred_events
from .store import Store, StructuralChange

__all__ = [
    "ATTR",
    "COMMENT",
    "DOC",
    "ELEM",
    "KIND_NAMES",
    "PI",
    "TEXT",
    "Document",
    "Store",
    "StructuralChange",
    "Vocabulary",
    "parse_events",
    "shred",
    "shred_events",
]
