"""The document store: multiple documents, node ids, and updates.

The store owns the node-id space (nids are immutable surrogates;
``pre`` ranks shift under structural updates) and implements the three
update primitives the paper's maintenance algorithms cover:

* text-value updates (the Figure 10 workload),
* subtree deletion and subtree insertion (Section 5, last paragraph:
  "in the case of a node or subtree deletion ... the algorithm gets as
  input the node that served as the root of the subtree").

Structural updates splice the pre/size/level columns, mirroring the
pre/post-plane updates of MonetDB/XQuery.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import DocumentError
from .document import ATTR, COMMENT, DOC, ELEM, PI, TEXT, Document
from .parser import parse_events
from .shredder import shred, shred_events

__all__ = ["Store", "StructuralChange"]


class StructuralChange:
    """Result of a structural update, consumed by index maintenance.

    Attributes:
        document: The document that changed.
        parent_nid: Parent of the spliced subtree (the node whose value
            recomputation must start, per the paper's update algorithm).
        removed_nids: nids whose index entries must be dropped.
        added_nids: nids that need fresh index entries.
    """

    def __init__(
        self,
        document: Document,
        parent_nid: int,
        removed_nids: list[int],
        added_nids: list[int],
    ):
        self.document = document
        self.parent_nid = parent_nid
        self.removed_nids = removed_nids
        self.added_nids = added_nids


class Store:
    """A collection of shredded documents sharing one nid space."""

    def __init__(self) -> None:
        self.documents: dict[str, Document] = {}
        self._next_nid = 0
        self._doc_of_nid: dict[int, Document] = {}

    # ------------------------------------------------------------------
    # Node-id plumbing
    # ------------------------------------------------------------------

    def allocate_nid(self) -> int:
        # Skip over live nids: adopted documents (shard migration)
        # keep their original ids, which may sit above the counter.
        nid = self._next_nid
        while nid in self._doc_of_nid:
            nid += 1
        self._next_nid = nid + 1
        return nid

    def reserve_nids(self, base: int) -> None:
        """Start allocating at ``base`` (or above, if already past).

        A shard cluster gives every shard a disjoint nid range so a
        document's node ids survive migration unchanged — no two
        engines ever mint the same id.
        """
        self._next_nid = max(self._next_nid, base)

    def node(self, nid: int) -> tuple[Document, int]:
        """Resolve a nid to ``(document, pre)``."""
        doc = self._doc_of_nid.get(nid)
        if doc is None:
            raise DocumentError(f"unknown node id {nid}")
        return doc, doc.pre_of(nid)

    def nids(self) -> Iterator[int]:
        """All live nids, in document order per document."""
        for doc in self.documents.values():
            yield from doc.nid

    # ------------------------------------------------------------------
    # Document management
    # ------------------------------------------------------------------

    def add_document(self, name: str, xml: str) -> Document:
        """Shred serialized XML into the store."""
        if name in self.documents:
            raise DocumentError(f"document {name!r} already exists")
        doc = shred(name, xml, self.allocate_nid)
        self._register(doc)
        return doc

    def add_document_file(self, name: str, path: str) -> Document:
        """Shred an XML file via the streaming parser (constant parse
        memory; the column store itself is in memory)."""
        from .streaming import add_document_file

        return add_document_file(self, name, path)

    def add_document_events(self, name: str, events) -> Document:
        """Shred a pre-parsed event stream (generator workloads)."""
        if name in self.documents:
            raise DocumentError(f"document {name!r} already exists")
        doc = shred_events(name, events, self.allocate_nid)
        self._register(doc)
        return doc

    def adopt_document(self, doc: Document) -> Document:
        """Register a document decoded from *another* engine's nid
        space (shard migration import).

        The incoming nids are kept whenever none collides with a live
        nid here — in a cluster, shard nid ranges are disjoint
        (:meth:`reserve_nids`), so node identity survives migration
        and clients may keep using ids they learned before the move.
        On a collision (engines sharing a range) every node is
        remapped through this store's allocator instead; pre order —
        and with it every pre-addressed column and all query results —
        is untouched either way.
        """
        if doc.name in self.documents:
            raise DocumentError(f"document {doc.name!r} already exists")
        if any(nid in self._doc_of_nid for nid in doc.nid):
            mapping = {old: self.allocate_nid() for old in doc.nid}
            doc.nid = [mapping[old] for old in doc.nid]
            doc.parent_nid = [
                mapping[p] if p >= 0 else p for p in doc.parent_nid
            ]
            doc.rebuild_nid_map()
        self._register(doc)
        return doc

    def _register(self, doc: Document) -> None:
        self.documents[doc.name] = doc
        for nid in doc.nid:
            self._doc_of_nid[nid] = doc

    def document(self, name: str) -> Document:
        doc = self.documents.get(name)
        if doc is None:
            raise DocumentError(f"no document named {name!r}")
        return doc

    def remove_document(self, name: str) -> None:
        doc = self.documents.pop(name, None)
        if doc is None:
            raise DocumentError(f"no document named {name!r}")
        for nid in doc.nid:
            self._doc_of_nid.pop(nid, None)

    # ------------------------------------------------------------------
    # Value updates
    # ------------------------------------------------------------------

    def update_text(self, nid: int, new_text: str) -> None:
        """Replace the text content of a text/attribute/comment/PI node."""
        doc, pre = self.node(nid)
        if doc.kind[pre] not in (TEXT, ATTR, COMMENT, PI):
            raise DocumentError(
                f"node {nid} is a {doc.kind[pre]}-kind node, not text-valued"
            )
        doc.texts[doc.text_id[pre]] = new_text

    def rename(self, nid: int, new_name: str) -> None:
        """Rename an element, attribute or PI target.

        Value indices are unaffected: names are not values (the paper's
        indices are path- and name-agnostic).
        """
        doc, pre = self.node(nid)
        if doc.kind[pre] not in (ELEM, ATTR, PI):
            raise DocumentError(f"node {nid} has no name to change")
        doc.name_id[pre] = doc.vocabulary.intern(new_name)
        doc.invalidate_columns()

    # ------------------------------------------------------------------
    # Structural updates
    # ------------------------------------------------------------------

    def insert_attribute(
        self, owner_nid: int, name: str, value: str
    ) -> StructuralChange:
        """Add an attribute to an element (after its existing ones)."""
        doc, owner_pre = self.node(owner_nid)
        if doc.kind[owner_pre] != ELEM:
            raise DocumentError("attributes can only be added to elements")
        for attr in doc.attributes(owner_pre):
            if doc.name_of(attr) == name:
                raise DocumentError(
                    f"element already has an attribute {name!r}"
                )
        at = owner_pre + 1
        while at < len(doc) and doc.kind[at] == ATTR and doc.parent_nid[at] == owner_nid:
            at += 1
        nid = self.allocate_nid()
        doc.kind.insert(at, ATTR)
        doc.size.insert(at, 0)
        doc.level.insert(at, doc.level[owner_pre] + 1)
        doc.name_id.insert(at, doc.vocabulary.intern(name))
        doc.text_id.insert(at, len(doc.texts))
        doc.texts.append(value)
        doc.nid.insert(at, nid)
        doc.parent_nid.insert(at, owner_nid)
        doc.rebuild_nid_map()
        doc.size[doc.pre_of(owner_nid)] += 1
        for ancestor in doc.ancestors(doc.pre_of(owner_nid)):
            doc.size[ancestor] += 1
        self._doc_of_nid[nid] = doc
        return StructuralChange(doc, owner_nid, [], [nid])

    def delete_subtree(self, nid: int) -> StructuralChange:
        """Remove the subtree rooted at ``nid`` (not the document node)."""
        doc, pre = self.node(nid)
        if doc.kind[pre] == DOC:
            raise DocumentError("cannot delete the document node")
        count = doc.size[pre] + 1
        removed = doc.nid[pre : pre + count]
        parent_nid = doc.parent_nid[pre]
        for ancestor in doc.ancestors(pre):
            doc.size[ancestor] -= count
        for column in (
            doc.kind,
            doc.size,
            doc.level,
            doc.name_id,
            doc.text_id,
            doc.nid,
            doc.parent_nid,
        ):
            del column[pre : pre + count]
        doc.rebuild_nid_map()
        for gone in removed:
            self._doc_of_nid.pop(gone, None)
        return StructuralChange(doc, parent_nid, list(removed), [])

    def insert_xml(
        self, parent_nid: int, fragment: str, before_nid: int | None = None
    ) -> StructuralChange:
        """Insert a parsed XML ``fragment`` under ``parent_nid``.

        The fragment may contain any mix of elements and text.  It is
        inserted as the last children of the parent, or immediately
        before sibling ``before_nid``.
        """
        doc, parent_pre = self.node(parent_nid)
        if doc.kind[parent_pre] not in (DOC, ELEM):
            raise DocumentError("can only insert under document or element nodes")
        # Shred the fragment in isolation (wrapped, so bare text works).
        scratch = shred_events(
            "<fragment>",
            _strip_wrapper(parse_events(f"<w>{fragment}</w>")),
            self.allocate_nid,
        )
        insert_rows = len(scratch) - 1  # minus the scratch doc node
        if insert_rows == 0:
            return StructuralChange(doc, parent_nid, [], [])
        if before_nid is None:
            at = parent_pre + doc.size[parent_pre] + 1
        else:
            at = doc.pre_of(before_nid)
            if doc.kind[at] == ATTR:
                raise DocumentError(
                    "cannot insert children before an attribute node"
                )
            sibling_parent = doc.parent_nid[at]
            if sibling_parent != parent_nid:
                raise DocumentError("before_nid is not a child of parent_nid")
        base_level = doc.level[parent_pre] + 1
        added = scratch.nid[1:]
        # Splice the scratch rows (skipping its document node) into the
        # target columns, re-basing levels and re-rooting parents.
        new_parent = [
            parent_nid if p == scratch.nid[0] else p
            for p in scratch.parent_nid[1:]
        ]
        new_text_id = []
        for slot in scratch.text_id[1:]:
            if slot < 0:
                new_text_id.append(-1)
            else:
                new_text_id.append(len(doc.texts))
                doc.texts.append(scratch.texts[slot])
        new_name_id = [
            -1 if n < 0 else doc.vocabulary.intern(scratch.vocabulary.name_of(n))
            for n in scratch.name_id[1:]
        ]
        new_level = [lvl - 1 + base_level for lvl in scratch.level[1:]]
        doc.kind[at:at] = scratch.kind[1:]
        doc.size[at:at] = scratch.size[1:]
        doc.level[at:at] = new_level
        doc.name_id[at:at] = new_name_id
        doc.text_id[at:at] = new_text_id
        doc.nid[at:at] = added
        doc.parent_nid[at:at] = new_parent
        doc.rebuild_nid_map()
        doc.size[doc.pre_of(parent_nid)] += insert_rows
        for ancestor in doc.ancestors(doc.pre_of(parent_nid)):
            doc.size[ancestor] += insert_rows
        for nid in added:
            self._doc_of_nid[nid] = doc
        return StructuralChange(doc, parent_nid, [], list(added))

    # ------------------------------------------------------------------
    # Storage model
    # ------------------------------------------------------------------

    def byte_size(self) -> int:
        """Modelled database size across all documents."""
        return sum(doc.byte_size() for doc in self.documents.values())

    def total_nodes(self) -> int:
        return sum(len(doc) for doc in self.documents.values())


def _strip_wrapper(events):
    """Drop the outermost start/end pair of a wrapped fragment."""
    events = iter(events)
    first = next(events)
    assert first[0] == "start"
    previous = None
    for event in events:
        if previous is not None:
            yield previous
        previous = event
    assert previous == ("end", "w")
