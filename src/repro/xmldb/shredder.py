"""Shredding: XML text -> pre/size/level document columns.

The paper measures index creation "during shredding, that is when the
document is processed and stored in the database" (Section 6).  This
module is that baseline step: parse the serialized document and fill
the columnar node table.  Index creation is a separate pass so the two
can be timed apart, exactly as Figure 9 reports them.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .document import ATTR, COMMENT, DOC, ELEM, PI, TEXT, Document
from .parser import parse_events

__all__ = ["shred", "shred_events"]


def shred_events(
    name: str,
    events: Iterable[tuple],
    allocate_nid: Callable[[], int],
) -> Document:
    """Build a :class:`Document` from a parser event stream.

    ``allocate_nid`` supplies store-wide immutable node ids.  Adjacent
    text events (text + CDATA) coalesce into one text node, matching
    the XDM requirement that no two text siblings are adjacent.
    """
    doc = Document(name)
    root_nid = allocate_nid()
    doc.append_row(DOC, level=0, nid=root_nid, parent_nid=-1)
    # Stack of (pre, nid) of open containers; starts at the doc node.
    stack: list[tuple[int, int]] = [(0, root_nid)]
    pending_text: list[str] = []

    def flush_text() -> None:
        if pending_text:
            text = "".join(pending_text)
            pending_text.clear()
            doc.append_row(
                TEXT,
                level=len(stack),
                nid=allocate_nid(),
                parent_nid=stack[-1][1],
                text=text,
            )

    for event in events:
        tag = event[0]
        if tag == "text":
            pending_text.append(event[1])
        elif tag == "start":
            flush_text()
            _name, attributes = event[1], event[2]
            nid = allocate_nid()
            pre = doc.append_row(
                ELEM,
                level=len(stack),
                nid=nid,
                parent_nid=stack[-1][1],
                name_id=doc.vocabulary.intern(_name),
            )
            for attr_name, attr_value in attributes:
                doc.append_row(
                    ATTR,
                    level=len(stack) + 1,
                    nid=allocate_nid(),
                    parent_nid=nid,
                    name_id=doc.vocabulary.intern(attr_name),
                    text=attr_value,
                )
            stack.append((pre, nid))
        elif tag == "end":
            flush_text()
            pre, _nid = stack.pop()
            doc.size[pre] = len(doc) - pre - 1
        elif tag == "comment":
            flush_text()
            doc.append_row(
                COMMENT,
                level=len(stack),
                nid=allocate_nid(),
                parent_nid=stack[-1][1],
                text=event[1],
            )
        elif tag == "pi":
            flush_text()
            doc.append_row(
                PI,
                level=len(stack),
                nid=allocate_nid(),
                parent_nid=stack[-1][1],
                name_id=doc.vocabulary.intern(event[1]),
                text=event[2],
            )
        else:  # pragma: no cover - parser yields no other tags
            raise ValueError(f"unknown event {tag!r}")
    # Trailing top-level text occurs in fragments (full documents always
    # end with an "end" event, which flushes).
    flush_text()
    doc.size[0] = len(doc) - 1
    return doc


def shred(name: str, xml: str, allocate_nid: Callable[[], int]) -> Document:
    """Parse and shred serialized XML into a document."""
    doc = shred_events(name, parse_events(xml), allocate_nid)
    doc.source_bytes = len(xml.encode("utf-8"))
    return doc
