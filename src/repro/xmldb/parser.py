"""A from-scratch, non-validating XML 1.0 parser.

Produces a flat event stream (start/text/end/comment/pi) that the
shredder consumes.  Supports elements, attributes, character data,
CDATA sections, comments, processing instructions, the XML declaration,
DOCTYPE with general-entity declarations in an internal subset, the
five predefined entities and numeric character references.

The subset is deliberate: it covers everything the paper's document
corpora contain while keeping the hot path (text and tags) simple.
"""

from __future__ import annotations

import re
from typing import Iterator

from ..errors import XmlSyntaxError

__all__ = ["parse_events", "unescape", "escape_text", "escape_attribute"]

_PREDEFINED = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "apos": "'",
    "quot": '"',
}

_NAME_FORBIDDEN = set(' \t\n\r<>&"\'=/?!')


def _is_name(token: str) -> bool:
    if not token:
        return False
    if token[0].isdigit() or token[0] in ".-":
        return False
    return not any(ch in _NAME_FORBIDDEN for ch in token)


def _line_of(xml: str, pos: int) -> int:
    return xml.count("\n", 0, pos) + 1


def _error(xml: str, pos: int, message: str) -> XmlSyntaxError:
    return XmlSyntaxError(message, position=pos, line=_line_of(xml, pos))


def unescape(
    xml: str, text: str, pos: int = 0, entities: dict[str, str] | None = None
) -> str:
    """Resolve entity and character references in ``text``.

    ``entities`` extends the five predefined entities with declarations
    from the document's internal DTD subset.
    """
    if "&" not in text:
        return text
    parts = []
    i = 0
    while True:
        amp = text.find("&", i)
        if amp == -1:
            parts.append(text[i:])
            return "".join(parts)
        parts.append(text[i:amp])
        end = text.find(";", amp + 1)
        if end == -1 or end - amp > 40:
            raise _error(xml, pos + amp, "unterminated entity reference")
        name = text[amp + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                parts.append(chr(int(name[2:], 16)))
            except (ValueError, OverflowError):
                raise _error(xml, pos + amp, f"bad character reference &{name};")
        elif name.startswith("#"):
            try:
                parts.append(chr(int(name[1:])))
            except (ValueError, OverflowError):
                raise _error(xml, pos + amp, f"bad character reference &{name};")
        else:
            expansion = _PREDEFINED.get(name)
            if expansion is None and entities is not None:
                expansion = entities.get(name)
            if expansion is None:
                raise _error(xml, pos + amp, f"unknown entity &{name};")
            parts.append(expansion)
        i = end + 1


_ENTITY_DECL = re.compile(
    r"<!ENTITY\s+(?!%)([^\s%]+)\s+(\"([^\"]*)\"|'([^']*)')", re.DOTALL
)


def _parse_internal_subset(xml: str, start: int, end: int) -> dict[str, str]:
    """Extract general-entity declarations from an internal DTD subset.

    Parameter entities, external identifiers and everything else in
    the subset are skipped.  Entity values may reference previously
    declared entities and character references; they expand at
    declaration time, as the XML spec prescribes for included entities.
    """
    entities: dict[str, str] = {}
    for match in _ENTITY_DECL.finditer(xml, start, end):
        name = match.group(1)
        raw = match.group(3) if match.group(3) is not None else match.group(4)
        entities[name] = unescape(xml, raw, match.start(), entities)
    return entities


def escape_text(text: str) -> str:
    """Escape character data for serialisation."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for serialisation in double quotes."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )


def _parse_attributes(
    xml: str, start: int, end: int, entities: dict[str, str] | None = None
) -> list[tuple[str, str]]:
    """Parse ``name="value"`` pairs from the tag body ``xml[start:end]``."""
    attributes: list[tuple[str, str]] = []
    seen: set[str] = set()
    i = start
    while i < end:
        ch = xml[i]
        if ch in " \t\n\r":
            i += 1
            continue
        eq = xml.find("=", i, end)
        if eq == -1:
            raise _error(xml, i, "expected '=' in attribute")
        name = xml[i:eq].strip()
        if not _is_name(name):
            raise _error(xml, i, f"bad attribute name {name!r}")
        if name in seen:
            raise _error(xml, i, f"duplicate attribute {name!r}")
        seen.add(name)
        j = eq + 1
        while j < end and xml[j] in " \t\n\r":
            j += 1
        if j >= end or xml[j] not in "\"'":
            raise _error(xml, j, "attribute value must be quoted")
        quote = xml[j]
        close = xml.find(quote, j + 1, end)
        if close == -1:
            raise _error(xml, j, "unterminated attribute value")
        raw = xml[j + 1 : close]
        if "<" in raw:
            raise _error(xml, j, "'<' not allowed in attribute value")
        attributes.append((name, unescape(xml, raw, j + 1, entities)))
        i = close + 1
    return attributes


def parse_events(xml: str) -> Iterator[tuple]:
    """Parse ``xml`` into events.

    Yields tuples:

    * ``("start", name, attributes)`` — attributes is a list of
      ``(name, value)`` pairs in document order;
    * ``("text", data)`` — character data (entity references resolved;
      adjacent CDATA/text may arrive as separate events);
    * ``("end", name)``;
    * ``("comment", data)`` and ``("pi", target, data)``.

    Raises :class:`~repro.errors.XmlSyntaxError` on malformed input,
    including multiple or missing root elements.
    """
    i = 0
    n = len(xml)
    stack: list[str] = []
    seen_root = False
    entities: dict[str, str] | None = None
    while i < n:
        lt = xml.find("<", i)
        if lt == -1:
            trailing = xml[i:]
            if trailing.strip():
                if stack:
                    raise _error(xml, i, f"unclosed element <{stack[-1]}>")
                raise _error(xml, i, "character data outside the root element")
            break
        if lt > i:
            text = xml[i:lt]
            if stack:
                yield ("text", unescape(xml, text, i, entities))
            elif text.strip():
                raise _error(xml, i, "character data outside the root element")
        if lt + 1 >= n:
            raise _error(xml, lt, "truncated markup")
        marker = xml[lt + 1]
        if marker == "/":
            gt = xml.find(">", lt + 2)
            if gt == -1:
                raise _error(xml, lt, "unterminated end tag")
            name = xml[lt + 2 : gt].strip()
            if not stack:
                raise _error(xml, lt, f"unexpected end tag </{name}>")
            if name != stack[-1]:
                raise _error(
                    xml, lt, f"mismatched end tag </{name}>, open <{stack[-1]}>"
                )
            stack.pop()
            yield ("end", name)
            i = gt + 1
        elif marker == "?":
            close = xml.find("?>", lt + 2)
            if close == -1:
                raise _error(xml, lt, "unterminated processing instruction")
            body = xml[lt + 2 : close]
            target, _, data = body.partition(" ")
            if not _is_name(target):
                raise _error(xml, lt, f"bad PI target {target!r}")
            if target.lower() != "xml":  # the XML declaration is dropped
                if stack:
                    yield ("pi", target, data.strip())
                # PIs outside the root are legal; we skip them.
            i = close + 2
        elif marker == "!":
            if xml.startswith("<!--", lt):
                close = xml.find("-->", lt + 4)
                if close == -1:
                    raise _error(xml, lt, "unterminated comment")
                if stack:
                    yield ("comment", xml[lt + 4 : close])
                i = close + 3
            elif xml.startswith("<![CDATA[", lt):
                close = xml.find("]]>", lt + 9)
                if close == -1:
                    raise _error(xml, lt, "unterminated CDATA section")
                if not stack:
                    raise _error(xml, lt, "CDATA outside the root element")
                yield ("text", xml[lt + 9 : close])
                i = close + 3
            elif xml.startswith("<!DOCTYPE", lt):
                # Skip the doctype, collecting internal-subset entities.
                depth = 0
                subset_start = -1
                j = lt + 9
                while j < n:
                    ch = xml[j]
                    if ch == "[":
                        if depth == 0:
                            subset_start = j + 1
                        depth += 1
                    elif ch == "]":
                        depth -= 1
                        if depth == 0 and subset_start >= 0:
                            entities = _parse_internal_subset(
                                xml, subset_start, j
                            )
                    elif ch == ">" and depth <= 0:
                        break
                    j += 1
                if j >= n:
                    raise _error(xml, lt, "unterminated DOCTYPE")
                i = j + 1
            else:
                raise _error(xml, lt, "unrecognised markup declaration")
        else:
            gt = lt + 1
            depth_quote = ""
            while gt < n:
                ch = xml[gt]
                if depth_quote:
                    if ch == depth_quote:
                        depth_quote = ""
                elif ch in "\"'":
                    depth_quote = ch
                elif ch == ">":
                    break
                gt += 1
            if gt >= n:
                raise _error(xml, lt, "unterminated start tag")
            self_closing = xml[gt - 1] == "/"
            body_end = gt - 1 if self_closing else gt
            body = xml[lt + 1 : body_end]
            name_end = 0
            while name_end < len(body) and body[name_end] not in " \t\n\r":
                name_end += 1
            name = body[:name_end]
            if not _is_name(name):
                raise _error(xml, lt, f"bad element name {name!r}")
            if not stack:
                if seen_root:
                    raise _error(xml, lt, "multiple root elements")
                seen_root = True
            attributes = _parse_attributes(
                xml, lt + 1 + name_end, lt + 1 + len(body), entities
            )
            yield ("start", name, attributes)
            if self_closing:
                yield ("end", name)
            else:
                stack.append(name)
            i = gt + 1
    if stack:
        raise _error(xml, n - 1, f"unclosed element <{stack[-1]}>")
    if not seen_root:
        raise _error(xml, 0, "no root element")
