"""Name dictionary (vocabulary) for element/attribute/PI names.

MonetDB/XQuery stores QNames via a dictionary-encoded column; this is
the equivalent: names map to dense integer ids, shared per document.
"""

from __future__ import annotations

__all__ = ["Vocabulary"]


class Vocabulary:
    """Bidirectional name <-> dense-id dictionary."""

    def __init__(self) -> None:
        self._by_name: dict[str, int] = {}
        self._by_id: list[str] = []

    def __len__(self) -> int:
        return len(self._by_id)

    def intern(self, name: str) -> int:
        """Return the id of ``name``, creating one if new."""
        name_id = self._by_name.get(name)
        if name_id is None:
            name_id = len(self._by_id)
            self._by_name[name] = name_id
            self._by_id.append(name)
        return name_id

    def lookup(self, name: str) -> int | None:
        """Id of ``name`` or ``None`` — does not create."""
        return self._by_name.get(name)

    def name_of(self, name_id: int) -> str:
        return self._by_id[name_id]

    def byte_size(self) -> int:
        """Modelled heap size: string bytes + 4-byte offsets."""
        return sum(len(n.encode("utf-8")) + 4 for n in self._by_id)
