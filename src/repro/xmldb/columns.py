"""Numpy views over a document's pre/size/level columns.

The batch query executor (:mod:`repro.query.vexecutor`) exchanges
sorted ``pre`` row-id arrays between operators, and its structural
kernels reduce containment and ancestry to integer arithmetic over
these columns — exactly what the paper's pre/size/level shredding was
chosen for ("a range encoding ... permits efficient depth-first
traversal").  :class:`DocColumns` materialises the Python list columns
of one :class:`~repro.xmldb.document.Document` as contiguous numpy
arrays, plus the derived arrays the kernels need:

* ``parent_pre`` — the parent axis as a pre-plane pointer column
  (computed vectorised from ``parent_nid`` via ``searchsorted``);
* ``end`` — inclusive subtree end per node (``pre + size``), the right
  edge of the containment interval ``anc_pre < pre <= anc_pre + size``;
* ``nid_sorted``/``nid_order`` — the nid plane sorted, so batches of
  index-supplied nids map to owned pres in one ``searchsorted`` instead
  of one dict probe per node.

A ``DocColumns`` snapshot is immutable; the owning document caches one
per *structural* state and drops it on any splice/rename (text-value
updates do not touch these columns, so they keep the cache).  This is
the per-document contiguous pre-range cache that keeps scatter into
the multi-document store array-shaped.
"""

from __future__ import annotations

try:  # numpy is an accelerator, not a hard dependency
    import numpy as np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    np = None

__all__ = ["DocColumns", "HAVE_NUMPY", "EMPTY_PRES"]

HAVE_NUMPY = np is not None

#: Shared empty row-id batch (int64, the pre-plane dtype).
EMPTY_PRES = np.empty(0, dtype=np.int64) if HAVE_NUMPY else None


class DocColumns:
    """Immutable numpy snapshot of one document's structural columns."""

    __slots__ = (
        "kind",
        "size",
        "level",
        "name_id",
        "text_id",
        "nid",
        "parent_pre",
        "end",
        "nid_sorted",
        "nid_order",
        "n",
        "_text_pos",
    )

    def __init__(self, doc) -> None:
        if np is None:  # pragma: no cover - guarded by HAVE_NUMPY
            raise RuntimeError("numpy is required for DocColumns")
        self.kind = np.asarray(doc.kind, dtype=np.int8)
        self.size = np.asarray(doc.size, dtype=np.int64)
        self.level = np.asarray(doc.level, dtype=np.int32)
        self.name_id = np.asarray(doc.name_id, dtype=np.int64)
        self.text_id = np.asarray(doc.text_id, dtype=np.int64)
        self.nid = np.asarray(doc.nid, dtype=np.int64)
        self.n = len(doc.kind)
        self.end = np.arange(self.n, dtype=np.int64) + self.size
        order = np.argsort(self.nid, kind="stable")
        self.nid_sorted = self.nid[order]
        self.nid_order = order
        parent_nid = np.asarray(doc.parent_nid, dtype=np.int64)
        self.parent_pre = self._map_nids(parent_nid)
        self._text_pos = None

    def text_positions(self) -> "np.ndarray":
        """Sorted pres of the document's TEXT nodes (lazy, cached).

        Lets batch verification slice "the text descendants of pre"
        out with two ``searchsorted`` probes over the subtree interval
        instead of iterating the subtree.
        """
        if self._text_pos is None:
            self._text_pos = np.flatnonzero(self.kind == 2).astype(
                np.int64
            )  # 2 == document.TEXT (kept literal: no circular import)
        return self._text_pos

    def _map_nids(self, nids: "np.ndarray") -> "np.ndarray":
        """nid array -> pre array; unknown/negative nids map to -1."""
        if self.n == 0:
            return np.full(len(nids), -1, dtype=np.int64)
        pos = np.searchsorted(self.nid_sorted, nids)
        pos_clipped = np.minimum(pos, self.n - 1)
        found = self.nid_sorted[pos_clipped] == nids
        return np.where(found, self.nid_order[pos_clipped], -1)

    def pres_of_nids(self, nids, assume_unique: bool = False) -> "np.ndarray":
        """Sorted unique pres of the given nids that live in this
        document (nids of other documents simply do not resolve —
        the nid space is store-wide unique).

        ``assume_unique`` skips the dedup when the caller guarantees
        distinct nids (index scans never repeat a nid) — distinct nids
        map to distinct pres, so a plain sort restores the batch
        invariant.
        """
        if not isinstance(nids, (list, np.ndarray)):
            nids = list(nids)
        arr = np.asarray(nids, dtype=np.int64)
        if arr.size == 0:
            return EMPTY_PRES
        pres = self._map_nids(arr)
        pres = pres[pres >= 0]
        if pres.size == 0:
            return EMPTY_PRES
        if assume_unique:
            pres.sort()
            return pres
        return np.unique(pres)

    # ------------------------------------------------------------------
    # Structural primitives
    # ------------------------------------------------------------------

    def parents_of(self, pres: "np.ndarray") -> "np.ndarray":
        """Unique parent pres (document-node parents drop out as -1)."""
        if pres.size == 0:
            return EMPTY_PRES
        parents = self.parent_pre[pres]
        parents = parents[parents >= 0]
        return np.unique(parents)

    def ancestors_of(self, pres: "np.ndarray") -> "np.ndarray":
        """Sorted unique pres of all strict ancestors of ``pres``.

        Climbs the ``parent_pre`` plane one level per iteration with
        per-level dedup, so shared chains are walked once — O(depth)
        array operations total.
        """
        if pres.size == 0:
            return EMPTY_PRES
        collected = []
        cur = self.parents_of(pres)
        while cur.size:
            collected.append(cur)
            cur = self.parents_of(cur)
        if not collected:
            return EMPTY_PRES
        return np.unique(np.concatenate(collected))

    def has_ancestor_in(
        self, anchors: "np.ndarray", pres: "np.ndarray"
    ) -> "np.ndarray":
        """Boolean mask: does ``pres[i]`` have a strict ancestor in
        ``anchors`` (sorted)?  Ancestry is pure interval arithmetic —
        ``anc < pre <= anc + size[anc]`` — evaluated with one
        ``searchsorted`` plus a running maximum over subtree ends:
        because subtree intervals nest or are disjoint, *some* anchor
        at or before ``pre`` contains it iff the prefix-max end at
        ``pre``'s insertion point reaches ``pre``.
        """
        result = np.zeros(pres.size, dtype=bool)
        if anchors.size == 0 or pres.size == 0:
            return result
        prefix_end = np.maximum.accumulate(self.end[anchors])
        idx = np.searchsorted(anchors, pres, side="left")  # anchors < pre
        nonzero = idx > 0
        result[nonzero] = prefix_end[idx[nonzero] - 1] >= pres[nonzero]
        return result

    def parent_in(
        self, anchors: "np.ndarray", pres: "np.ndarray"
    ) -> "np.ndarray":
        """Boolean mask: is ``parent(pres[i])`` a member of sorted
        ``anchors``?"""
        if anchors.size == 0 or pres.size == 0:
            return np.zeros(pres.size, dtype=bool)
        parents = self.parent_pre[pres]
        pos = np.searchsorted(anchors, parents)
        pos_clipped = np.minimum(pos, anchors.size - 1)
        return (anchors[pos_clipped] == parents) & (parents >= 0)
