"""Thread-local read epochs and the text-version overlay.

Structural state (the pre/size/level columns) only changes under the
manager's exclusive latch, and index trees are copy-on-write — but the
text heap is a plain mutable list, and text updates run under a
*shared* latch so readers never block behind them.  To keep a pinned
reader consistent, writers record the *before* value of every slot
they overwrite, stamped with the epoch their change introduces; a
reader pinned at epoch E resolves a slot by taking the before-value of
the first overlay entry with ``epoch > E``, falling back to the live
heap.  This mirrors the undo chains of :mod:`repro.txn.manager`, but
keyed by (document, heap slot) instead of nid.

The reader side is a thread-local: :func:`reading_at` installs the
pinned epoch for the duration of a query, and :meth:`Document.text_of`
consults it with a single ``is None`` check when no overlay exists —
zero cost for single-threaded use.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

__all__ = ["read_epoch", "reading_at", "TextOverlay"]

_tls = threading.local()


def read_epoch() -> int | None:
    """The epoch this thread's reads are pinned at, or None (live)."""
    return getattr(_tls, "epoch", None)


@contextmanager
def reading_at(epoch: int | None) -> Iterator[None]:
    """Pin this thread's text reads at ``epoch`` for the duration."""
    previous = getattr(_tls, "epoch", None)
    _tls.epoch = epoch
    try:
        yield
    finally:
        _tls.epoch = previous


class TextOverlay:
    """Before-values of overwritten text-heap slots, per document.

    ``versions[slot]`` is a list of ``(epoch, before_value)`` entries in
    ascending epoch order, where ``epoch`` is the epoch whose update
    *replaced* ``before_value``.  Readers pinned at E < epoch still see
    ``before_value``; readers at E >= the newest entry's epoch read the
    live heap.  Entries are pruned once no reader is pinned before
    their epoch (:meth:`prune`).
    """

    __slots__ = ("versions",)

    def __init__(self) -> None:
        self.versions: dict[int, list[tuple[int, str]]] = {}

    def record(self, slot: int, epoch: int, before: str) -> None:
        """Remember that ``epoch``'s update replaced ``before``.

        Must be called *before* the heap slot is overwritten, so a
        reader racing with the write finds either the old heap value or
        the overlay entry — both the same string.
        """
        chain = self.versions.get(slot)
        if chain is None:
            self.versions[slot] = [(epoch, before)]
        elif chain[-1][0] != epoch:
            chain.append((epoch, before))
        # Same epoch overwriting the same slot twice: the first
        # before-value is the one a pinned reader must see; keep it.

    def resolve(self, slot: int, live: str, epoch: int) -> str:
        """The value of ``slot`` as of read epoch ``epoch``."""
        chain = self.versions.get(slot)
        if chain:
            for entry_epoch, before in chain:
                if entry_epoch > epoch:
                    return before
        return live

    def prune(self, oldest_pin: int | None) -> None:
        """Drop entries no pinned reader can still need.

        ``oldest_pin`` is the smallest epoch any active reader holds
        (None = no readers): entries with ``epoch <= oldest_pin`` are
        invisible to every current and future reader.
        """
        if not self.versions:
            return
        if oldest_pin is None:
            self.versions.clear()
            return
        dead = []
        for slot, chain in self.versions.items():
            keep = [e for e in chain if e[0] > oldest_pin]
            if keep:
                if len(keep) != len(chain):
                    self.versions[slot] = keep
            else:
                dead.append(slot)
        for slot in dead:
            del self.versions[slot]

    def __len__(self) -> int:
        return sum(len(chain) for chain in self.versions.values())
