"""Shredded XML documents: pre/size/level columns with node accessors.

This is the reproduction's substitute for MonetDB/XQuery's relational
XML storage (paper Section 5): "a range encoding on the documents
nodes, similar to the pre-post encoding" that "permits efficient
depth-first traversal".  A document is a set of parallel columns
indexed by *pre* (depth-first rank):

* ``kind`` — node kind (document/element/text/attribute/comment/PI);
* ``size`` — number of descendants (subtree size excluding self);
* ``level`` — depth (document node at level 0);
* ``name_id`` — vocabulary id for elements, attributes and PI targets;
* ``text_id`` — text-heap slot for text/attribute/comment/PI content;
* ``nid`` — immutable store-wide node id (pre values shift under
  structural updates; nids never do, so indices key on nids);
* ``parent_nid`` — the parent's nid (splice-safe parent axis).

Attribute nodes live *in* the pre plane (as in BaseX), directly after
their owner element at ``level+1`` with ``size`` 0.  They are skipped
by the child/descendant axes and by string-value computation (XDM:
attributes are not children), but are indexed like any other node.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import DocumentError
from .mvcc import read_epoch
from .names import Vocabulary
from .parser import escape_attribute, escape_text

__all__ = ["Document", "DOC", "ELEM", "TEXT", "ATTR", "COMMENT", "PI", "KIND_NAMES"]

DOC = 0
ELEM = 1
TEXT = 2
ATTR = 3
COMMENT = 4
PI = 5

KIND_NAMES = ("document", "element", "text", "attribute", "comment", "pi")

#: Modelled per-node column bytes: kind 1 + size 4 + level 1 + name 4 +
#: text 4 + nid 4 + parent 4 (matching a compact columnar layout).
NODE_ROW_BYTES = 22


class Document:
    """One shredded document.  Construct via the shredder or Store."""

    def __init__(self, name: str, vocabulary: Vocabulary | None = None):
        self.name = name
        self.vocabulary = vocabulary or Vocabulary()
        self.kind: list[int] = []
        self.size: list[int] = []
        self.level: list[int] = []
        self.name_id: list[int] = []
        self.text_id: list[int] = []
        self.nid: list[int] = []
        self.parent_nid: list[int] = []
        self.texts: list[str] = []
        #: MVCC before-value overlay for the text heap; None until the
        #: concurrency controller activates it (see xmldb/mvcc.py).
        self.text_overlay = None
        self._nid_to_pre: dict[int, int] = {}
        #: Lazy nid-map maintenance: structural splices mark the map
        #: dirty instead of eagerly rebuilding the full dict; the next
        #: ``pre_of`` pays the rebuild once (see ``rebuild_nid_map``).
        self._nid_map_dirty = False
        #: Number of actual map rebuilds (observability for the lazy
        #: path; tests assert consecutive splices coalesce into one).
        self.nid_map_rebuilds = 0
        #: Cached :class:`~repro.xmldb.columns.DocColumns` snapshot;
        #: dropped by any structural change or rename.
        self._columns = None
        #: Serialized size of the source XML in bytes (set by the
        #: shredder); used for the paper's Table 1 "Size MB" column.
        self.source_bytes = 0

    # ------------------------------------------------------------------
    # Row building (shredder/update support)
    # ------------------------------------------------------------------

    def append_row(
        self,
        kind: int,
        level: int,
        nid: int,
        parent_nid: int,
        name_id: int = -1,
        text: str | None = None,
    ) -> int:
        """Append one node row; returns its pre value."""
        pre = len(self.kind)
        self.kind.append(kind)
        self.size.append(0)
        self.level.append(level)
        self.name_id.append(name_id)
        if text is None:
            self.text_id.append(-1)
        else:
            self.text_id.append(len(self.texts))
            self.texts.append(text)
        self.nid.append(nid)
        self.parent_nid.append(parent_nid)
        self._nid_to_pre[nid] = pre
        self._columns = None
        return pre

    def rebuild_nid_map(self) -> None:
        """Mark nid -> pre stale after a structural splice.

        The full dict rebuild is deferred to the next :meth:`pre_of`
        (lazy, dirty-flag), so a batch of consecutive splices pays one
        rebuild instead of one per splice.  Also drops the cached
        column snapshot — the pre plane shifted.
        """
        self._nid_map_dirty = True
        self._columns = None

    def _rebuild_nid_map_now(self) -> None:
        self._nid_to_pre = {nid: pre for pre, nid in enumerate(self.nid)}
        self._nid_map_dirty = False
        self.nid_map_rebuilds += 1

    def invalidate_columns(self) -> None:
        """Drop the cached column snapshot (non-splice mutations that
        still touch a structural column, e.g. rename)."""
        self._columns = None

    def columns(self):
        """Numpy snapshot of the structural columns (cached until the
        next structural change); ``None`` when numpy is unavailable."""
        columns = self._columns
        if columns is None:
            from .columns import HAVE_NUMPY, DocColumns

            if not HAVE_NUMPY:
                return None
            if self._nid_map_dirty:
                self._rebuild_nid_map_now()
            columns = DocColumns(self)
            self._columns = columns
        return columns

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of nodes (including the document node and attributes)."""
        return len(self.kind)

    def pre_of(self, nid: int) -> int:
        """Pre rank of node ``nid``; raises on unknown ids."""
        if self._nid_map_dirty:
            self._rebuild_nid_map_now()
        pre = self._nid_to_pre.get(nid)
        if pre is None:
            raise DocumentError(f"unknown node id {nid} in document {self.name!r}")
        return pre

    def text_of(self, pre: int) -> str:
        """Own text content of a text/attribute/comment/PI node.

        A reader pinned at an epoch (see :mod:`repro.xmldb.mvcc`) sees
        the slot's value as of that epoch, not a concurrent writer's.
        """
        slot = self.text_id[pre]
        if slot < 0:
            raise DocumentError(f"node at pre {pre} has no text content")
        overlay = self.text_overlay
        if overlay is not None:
            epoch = read_epoch()
            if epoch is not None:
                return overlay.resolve(slot, self.texts[slot], epoch)
        return self.texts[slot]

    def name_of(self, pre: int) -> str:
        """Element/attribute/PI name."""
        name_id = self.name_id[pre]
        if name_id < 0:
            raise DocumentError(f"node at pre {pre} has no name")
        return self.vocabulary.name_of(name_id)

    def children(self, pre: int) -> Iterator[int]:
        """Child pres (XDM child axis: attributes are skipped)."""
        end = pre + self.size[pre]
        child = pre + 1
        while child <= end:
            if self.kind[child] != ATTR:
                yield child
            child += self.size[child] + 1

    def children_and_attributes(self, pre: int) -> Iterator[int]:
        """All directly-contained rows, attributes included."""
        end = pre + self.size[pre]
        child = pre + 1
        while child <= end:
            yield child
            child += self.size[child] + 1

    def attributes(self, pre: int) -> Iterator[int]:
        """Attribute pres of an element."""
        end = pre + self.size[pre]
        child = pre + 1
        while child <= end and self.kind[child] == ATTR:
            yield child
            child += 1

    def parent(self, pre: int) -> int | None:
        """Parent pre, or None for the document node."""
        parent_nid = self.parent_nid[pre]
        if parent_nid < 0:
            return None
        return self.pre_of(parent_nid)

    def ancestors(self, pre: int) -> Iterator[int]:
        """Ancestor pres from parent up to the document node."""
        current = self.parent(pre)
        while current is not None:
            yield current
            current = self.parent(current)

    def descendants(self, pre: int) -> range:
        """Pre range of the subtree below ``pre`` (excluding it)."""
        return range(pre + 1, pre + self.size[pre] + 1)

    def subtree(self, pre: int) -> range:
        """Pre range of the subtree rooted at ``pre`` (including it)."""
        return range(pre, pre + self.size[pre] + 1)

    def root_element(self) -> int:
        """Pre of the root element."""
        for pre in self.children(0):
            if self.kind[pre] == ELEM:
                return pre
        raise DocumentError(f"document {self.name!r} has no root element")

    # ------------------------------------------------------------------
    # XDM string value
    # ------------------------------------------------------------------

    def string_value(self, pre: int) -> str:
        """XDM string value of a node.

        For document/element nodes this is the concatenation of all
        descendant *text* node values (paper Section 1); attributes,
        comments and PIs return their own content.
        """
        kind = self.kind[pre]
        if kind in (TEXT, ATTR, COMMENT, PI):
            return self.text_of(pre)
        kinds = self.kind
        text_id = self.text_id
        texts = self.texts
        overlay = self.text_overlay
        if overlay is not None:
            epoch = read_epoch()
            if epoch is not None:
                return "".join(
                    overlay.resolve(text_id[d], texts[text_id[d]], epoch)
                    for d in self.descendants(pre)
                    if kinds[d] == TEXT
                )
        return "".join(
            texts[text_id[d]]
            for d in self.descendants(pre)
            if kinds[d] == TEXT
        )

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def serialize(self, pre: int | None = None) -> str:
        """Serialise the subtree at ``pre`` (default: whole document)."""
        if pre is None:
            pre = 0
        out: list[str] = []
        self._serialize_into(pre, out)
        return "".join(out)

    def _serialize_into(self, pre: int, out: list[str]) -> None:
        kind = self.kind[pre]
        if kind == DOC:
            for child in self.children(pre):
                self._serialize_into(child, out)
            return
        if kind == TEXT:
            out.append(escape_text(self.text_of(pre)))
            return
        if kind == COMMENT:
            out.append(f"<!--{self.text_of(pre)}-->")
            return
        if kind == PI:
            data = self.text_of(pre)
            body = f"{self.name_of(pre)} {data}" if data else self.name_of(pre)
            out.append(f"<?{body}?>")
            return
        if kind == ATTR:
            raise DocumentError("attributes cannot be serialised standalone")
        name = self.name_of(pre)
        out.append(f"<{name}")
        children = []
        for child in self.children_and_attributes(pre):
            if self.kind[child] == ATTR:
                out.append(
                    f' {self.name_of(child)}="'
                    f'{escape_attribute(self.text_of(child))}"'
                )
            else:
                children.append(child)
        if not children:
            out.append("/>")
            return
        out.append(">")
        for child in children:
            self._serialize_into(child, out)
        out.append(f"</{name}>")

    # ------------------------------------------------------------------
    # Storage model
    # ------------------------------------------------------------------

    def byte_size(self) -> int:
        """Modelled database size of this document in bytes.

        Column rows plus the text heap (UTF-8 + 4-byte offsets) plus the
        name vocabulary — the quantity the paper's Figure 9 (bottom)
        normalises index sizes against.
        """
        heap = sum(len(t.encode("utf-8")) + 4 for t in self.texts)
        return len(self.kind) * NODE_ROW_BYTES + heap + self.vocabulary.byte_size()

    def check_invariants(self) -> None:
        """Validate pre/size/level consistency (test support)."""
        n = len(self.kind)
        assert n > 0 and self.kind[0] == DOC
        assert self.size[0] == n - 1
        for pre in range(n):
            end = pre + self.size[pre]
            assert end < n
            if pre > 0:
                parent = self.parent(pre)
                assert parent is not None
                assert self.level[pre] == self.level[parent] + 1
                assert parent < pre <= parent + self.size[parent]
            child_span = 0
            for child in self.children_and_attributes(pre):
                child_span += self.size[child] + 1
            assert child_span == self.size[pre]
        assert len({*self.nid}) == n
