"""Command-line interface: an XML database with generic value indices.

Examples::

    repro-xml init db --typed double dateTime --substring
    repro-xml load db persons persons.xml
    repro-xml generate db XMark1 --scale 0.2
    repro-xml stats db
    repro-xml query db '//person[.//age = 42]' --explain
    repro-xml lookup db --string ArthurDent
    repro-xml lookup db --range 40 80
    repro-xml bench figure10

(Also runnable as ``python -m repro.cli ...``.)
"""

from __future__ import annotations

import argparse
import sys

from .core.concurrency import EpochNotRetained
from .database import Database
from .errors import ReproError
from .workloads import DATASETS, collect_stats
from .workloads.stats import DatasetStats

__all__ = ["main"]


def _describe(manager, nid: int) -> str:
    doc, pre = manager.store.node(nid)
    kind = doc.kind[pre]
    if kind == 1:
        label = f"<{doc.name_of(pre)}>"
    elif kind == 2:
        label = f"text {doc.text_of(pre)!r}"
    elif kind == 3:
        label = f"@{doc.name_of(pre)}={doc.text_of(pre)!r}"
    else:
        label = "document"
    return f"  nid {nid} [{doc.name}] {label}"


def _parse_parallel(value: str | None) -> int | str | None:
    """CLI form of the parallel knob: None, "auto" or a worker count."""
    if value is None or value == "none":
        return None
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise ReproError(
            f"--parallel expects a worker count or 'auto', got {value!r}"
        ) from None


def _open(path: str, parallel: int | str | None = None,
          parallel_backend: str = "process",
          concurrent: bool = False,
          group_commit: bool = False,
          group_batch_max: int = 32,
          group_batch_wait_ms: float = 0.0,
          retain_epochs: int = 0) -> Database:
    """Open an existing database (WAL recovery included)."""
    import os

    if not os.path.exists(os.path.join(path, "MANIFEST.json")):
        raise ReproError(f"no database at {path!r}; run 'init' first")
    db = Database(path, parallel=parallel, parallel_backend=parallel_backend,
                  concurrent=concurrent, group_commit=group_commit,
                  group_batch_max=group_batch_max,
                  group_batch_wait_ms=group_batch_wait_ms,
                  retain_epochs=retain_epochs)
    if db.recovered_records:
        print(f"(recovered {db.recovered_records} update(s) from the WAL)")
    report = db.recovery
    details = []
    if report.skipped_epoch:
        details.append(f"{report.skipped_epoch} already-checkpointed "
                       "record(s) skipped")
    if report.rejected_crc:
        details.append(f"{report.rejected_crc} record(s) rejected by CRC")
    if report.torn_tail:
        details.append("torn tail discarded")
    if details:
        print(f"(WAL recovery: {'; '.join(details)})")
    return db


def cmd_init(args) -> int:
    Database(
        args.db,
        string=not args.no_string,
        typed=tuple(args.typed),
        substring=args.substring,
    ).close()
    print(f"initialised empty database at {args.db}")
    return 0


def _is_cluster(path: str) -> bool:
    from .shard.manifest import ShardingManifest

    return ShardingManifest.exists(path)


def _open_cluster(path: str):
    """Spin up the workers of an existing shard cluster directory."""
    from .shard import ShardCluster

    return ShardCluster(path).start()


def cmd_load(args) -> int:
    with open(args.file, encoding="utf-8") as fh:
        xml = fh.read()
    if _is_cluster(args.db):
        with _open_cluster(args.db) as cluster:
            shard = cluster.load(args.name, xml)
        print(f"loaded {args.name!r} onto shard {shard}")
        return 0
    with _open(args.db, _parse_parallel(args.parallel),
               args.parallel_backend) as db:
        doc = db.load(args.name, xml)
    print(f"loaded {args.name!r}: {len(doc):,} nodes")
    return 0


def cmd_generate(args) -> int:
    spec = DATASETS.get(args.dataset)
    if spec is None:
        print(f"unknown dataset {args.dataset!r}; one of {sorted(DATASETS)}",
              file=sys.stderr)
        return 2
    if _is_cluster(args.db):
        with _open_cluster(args.db) as cluster:
            shard = cluster.load(args.dataset, spec.build(args.scale))
        print(f"generated {args.dataset} onto shard {shard}")
        return 0
    with _open(args.db, _parse_parallel(args.parallel),
               args.parallel_backend) as db:
        doc = db.load(args.dataset, spec.build(args.scale))
    print(f"generated {args.dataset}: {len(doc):,} nodes")
    return 0


def cmd_stats(args) -> int:
    with _open(args.db) as db:
        print(DatasetStats.header())
        for name, doc in db.store.documents.items():
            print(collect_stats(doc, name).row())
        print("\nindex sizes (modelled bytes):")
        for name, size in db.manager.index_sizes().items():
            print(f"  {name:>10}: {size:,}")
        print(f"  {'database':>10}: {db.store.byte_size():,}")
        metrics = db.metrics()
        if metrics["counters"]:
            print("\nruntime counters:")
            for name, value in metrics["counters"].items():
                print(f"  {name:>24}: {value:,}")
        if metrics["timers"]:
            print("\nruntime timers:")
            for name, timer in metrics["timers"].items():
                print(
                    f"  {name:>24}: n={timer['count']:,} "
                    f"mean={timer['mean_s'] * 1000:.3f}ms "
                    f"max={timer['max_s'] * 1000:.3f}ms"
                )
        if metrics.get("histograms"):
            print("\nruntime histograms:")
            for name, histogram in metrics["histograms"].items():
                print(
                    f"  {name:>24}: n={histogram['count']:,} "
                    f"mean={histogram['mean']:.1f} "
                    f"max={histogram['max']:.0f}"
                )
    return 0


def _parse_addr(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ReproError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def cmd_query(args) -> int:
    if args.connect is not None:
        from .client import Client

        host, port = _parse_addr(args.connect)
        client = Client(host, port)
        try:
            if args.explain:
                print(client.explain(args.xpath)["summary"])
            rows = client.query_rows(args.xpath,
                                     use_indexes=not args.no_index,
                                     as_of=args.as_of)
        finally:
            client.close()
        suffix = f" as of epoch {args.as_of}" if args.as_of is not None \
            else ""
        print(f"{len(rows)} hit(s){suffix}")
        for doc, pre, nid in rows[: args.limit]:
            print(f"  [{doc}] pre {pre} (nid {nid})")
        if len(rows) > args.limit:
            print(f"  ... and {len(rows) - args.limit} more")
        return 0
    if args.db is None:
        raise ReproError("query needs a DB path or --connect HOST:PORT")
    if _is_cluster(args.db):
        with _open_cluster(args.db) as cluster:
            if args.explain:
                print(cluster.explain(args.xpath)["summary"])
            rows = cluster.query(args.xpath,
                                 use_indexes=not args.no_index)
        print(f"{len(rows)} hit(s)")
        for doc, pre, nid in rows[: args.limit]:
            print(f"  [{doc}] pre {pre} (shard nid {nid})")
        if len(rows) > args.limit:
            print(f"  ... and {len(rows) - args.limit} more")
        return 0
    manager = _open(args.db, concurrent=args.as_of is not None)
    if args.explain:
        explanation = manager.explain(args.xpath)
        print(f"plan: {explanation}")
        print(explanation.tree())
    try:
        hits = manager.query(args.xpath, use_indexes=not args.no_index,
                             as_of=args.as_of)
    except EpochNotRetained as exc:
        manager.close(checkpoint=False)
        raise ReproError(
            f"{exc} (epochs are per-process: as-of queries usually "
            "target a live server via --connect)"
        ) from None
    print(f"{len(hits)} hit(s)")
    for nid in hits[: args.limit]:
        print(_describe(manager, nid))
    if len(hits) > args.limit:
        print(f"  ... and {len(hits) - args.limit} more")
    manager.close(checkpoint=False)
    return 0


def cmd_lookup(args) -> int:
    manager = _open(args.db)
    if args.string is not None:
        hits = list(manager.lookup_string(args.string))
    elif args.double is not None:
        hits = list(manager.lookup_typed_equal("double", args.double))
    elif args.range is not None:
        low, high = args.range
        hits = [n for _v, n in manager.lookup_typed_range("double", low, high)]
    elif args.contains is not None:
        hits = list(manager.lookup_contains(args.contains))
    elif args.regex is not None:
        hits = list(manager.lookup_regex(args.regex))
    else:
        print("choose one of --string/--double/--range/--contains/--regex",
              file=sys.stderr)
        manager.close(checkpoint=False)
        return 2
    print(f"{len(hits)} hit(s)")
    for nid in hits[: args.limit]:
        print(_describe(manager, nid))
    manager.close(checkpoint=False)
    return 0


def cmd_update(args) -> int:
    db = _open(args.db, concurrent=args.concurrent,
               group_commit=args.group_commit,
               group_batch_max=args.group_batch_max,
               group_batch_wait_ms=args.group_batch_wait_ms)
    recomputed = db.update_text(args.nid, args.text)
    db.close(checkpoint=False)  # the WAL carries the update
    print(f"updated node {args.nid}; {recomputed} index entries recomputed")
    return 0


def cmd_checkpoint(args) -> int:
    with _open(args.db) as db:
        db.checkpoint()
    print("checkpoint complete; WAL truncated")
    return 0


def cmd_verify(args) -> int:
    with _open(args.db) as db:
        report = db.verify()
    print(report.summary())
    return 0 if report.ok else 1


def cmd_serve(args) -> int:
    import asyncio

    from .server import serve

    if args.shards is not None or _is_cluster(args.db):
        return _serve_cluster(args)
    db = _open(args.db, concurrent=True,
               group_commit=not args.no_group_commit,
               group_batch_max=args.group_batch_max,
               group_batch_wait_ms=args.group_batch_wait_ms,
               retain_epochs=args.retain_epochs)
    try:
        asyncio.run(serve(
            db, args.host, args.port,
            max_pending_updates=args.max_pending_updates,
            read_workers=args.read_workers,
            write_workers=args.write_workers,
        ))
    except KeyboardInterrupt:
        pass
    print("server drained; WAL closed")
    return 0


def _serve_cluster(args) -> int:
    """``serve --shards N``: one engine process per shard, served on
    per-shard ports (clients route/scatter via ShardCluster or talk to
    a shard directly — every port speaks the full wire protocol)."""
    import signal
    import threading

    from .shard import ShardCluster

    cluster = ShardCluster(
        args.db, shards=args.shards,
        group_commit=not args.no_group_commit,
    )
    cluster.start()
    for shard, (host, port) in cluster.addresses().items():
        print(f"shard {shard}: {host}:{port}")
    print(f"serving {cluster.manifest.shards} shard(s) at {args.db!r} "
          "(SIGTERM drains)")
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, lambda *_: stop.set())
        except ValueError:
            break  # non-main thread (tests): stopped programmatically
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    cluster.stop()
    print("cluster drained; WALs closed")
    return 0


def cmd_shard_init(args) -> int:
    from .shard import ShardCluster

    cluster = ShardCluster(
        args.root, shards=args.shards,
        config={
            "string": not args.no_string,
            "typed": list(args.typed),
            "substring": args.substring,
        },
    )
    cluster.create_shards()
    print(f"initialised {args.shards}-shard cluster at {args.root}")
    return 0


def cmd_migrate(args) -> int:
    if not _is_cluster(args.db):
        print(f"error: {args.db!r} is not a shard cluster", file=sys.stderr)
        return 1
    with _open_cluster(args.db) as cluster:
        report = cluster.migrate_document(args.name, args.shard,
                                          method=args.method)
    if not report["moved"]:
        print(f"{args.name!r} already on shard {args.shard}")
        return 0
    print(f"moved {args.name!r}: shard {report['src']} -> {report['dst']} "
          f"({report['bytes']} bytes, {report['duration_s'] * 1e3:.1f} ms "
          f"total, updates paused {report['pause_s'] * 1e3:.1f} ms)")
    return 0


def cmd_rebalance(args) -> int:
    if not _is_cluster(args.db):
        print(f"error: {args.db!r} is not a shard cluster", file=sys.stderr)
        return 1
    with _open_cluster(args.db) as cluster:
        result = cluster.rebalance(weight=args.weight,
                                   apply=not args.dry_run,
                                   method=args.method)
    for name, dst in result["moves"]:
        verb = "would move" if args.dry_run else "moved"
        print(f"{verb} {name!r} -> shard {dst}")
    if not result["moves"]:
        print("placement already balanced")
    before, after = result["loads_before"], result["loads_after"]
    for shard in sorted(after):
        print(f"shard {shard}: {before.get(shard, 0)} -> "
              f"{after[shard]} {args.weight}")
    return 0


def cmd_resize(args) -> int:
    if not _is_cluster(args.db):
        print(f"error: {args.db!r} is not a shard cluster", file=sys.stderr)
        return 1
    with _open_cluster(args.db) as cluster:
        result = cluster.resize(args.shards, method=args.method)
    for move in result["moves"]:
        name, *rest = move
        print(f"moved {name!r} -> shard {rest[-1]}")
    print(f"cluster now has {result['shards']} shard(s)")
    return 0


def cmd_bench(args) -> int:
    from .bench import concurrent, elastic, figure9, figure10, figure11, \
        parallel, repl, serve, shard, table1

    module = {
        "table1": table1,
        "figure9": figure9,
        "figure10": figure10,
        "figure11": figure11,
        "parallel": parallel,
        "concurrent": concurrent,
        "serve": serve,
        "shard": shard,
        "repl": repl,
        "elastic": elastic,
    }[args.experiment]
    module.main()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-xml",
        description="Generic and updatable XML value indices (EDBT 2009)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create an empty database directory")
    p.add_argument("db")
    p.add_argument("--typed", nargs="*", default=["double"],
                   help="typed range indices to maintain")
    p.add_argument("--no-string", action="store_true",
                   help="skip the string equality index")
    p.add_argument("--substring", action="store_true",
                   help="maintain the q-gram substring index")
    p.set_defaults(fn=cmd_init)

    p = sub.add_parser("load", help="shred and index an XML file")
    p.add_argument("db")
    p.add_argument("name")
    p.add_argument("file")
    _add_parallel_options(p)
    p.set_defaults(fn=cmd_load)

    p = sub.add_parser("generate", help="generate a catalog dataset")
    p.add_argument("db")
    p.add_argument("dataset")
    p.add_argument("--scale", type=float, default=0.1)
    _add_parallel_options(p)
    p.set_defaults(fn=cmd_generate)

    p = sub.add_parser("stats", help="Table 1 statistics per document")
    p.add_argument("db")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("query", help="evaluate an XPath query")
    p.add_argument("db", nargs="?", default=None,
                   help="database directory (omit with --connect)")
    p.add_argument("xpath")
    p.add_argument("--no-index", action="store_true")
    p.add_argument("--explain", action="store_true")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--as-of", type=int, default=None, dest="as_of",
                   metavar="EPOCH",
                   help="time-travel: answer at a retained epoch "
                        "(docs/replication.md)")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="query a live server instead of opening a "
                        "directory")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("lookup", help="direct index lookups")
    p.add_argument("db")
    p.add_argument("--string")
    p.add_argument("--double", type=float)
    p.add_argument("--range", nargs=2, type=float, metavar=("LOW", "HIGH"))
    p.add_argument("--contains")
    p.add_argument("--regex")
    p.add_argument("--limit", type=int, default=10)
    p.set_defaults(fn=cmd_lookup)

    p = sub.add_parser("update", help="update a text node's value")
    p.add_argument("db")
    p.add_argument("nid", type=int)
    p.add_argument("text")
    _add_serving_options(p)
    p.set_defaults(fn=cmd_update)

    p = sub.add_parser(
        "checkpoint", help="snapshot the database and truncate the WAL"
    )
    p.add_argument("db")
    p.set_defaults(fn=cmd_checkpoint)

    p = sub.add_parser(
        "verify", help="re-derive and cross-check all index contents"
    )
    p.add_argument("db")
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser(
        "serve", help="serve the database over TCP (docs/serving.md)"
    )
    p.add_argument("db")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7307)
    p.add_argument("--no-group-commit", action="store_true",
                   help="disable group-commit WAL batching (on by default "
                        "for serving)")
    p.add_argument("--group-batch-max", type=int, default=32,
                   help="most records per group-commit batch")
    p.add_argument("--group-batch-wait-ms", type=float, default=0.0,
                   help="leader linger before committing a non-full batch")
    p.add_argument("--max-pending-updates", type=int, default=64,
                   help="admission bound on in-flight updates "
                        "(beyond it: busy + retry_after_ms)")
    p.add_argument("--read-workers", type=int, default=8,
                   help="reader thread-pool size")
    p.add_argument("--write-workers", type=int, default=8,
                   help="writer thread-pool size")
    p.add_argument("--shards", type=int, default=None,
                   help="serve a shard cluster: one engine process per "
                        "shard (docs/sharding.md)")
    p.add_argument("--retain-epochs", type=int, default=0,
                   dest="retain_epochs",
                   help="time-travel window for as_of queries "
                        "(docs/replication.md)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "shard-init",
        help="create an empty N-shard cluster directory (docs/sharding.md)",
    )
    p.add_argument("root")
    p.add_argument("--shards", type=int, required=True)
    p.add_argument("--typed", nargs="*", default=["double"],
                   help="typed range indices to maintain")
    p.add_argument("--no-string", action="store_true",
                   help="skip the string equality index")
    p.add_argument("--substring", action="store_true",
                   help="maintain the q-gram substring index")
    p.set_defaults(fn=cmd_shard_init)

    p = sub.add_parser(
        "migrate",
        help="move one document to another shard, online "
             "(docs/sharding.md, Elastic shards)",
    )
    p.add_argument("db")
    p.add_argument("name")
    p.add_argument("shard", type=int)
    p.add_argument("--method", default="snapshot",
                   choices=["snapshot", "direct"],
                   help="snapshot: replicate then cut over (short pause); "
                        "direct: pause for the whole copy")
    p.set_defaults(fn=cmd_migrate)

    p = sub.add_parser(
        "rebalance",
        help="re-level document placement across shards",
    )
    p.add_argument("db")
    p.add_argument("--weight", default="bytes", choices=["bytes", "nodes"],
                   help="per-document load measure")
    p.add_argument("--method", default="direct",
                   choices=["snapshot", "direct"])
    p.add_argument("--dry-run", action="store_true",
                   help="print the plan without migrating")
    p.set_defaults(fn=cmd_rebalance)

    p = sub.add_parser(
        "resize",
        help="grow or shrink the cluster's shard count",
    )
    p.add_argument("db")
    p.add_argument("shards", type=int)
    p.add_argument("--method", default="direct",
                   choices=["snapshot", "direct"])
    p.set_defaults(fn=cmd_resize)

    p = sub.add_parser("bench", help="run a paper experiment")
    p.add_argument("experiment",
                   choices=["table1", "figure9", "figure10", "figure11",
                            "parallel", "concurrent", "serve", "shard",
                            "repl", "elastic"])
    p.set_defaults(fn=cmd_bench)
    return parser


def _add_serving_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--concurrent", action="store_true",
                   help="enable snapshot-isolated concurrent serving")
    p.add_argument("--group-commit", action="store_true",
                   help="batch WAL fsyncs across concurrent writers")
    p.add_argument("--group-batch-max", type=int, default=32,
                   help="most records per group-commit batch")
    p.add_argument("--group-batch-wait-ms", type=float, default=0.0,
                   help="leader linger before committing a non-full batch")


def _add_parallel_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--parallel", default=None, metavar="N|auto",
                   help="parallel index creation: worker count or 'auto'")
    p.add_argument("--parallel-backend", default="process",
                   choices=["process", "thread"],
                   help="worker pool backend for --parallel")


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
