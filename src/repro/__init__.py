"""repro: generic and updatable XML value indices (EDBT 2009 reproduction).

Public API re-exported here:

* :class:`IndexManager` — build/maintain/query the indices over a store;
* :class:`Store` / :class:`Document` — the XML storage substrate;
* hashing (`hash_string`, `combine`) and FSM (`get_plugin`) primitives;
* :func:`query` — the XPath-subset evaluator (index-accelerated).
"""

from .core import IndexManager, StringIndex, TypedIndex, combine, hash_string
from .database import Database
from .core.fsm import get_plugin
from .errors import ReproError
from .xmldb import Document, Store

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Document",
    "IndexManager",
    "ReproError",
    "Store",
    "StringIndex",
    "TypedIndex",
    "combine",
    "get_plugin",
    "hash_string",
    "__version__",
]
