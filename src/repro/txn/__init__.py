"""Transactions over the value indices (paper Section 5.1).

:class:`TransactionManager` is the paper's design — optimistic,
ancestor-lock-free, relying on the commutativity of ``C``.
:class:`LockingTransactionManager` is the naive ancestor-locking
baseline the paper argues against, kept for the ablation benchmarks.
"""

from .locking import LockingTransaction, LockingTransactionManager
from .manager import Transaction, TransactionManager

__all__ = [
    "LockingTransaction",
    "LockingTransactionManager",
    "Transaction",
    "TransactionManager",
]
