"""Ancestor-locking transactions — the baseline Section 5.1 rejects.

"A general challenge in XML value indexing is that the value of a node
is (potentially) influenced by all its descendants.  This implies that
each update may impact the root node, and locking the root for each
transaction can easily become a bottleneck."

This manager implements that naive discipline faithfully: a text-node
write takes *exclusive* locks on the node and every ancestor up to the
document node (strict two-phase locking — locks are held until commit
or abort), and the write is applied in place with an undo log.  Any
two transactions on the same document therefore serialise on the root
lock, however disjoint their writes — which is exactly what the
benchmarks show against the optimistic, commutativity-based
:class:`~repro.txn.manager.TransactionManager`.

Deadlocks are avoided by acquiring each write's lock set in global nid
order and by releasing-and-retrying when a later lock cannot be taken
within a bounded wait.
"""

from __future__ import annotations

import threading
import time

from ..core.manager import IndexManager
from ..errors import TransactionStateError

__all__ = ["LockingTransactionManager", "LockingTransaction"]

_ACQUIRE_TIMEOUT = 0.05


class LockingTransactionManager:
    """Hands out strict-2PL transactions with ancestor locking."""

    def __init__(self, index_manager: IndexManager):
        self.index_manager = index_manager
        self._registry_mutex = threading.Lock()
        self._locks: dict[int, threading.Lock] = {}
        # Contention statistics (the root-bottleneck evidence).
        self.stats_mutex = threading.Lock()
        self.lock_acquisitions = 0
        self.lock_retries = 0
        self.lock_wait_seconds = 0.0

    def _lock_for(self, nid: int) -> threading.Lock:
        with self._registry_mutex:
            lock = self._locks.get(nid)
            if lock is None:
                lock = threading.Lock()
                self._locks[nid] = lock
            return lock

    def begin(self) -> "LockingTransaction":
        return LockingTransaction(self)


class LockingTransaction:
    """One strict-2PL transaction: locks held until commit/abort."""

    def __init__(self, manager: LockingTransactionManager):
        self._manager = manager
        self._held: dict[int, threading.Lock] = {}
        self._undo: list[tuple[int, str]] = []
        self._touched: list[int] = []
        self.status = "active"

    def _require_active(self) -> None:
        if self.status != "active":
            raise TransactionStateError(f"transaction is {self.status}")

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------

    def _lock_set_for(self, nid: int) -> list[int]:
        """The node plus all its ancestors — the paper's problem case."""
        store = self._manager.index_manager.store
        doc, pre = store.node(nid)
        wanted = {nid}
        wanted.update(doc.nid[ancestor] for ancestor in doc.ancestors(pre))
        return sorted(wanted)

    def _acquire(self, nids: list[int]) -> None:
        """Take exclusive locks in global nid order, retrying from
        scratch on timeout (deadlock avoidance)."""
        manager = self._manager
        missing = [nid for nid in nids if nid not in self._held]
        start = time.perf_counter()
        while True:
            taken: list[int] = []
            for nid in missing:
                lock = manager._lock_for(nid)
                if lock.acquire(timeout=_ACQUIRE_TIMEOUT):
                    taken.append(nid)
                    self._held[nid] = lock
                else:
                    # Back off completely and retry: classic
                    # wait-die-free timeout scheme.
                    for got in taken:
                        self._held.pop(got).release()
                    with manager.stats_mutex:
                        manager.lock_retries += 1
                    break
            else:
                with manager.stats_mutex:
                    manager.lock_acquisitions += len(missing)
                    manager.lock_wait_seconds += time.perf_counter() - start
                return

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def update_text(self, nid: int, new_text: str) -> None:
        """Lock node + ancestors, then write in place (undo-logged)."""
        self._require_active()
        store = self._manager.index_manager.store
        doc, pre = store.node(nid)
        if doc.text_id[pre] < 0:
            raise TransactionStateError(f"node {nid} has no text value")
        self._acquire(self._lock_set_for(nid))
        self._undo.append((nid, doc.text_of(pre)))
        store.update_text(nid, new_text)
        self._touched.append(nid)

    def read_text(self, nid: int) -> str:
        self._require_active()
        doc, pre = self._manager.index_manager.store.node(nid)
        return doc.text_of(pre)

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------

    def _release_all(self) -> None:
        for lock in self._held.values():
            lock.release()
        self._held.clear()

    def commit(self) -> None:
        """Run index maintenance under the held locks, then release."""
        self._require_active()
        try:
            if self._touched:
                from ..core.updater import apply_text_updates

                apply_text_updates(
                    self._manager.index_manager.store,
                    self._touched,
                    self._manager.index_manager.indexes,
                )
                self._manager.index_manager.bump_epoch()
        finally:
            self._release_all()
        self.status = "committed"

    def abort(self) -> None:
        """Undo in-place writes, then release."""
        self._require_active()
        store = self._manager.index_manager.store
        try:
            for nid, old_text in reversed(self._undo):
                store.update_text(nid, old_text)
            if self._touched:
                from ..core.updater import apply_text_updates

                apply_text_updates(
                    store, self._touched, self._manager.index_manager.indexes
                )
                self._manager.index_manager.bump_epoch()
        finally:
            self._release_all()
        self.status = "aborted"

    def __enter__(self) -> "LockingTransaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self.status != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()
