"""Optimistic transactions over the value indices (paper Section 5.1).

The paper's observation: every text update changes the hash of *all*
its ancestors, so naive locking would serialise every transaction on
the root.  But because the combination function ``C`` is associative
and ancestor recomputation folds over the *current* children values,
ancestor maintenance commutes across transactions that touch different
text nodes — so no ancestor locks are needed at all.  "A committing
transaction should re-read the latest value of all ancestor nodes of an
update (and their direct children, per the update algorithm) to
recompute their new hash values."

This module implements exactly that discipline:

* transactions buffer text writes locally (no store mutation, no locks);
* commit validates only the *written text nodes themselves* against
  versions committed after the transaction began (first-committer-wins
  on true write-write conflicts);
* the winning writes are applied and ancestors recomputed from live
  index state — re-reading "the latest value ... of their direct
  children" — under a short structural mutex that stands in for the
  engine's latch (Python-level concurrency).

The result is serialisable for disjoint write sets, which the tests
check by comparing interleaved commits against a from-scratch rebuild.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import nullcontext
from typing import Iterator

from ..core.manager import IndexManager
from ..errors import TransactionConflict, TransactionStateError

__all__ = ["TransactionManager", "Transaction"]


class TransactionManager:
    """Hands out transactions over one :class:`IndexManager`."""

    def __init__(self, index_manager: IndexManager):
        self.index_manager = index_manager
        self._commit_counter = itertools.count(1)
        self._clock = 0
        # nid -> commit timestamp of the last committed write.
        self._versions: dict[int, int] = {}
        # nid -> [(commit_ts, value *before* that commit)], ascending —
        # the undo chain that gives active transactions snapshot reads.
        self._history: dict[int, list[tuple[int, str]]] = {}
        # start_ts of active transactions (multiset), for GC of history.
        self._active: dict[int, int] = {}
        self._mutex = threading.Lock()

    def begin(self) -> "Transaction":
        """Start a transaction snapshotted at the current commit clock."""
        with self._mutex:
            txn = Transaction(self, self._clock)
            self._active[txn.start_ts] = self._active.get(txn.start_ts, 0) + 1
            return txn

    def _finished(self, txn: "Transaction") -> None:
        with self._mutex:
            remaining = self._active.get(txn.start_ts, 0) - 1
            if remaining > 0:
                self._active[txn.start_ts] = remaining
            else:
                self._active.pop(txn.start_ts, None)
            self._prune_history()

    def _prune_history(self) -> None:
        """Drop undo versions no active transaction can still need.

        A version ``(ts, before)`` serves transactions with
        ``start_ts < ts``; once the oldest active snapshot is >= ts it
        is garbage.  Caller holds the mutex.
        """
        oldest = min(self._active, default=self._clock)
        for nid in list(self._history):
            chain = [
                entry for entry in self._history[nid] if entry[0] > oldest
            ]
            if chain:
                self._history[nid] = chain
            else:
                del self._history[nid]

    def _read_snapshot(self, nid: int, start_ts: int) -> str:
        """Value of ``nid`` as of snapshot ``start_ts``."""
        store = self.index_manager.store
        with self._mutex:
            chain = self._history.get(nid)
            if chain:
                # The value before the earliest commit after start_ts.
                for commit_ts, before in chain:
                    if commit_ts > start_ts:
                        return before
            doc, pre = store.node(nid)
            return doc.text_of(pre)

    def _commit(self, txn: "Transaction") -> int:
        # Under the concurrent serving path, the whole commit — txn
        # validation plus index apply/publish — runs inside the
        # controller's writer lock, so a transaction commit is one
        # atomic epoch installation with respect to Database-level
        # writers and snapshot readers (update_texts re-enters the
        # lock; it is reentrant by design).
        controller = self.index_manager.concurrency
        if controller is not None:
            # Committing from inside a read view would wait on the
            # writer lock while holding the latch shared — fail fast
            # rather than risk the cross-lock cycle.
            controller.check_write_allowed()
        outer = nullcontext() if controller is None else controller.write_lock
        with outer, self._mutex:
            # First-committer-wins validation: only the updated text
            # nodes themselves are checked — never their ancestors.
            for nid in txn._writes:
                if self._versions.get(nid, 0) > txn.start_ts:
                    raise TransactionConflict(
                        f"node {nid} was modified by a concurrent transaction"
                    )
            ts = next(self._commit_counter)
            self._clock = ts
            store = self.index_manager.store
            for nid in txn._writes:
                self._versions[nid] = ts
                doc, pre = store.node(nid)
                self._history.setdefault(nid, []).append(
                    (ts, doc.text_of(pre))
                )
            # Apply writes and recompute ancestors from the *live*
            # children values (the Section 5.1 commit-time re-read).
            self.index_manager.update_texts(list(txn._writes.items()))
            txn.commit_epoch = self.index_manager.epoch
            return ts


class Transaction:
    """A buffered optimistic transaction.  Not thread-shared."""

    def __init__(self, manager: TransactionManager, start_ts: int):
        self._manager = manager
        self.start_ts = start_ts
        self._writes: dict[int, str] = {}
        self.status = "active"
        self.commit_ts: int | None = None
        #: Index epoch this transaction's apply published (set at
        #: commit); readers pinned below it cannot see its writes.
        self.commit_epoch: int | None = None

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _require_active(self) -> None:
        if self.status != "active":
            raise TransactionStateError(f"transaction is {self.status}")

    def update_text(self, nid: int, new_text: str) -> None:
        """Buffer a text-value write (visible to this txn only)."""
        self._require_active()
        # Validate the target eagerly so errors surface at write time.
        doc, pre = self._manager.index_manager.store.node(nid)
        if doc.text_id[pre] < 0:
            raise TransactionStateError(f"node {nid} has no text value")
        self._writes[nid] = new_text

    def read_text(self, nid: int) -> str:
        """Snapshot read: own writes first, else the value as of this
        transaction's begin timestamp (repeatable reads — concurrent
        commits do not bleed into an open transaction)."""
        self._require_active()
        buffered = self._writes.get(nid)
        if buffered is not None:
            return buffered
        return self._manager._read_snapshot(nid, self.start_ts)

    def writes(self) -> Iterator[tuple[int, str]]:
        return iter(self._writes.items())

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------

    def commit(self) -> int:
        """Validate and apply; returns the commit timestamp.

        Raises :class:`~repro.errors.TransactionConflict` if another
        transaction committed a write to one of this transaction's
        nodes after this transaction began (the buffer is discarded).
        """
        self._require_active()
        try:
            ts = self._manager._commit(self)
        except TransactionConflict:
            self.status = "aborted"
            self._manager._finished(self)
            raise
        self.status = "committed"
        self.commit_ts = ts
        self._manager._finished(self)
        return ts

    def abort(self) -> None:
        """Discard all buffered writes."""
        self._require_active()
        self._writes.clear()
        self.status = "aborted"
        self._manager._finished(self)

    # Context-manager sugar: commit on clean exit, abort on exception.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if self.status != "active":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()
