"""Ablation baselines for the design choices the paper motivates.

Each function here implements the *naive* alternative the paper argues
against, so the benchmarks can quantify the benefit of the published
design:

* ``rehash_update`` — maintain the string index without the
  combination function ``C``: every affected ancestor re-reads its
  full string value from the document and re-hashes it (paper
  Section 3: "Obviously, for large documents this is very
  inefficient").
* ``refsm_update`` — maintain the typed index without the SCT:
  every affected ancestor re-reads its string value and re-runs the
  FSM over it.
"""

from __future__ import annotations

from typing import Iterable

from ..core.string_index import StringIndex
from ..core.typed_index import TypedIndex
from ..xmldb.document import TEXT, Document
from ..xmldb.store import Store

__all__ = ["rehash_update", "refsm_update"]


def _affected(store: Store, nids: Iterable[int]) -> list[tuple[Document, int, int]]:
    """Updated nodes plus all their ancestors as (doc, pre, nid)."""
    seen: set[int] = set()
    result = []
    for nid in nids:
        doc, pre = store.node(nid)
        if nid not in seen:
            seen.add(nid)
            result.append((doc, pre, nid))
        if doc.kind[pre] != TEXT:
            continue
        for ancestor in doc.ancestors(pre):
            ancestor_nid = doc.nid[ancestor]
            if ancestor_nid in seen:
                break
            seen.add(ancestor_nid)
            result.append((doc, ancestor, ancestor_nid))
    return result


def rehash_update(store: Store, index: StringIndex, nids: Iterable[int]) -> int:
    """String-index maintenance *without* ``C``: re-read and re-hash the
    full string value of every affected node."""
    affected = _affected(store, nids)
    for doc, pre, nid in affected:
        index.set_entry(nid, index.field_of_text(doc.string_value(pre)))
    return len(affected)


def refsm_update(store: Store, index: TypedIndex, nids: Iterable[int]) -> int:
    """Typed-index maintenance *without* the SCT: re-read and re-run the
    FSM over the full string value of every affected node."""
    affected = _affected(store, nids)
    for doc, pre, nid in affected:
        index.set_entry(nid, index.plugin.fragment_of_text(doc.string_value(pre)))
    return len(affected)
