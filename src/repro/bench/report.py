"""Shared emitter for the ``BENCH_*.json`` artifacts.

Every bench module used to hand-roll its own ``json.dump`` with its
own key conventions; :func:`emit` is the one place that writes a bench
artifact now, and it stamps the envelope fields CI and the plotting
scripts key on:

* ``schema_version`` — bumped when the envelope itself changes shape;
* ``bench`` — the stable experiment name (matches the file name);
* ``workload`` — what was measured (dataset/query-set description);
* ``config`` — the knobs this run was taken under (scales, worker
  counts, sync levels ...), so two artifacts are comparable only when
  their configs say so.

Experiment-specific keys ride alongside the envelope at the top level,
exactly where the pre-envelope consumers already look for them.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["SCHEMA_VERSION", "emit"]

#: Version of the artifact envelope written by :func:`emit`.
SCHEMA_VERSION = 1


def emit(path: str, bench: str, payload: dict[str, Any], *,
         workload: Any = None,
         config: dict[str, Any] | None = None) -> dict[str, Any]:
    """Stamp the envelope onto ``payload`` and write it to ``path``.

    Returns the stamped payload (what's now on disk).  ``payload``
    keys win over the envelope only for ``bench``-specific data — the
    envelope fields themselves are reserved and always overwritten.
    """
    stamped: dict[str, Any] = dict(payload)
    stamped["schema_version"] = SCHEMA_VERSION
    stamped["bench"] = bench
    stamped["workload"] = workload
    stamped["config"] = dict(config or {})
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stamped, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return stamped
