"""Table 1 — dataset statistics, paper vs. measured.

Regenerates the paper's Table 1 for the eight catalog datasets: size,
total nodes, text (value-leaf) nodes, potential-double values and
non-leaf potential doubles, next to the paper's reported numbers.
"""

from __future__ import annotations

from ..workloads import DATASETS, DatasetStats, bench_scale, collect_stats
from ..xmldb import Store
from .harness import render_table

__all__ = ["run", "format_report", "main"]


def run(scale: float | None = None) -> dict[str, DatasetStats]:
    """Build all datasets and compute their Table 1 rows."""
    scale = bench_scale() if scale is None else scale
    stats: dict[str, DatasetStats] = {}
    for name, spec in DATASETS.items():
        store = Store()
        doc = store.add_document(name, spec.build(scale))
        stats[name] = collect_stats(doc)
    return stats


def format_report(stats: dict[str, DatasetStats]) -> str:
    headers = [
        "Data", "Size MB", "Nodes", "Text", "Text% (paper)",
        "Doubles", "Dbl% (paper)", "non-leaf (paper)",
    ]
    rows = []
    for name, measured in stats.items():
        spec = DATASETS[name]
        rows.append(
            [
                name,
                f"{measured.size_mb:.1f}",
                f"{measured.total_nodes:,}",
                f"{measured.text_nodes:,}",
                f"{measured.text_fraction:.0%} ({spec.paper_text_pct}%)",
                f"{measured.double_values:,}",
                f"{measured.double_fraction:.1%} ({spec.paper_double_pct}%)",
                f"{measured.non_leaf_doubles} ({spec.paper_non_leaf})",
            ]
        )
    return render_table(headers, rows)


def main() -> None:
    stats = run()
    print("Table 1: dataset statistics (measured, paper values in parens)")
    print(format_report(stats))


if __name__ == "__main__":
    main()
