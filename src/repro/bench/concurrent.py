"""Concurrent serving benchmark: snapshot readers + group commit.

Measures the two claims of the concurrent serving path
(``docs/concurrency.md``):

* **Write scaling** — aggregate committed-updates/sec over writer
  thread sweeps, with group commit on and off, against the 1-writer
  fsync-per-commit baseline.  Group commit amortizes the durable-media
  round trip across a batch, so throughput should scale well past the
  baseline even on one core.
* **Read isolation cost** — query latency percentiles (p50/p99) for
  snapshot-pinned readers running *during* the write load; readers
  never block behind text writers, so latency should stay flat as
  writers are added.

Emits ``BENCH_concurrent_serve.json`` with per-configuration
throughput, latency percentiles, commit-batch occupancy and
fsyncs-per-commit (from the ``wal.*``/``concurrency.*`` counters).
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from ..database import Database
from ..xmldb.document import ELEM, TEXT
from .harness import render_table
from .report import emit

__all__ = ["ServeResult", "run", "write_json", "format_report", "main"]

#: Writer thread counts of the reported sweep.
WRITER_COUNTS = (1, 2, 4)

#: Reader threads running alongside every write configuration.
READER_COUNT = 2

#: Updates committed per writer thread per configuration.
UPDATES_PER_WRITER = 300

#: Default output path (cwd, like the printed reports).
JSON_PATH = "BENCH_concurrent_serve.json"

_QUERY = "//p[.//age = 7]"


@dataclass
class ServeResult:
    """One (writers, group-commit) configuration's measurements."""

    writers: int
    group_commit: bool
    commits: int
    elapsed_seconds: float
    commit_p50_us: float
    commit_p99_us: float
    query_p50_us: float
    query_p99_us: float
    fsyncs: int
    batches: int
    batch_records: int
    epoch_pins: int
    reader_queries: int
    counters: dict = field(default_factory=dict)

    @property
    def commits_per_second(self) -> float:
        return self.commits / self.elapsed_seconds

    @property
    def batch_occupancy(self) -> float:
        return self.batch_records / self.batches if self.batches else 1.0

    @property
    def fsyncs_per_commit(self) -> float:
        return self.fsyncs / self.commits if self.commits else 0.0


def _fixture_xml(persons: int = 16) -> str:
    body = "".join(
        f"<p><name>n{i}</name><age>{i % 50}</age></p>" for i in range(persons)
    )
    return f"<root>{body}</root>"


def _age_nids(doc) -> list[int]:
    nids = []
    for pre in range(len(doc)):
        if doc.kind[pre] != TEXT:
            continue
        parent = doc.parent(pre)
        if doc.kind[parent] == ELEM and doc.name_of(parent) == "age":
            nids.append(doc.nid[pre])
    return nids


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _measure(
    writers: int,
    group_commit: bool,
    updates_per_writer: int,
    batch_max: int,
    seed: int,
) -> ServeResult:
    """Run one configuration in a fresh fsync-durability database."""
    base = tempfile.mkdtemp(prefix="bench-concurrent-")
    try:
        db = Database(
            os.path.join(base, "db"),
            typed=(),  # keep per-update maintenance minimal: string index
            sync="fsync",
            checkpoint_every=0,
            concurrent=True,
            group_commit=group_commit,
            group_batch_max=batch_max,
        )
        doc = db.load("bench", _fixture_xml())
        nids = _age_nids(doc)
        db.manager.metrics.reset()

        commit_lat: list[list[float]] = [[] for _ in range(writers)]
        query_lat: list[float] = []
        reader_stop = threading.Event()
        start_barrier = threading.Barrier(writers + READER_COUNT)

        def writer(slot: int) -> None:
            rng = random.Random(seed + slot)
            latencies = commit_lat[slot]
            start_barrier.wait()
            for _ in range(updates_per_writer):
                nid = rng.choice(nids)
                value = str(rng.randrange(50))
                begin = time.perf_counter()
                db.update_text(nid, value)
                latencies.append(time.perf_counter() - begin)

        def reader(slot: int) -> None:
            start_barrier.wait()
            while not reader_stop.is_set():
                begin = time.perf_counter()
                db.query(_QUERY)
                query_lat.append(time.perf_counter() - begin)

        writer_threads = [
            threading.Thread(target=writer, args=(slot,))
            for slot in range(writers)
        ]
        reader_threads = [
            threading.Thread(target=reader, args=(slot,), daemon=True)
            for slot in range(READER_COUNT)
        ]
        for thread in reader_threads:
            thread.start()
        for thread in writer_threads:
            thread.start()
        begin = time.perf_counter()
        for thread in writer_threads:
            thread.join()
        elapsed = time.perf_counter() - begin
        reader_stop.set()
        for thread in reader_threads:
            thread.join(timeout=30)

        counters = db.metrics()["counters"]
        commits = writers * updates_per_writer
        all_commit = sorted(
            value for latencies in commit_lat for value in latencies
        )
        all_query = sorted(query_lat)
        result = ServeResult(
            writers=writers,
            group_commit=group_commit,
            commits=commits,
            elapsed_seconds=elapsed,
            commit_p50_us=_percentile(all_commit, 0.50) * 1e6,
            commit_p99_us=_percentile(all_commit, 0.99) * 1e6,
            query_p50_us=_percentile(all_query, 0.50) * 1e6,
            query_p99_us=_percentile(all_query, 0.99) * 1e6,
            fsyncs=counters.get("wal.fsyncs", 0),
            batches=counters.get("wal.group.batches", 0),
            batch_records=counters.get("wal.group.records", 0),
            epoch_pins=counters.get("concurrency.epoch_pins", 0),
            reader_queries=counters.get("query.executed", 0),
            counters={
                key: value
                for key, value in counters.items()
                if key.startswith(("wal.", "concurrency."))
            },
        )
        db.close(checkpoint=False)
        return result
    finally:
        shutil.rmtree(base, ignore_errors=True)


def run(
    writer_counts: tuple[int, ...] = WRITER_COUNTS,
    updates_per_writer: int = UPDATES_PER_WRITER,
    batch_max: int = 32,
    seed: int = 1234,
) -> list[ServeResult]:
    """Sweep writer counts with group commit off and on."""
    results = []
    for group_commit in (False, True):
        for writers in writer_counts:
            results.append(
                _measure(
                    writers,
                    group_commit,
                    updates_per_writer,
                    batch_max,
                    seed,
                )
            )
    return results


def write_json(results: list[ServeResult], path: str = JSON_PATH) -> dict:
    """Serialise the sweep (returns the written payload)."""
    baseline = next(
        (r for r in results if not r.group_commit and r.writers == 1), None
    )
    best = max(
        (r for r in results if r.group_commit),
        key=lambda r: r.commits_per_second,
        default=None,
    )
    payload = {
        "reader_threads": READER_COUNT,
        "configurations": [
            {
                "writers": r.writers,
                "group_commit": r.group_commit,
                "commits": r.commits,
                "elapsed_seconds": r.elapsed_seconds,
                "commits_per_second": r.commits_per_second,
                "commit_p50_us": r.commit_p50_us,
                "commit_p99_us": r.commit_p99_us,
                "query_p50_us": r.query_p50_us,
                "query_p99_us": r.query_p99_us,
                "reader_queries": r.reader_queries,
                "epoch_pins": r.epoch_pins,
                "fsyncs": r.fsyncs,
                "fsyncs_per_commit": r.fsyncs_per_commit,
                "batch_occupancy": r.batch_occupancy,
                "counters": r.counters,
            }
            for r in results
        ],
        "aggregate": {
            "baseline_1_writer_fsync_per_commit": (
                baseline.commits_per_second if baseline else None
            ),
            "best_group_commit": (
                best.commits_per_second if best else None
            ),
            "speedup_vs_baseline": (
                best.commits_per_second / baseline.commits_per_second
                if baseline and best
                else None
            ),
        },
    }
    return emit(
        path, "concurrent_serve", payload,
        workload=f"text-update commits vs {READER_COUNT} snapshot "
                 f"reader(s), query {_QUERY!r}",
        config={
            "writer_counts": sorted({r.writers for r in results}),
            "updates_per_writer": UPDATES_PER_WRITER,
            "reader_threads": READER_COUNT,
        },
    )


def format_report(results: list[ServeResult]) -> str:
    headers = [
        "writers",
        "group",
        "commits/s",
        "commit p50/p99 µs",
        "query p50/p99 µs",
        "fsync/commit",
        "batch occ",
    ]
    rows = []
    for r in results:
        rows.append(
            [
                str(r.writers),
                "on" if r.group_commit else "off",
                f"{r.commits_per_second:,.0f}",
                f"{r.commit_p50_us:.0f}/{r.commit_p99_us:.0f}",
                f"{r.query_p50_us:.0f}/{r.query_p99_us:.0f}",
                f"{r.fsyncs_per_commit:.2f}",
                f"{r.batch_occupancy:.1f}",
            ]
        )
    return render_table(headers, rows)


def main() -> None:
    results = run()
    print(f"Concurrent serving sweep ({READER_COUNT} reader thread(s), "
          f"fsync durability)")
    print(format_report(results))
    payload = write_json(results)
    speedup = payload["aggregate"]["speedup_vs_baseline"]
    if speedup is not None:
        print(f"best group-commit throughput vs 1-writer fsync-per-commit "
              f"baseline: {speedup:.2f}x")
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
