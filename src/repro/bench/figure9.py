"""Figure 9 — index creation time and storage overhead.

Top half of the paper's figure: per dataset, the document shredding
time next to the extra time the single-pass creation algorithm spends
building (a) the string index and (b) the double index.  The paper
reports string-index overhead under 10% of shred time and double-index
overhead under 2%.

Bottom half: modelled storage of each index relative to the database
size — string index 10-20% of DB size, double index 2-3%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.builder import build_document
from ..core.string_index import StringIndex
from ..core.typed_index import TypedIndex
from ..workloads import DATASETS, bench_scale
from ..xmldb import Store
from .harness import format_bytes, measure_seconds, render_table

__all__ = ["CreationResult", "run", "format_time_report", "format_storage_report", "main"]

#: Paper-reported Figure 9 values (ms / MB) for side-by-side output.
PAPER_SHRED_MS = {
    "XMark1": 6842, "XMark2": 14877, "XMark4": 28079, "XMark8": 55680,
    "EPAGeo": 7838, "DBLP": 51347, "PSD": 62510, "Wiki": 213875,
}
PAPER_STRING_MS = {
    "XMark1": 508, "XMark2": 1030, "XMark4": 2104, "XMark8": 4260,
    "EPAGeo": 497, "DBLP": 2261, "PSD": 3088, "Wiki": 8968,
}
PAPER_DOUBLE_MS = {
    "XMark1": 153, "XMark2": 326, "XMark4": 660, "XMark8": 1345,
    "EPAGeo": 154, "DBLP": 1088, "PSD": 1445, "Wiki": 2623,
}
PAPER_DB_MB = {
    "XMark1": 130.1, "XMark2": 242.4, "XMark4": 450.1, "XMark8": 832.1,
    "EPAGeo": 106.5, "DBLP": 739.5, "PSD": 944.0, "Wiki": 2702.2,
}
PAPER_STRING_MB = {
    "XMark1": 17.8, "XMark2": 35.8, "XMark4": 71.8, "XMark8": 143.5,
    "EPAGeo": 25.0, "DBLP": 132.7, "PSD": 222.9, "Wiki": 361.1,
}
PAPER_DOUBLE_MB = {
    "XMark1": 3.4, "XMark2": 6.6, "XMark4": 13.4, "XMark8": 26.7,
    "EPAGeo": 4.8, "DBLP": 35.6, "PSD": 30.0, "Wiki": 1.0,
}


@dataclass
class CreationResult:
    """Per-dataset creation timings and storage sizes."""

    name: str
    nodes: int
    shred_seconds: float
    string_seconds: float
    double_seconds: float
    db_bytes: int
    string_bytes: int
    double_bytes: int

    @property
    def string_overhead(self) -> float:
        return self.string_seconds / self.shred_seconds

    @property
    def double_overhead(self) -> float:
        return self.double_seconds / self.shred_seconds

    @property
    def string_storage_fraction(self) -> float:
        return self.string_bytes / self.db_bytes

    @property
    def double_storage_fraction(self) -> float:
        return self.double_bytes / self.db_bytes


def measure_dataset(name: str, xml: str, repeats: int = 3) -> CreationResult:
    """Measure shred time and per-index creation time for one dataset."""
    shred_seconds, _ = measure_seconds(
        lambda: Store().add_document(name, xml), repeats
    )
    store = Store()
    doc = store.add_document(name, xml)

    def build_string():
        index = StringIndex()
        build_document(doc, [index])
        return index

    def build_double():
        index = TypedIndex("double")
        build_document(doc, [index])
        return index

    string_seconds, string_index = measure_seconds(build_string, repeats)
    double_seconds, double_index = measure_seconds(build_double, repeats)
    return CreationResult(
        name=name,
        nodes=len(doc),
        shred_seconds=shred_seconds,
        string_seconds=string_seconds,
        double_seconds=double_seconds,
        db_bytes=doc.byte_size(),
        string_bytes=string_index.byte_size(),
        double_bytes=double_index.byte_size(),
    )


def run(scale: float | None = None, repeats: int = 3) -> list[CreationResult]:
    scale = bench_scale() if scale is None else scale
    results = []
    for name, spec in DATASETS.items():
        results.append(measure_dataset(name, spec.build(scale), repeats))
    return results


def format_time_report(results: list[CreationResult]) -> str:
    headers = [
        "Data", "Nodes", "Shred ms", "String ms", "String ovh (paper)",
        "Double ms", "Double ovh (paper)",
    ]
    rows = []
    for r in results:
        paper_string = PAPER_STRING_MS[r.name] / PAPER_SHRED_MS[r.name]
        paper_double = PAPER_DOUBLE_MS[r.name] / PAPER_SHRED_MS[r.name]
        rows.append(
            [
                r.name,
                f"{r.nodes:,}",
                f"{r.shred_seconds * 1000:.0f}",
                f"{r.string_seconds * 1000:.0f}",
                f"{r.string_overhead:.0%} ({paper_string:.0%})",
                f"{r.double_seconds * 1000:.0f}",
                f"{r.double_overhead:.0%} ({paper_double:.0%})",
            ]
        )
    return render_table(headers, rows)


def format_storage_report(results: list[CreationResult]) -> str:
    headers = [
        "Data", "DB size", "String idx", "String/DB (paper)",
        "Double idx", "Double/DB (paper)",
    ]
    rows = []
    for r in results:
        paper_string = PAPER_STRING_MB[r.name] / PAPER_DB_MB[r.name]
        paper_double = PAPER_DOUBLE_MB[r.name] / PAPER_DB_MB[r.name]
        rows.append(
            [
                r.name,
                format_bytes(r.db_bytes),
                format_bytes(r.string_bytes),
                f"{r.string_storage_fraction:.0%} ({paper_string:.0%})",
                format_bytes(r.double_bytes),
                f"{r.double_storage_fraction:.1%} ({paper_double:.1%})",
            ]
        )
    return render_table(headers, rows)


def main() -> None:
    results = run()
    print("Figure 9 (top): creation time overhead over shredding")
    print(format_time_report(results))
    print()
    print("Figure 9 (bottom): storage overhead over database size")
    print(format_storage_report(results))


if __name__ == "__main__":
    main()
