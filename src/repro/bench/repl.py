"""Replication benchmark: read scale-out over followers, and lag.

Two measurements against one live primary server:

* **Read throughput vs follower count** — for each configuration the
  reader threads drive the same query mix through per-thread
  :class:`~repro.repl.ReplicaSet` routers (0 followers = every read on
  the primary).  Followers are real :class:`~repro.repl.FollowerServer`
  processes-worth of work in-process (server thread + tail thread), so
  the scaling headline needs cores exactly like ``repro.bench.shard``
  — ``cores_available`` records what this run had.
* **Steady-state lag** — a writer updates the primary at full speed
  while one follower tails; the sampler records how many acked updates
  the follower trails by, plus the drain time to full convergence
  after the writer stops.

Emits ``BENCH_replication.json``.

Env knobs: ``REPRO_REPL_FOLLOWERS`` (default ``0,1,2``),
``REPRO_REPL_SECONDS`` (per-configuration read window, default 1.0),
``REPRO_REPL_READERS`` (reader threads, default 4).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

from ..database import Database
from ..repl import Follower, FollowerServer, ReplicaSet
from ..server import ServerThread
from .harness import render_table
from .report import emit

__all__ = ["run", "write_json", "format_report", "main"]

JSON_PATH = "BENCH_replication.json"

QUERIES = [
    "//p[.//age = 7]",
    '//p[.//name = "n3"]',
    "//p[.//age >= 12]",
]


def _follower_counts() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_REPL_FOLLOWERS", "0,1,2")
    return tuple(int(part) for part in raw.split(",") if part)


def _fixture_xml(persons: int = 120) -> str:
    body = "".join(
        f"<p><name>n{i % 12}</name><age>{i % 25}</age></p>"
        for i in range(persons)
    )
    return f"<root>{body}</root>"


def _age_nids(db: Database) -> list[int]:
    return db.query("//age/text()")


class _Deployment:
    """Primary + N serving followers, all torn down in one call."""

    def __init__(self, base: str, followers: int):
        self.db = Database(os.path.join(base, "primary"),
                           concurrent=True, checkpoint_every=0)
        self.db.load("people", _fixture_xml())
        self.thread = ServerThread(self.db)
        self.addr = self.thread.start()
        self.followers: list[Follower] = []
        self.servers: list[FollowerServer] = []
        self.follower_addrs: list[tuple[str, int]] = []
        for i in range(followers):
            follower = Follower(os.path.join(base, f"f{i}"), self.addr,
                                poll_interval=0.002)
            follower.start()
            server = FollowerServer(follower)
            self.followers.append(follower)
            self.servers.append(server)
            self.follower_addrs.append(server.start())

    def close(self) -> None:
        for server in self.servers:
            server.stop()
        for follower in self.followers:
            follower.close()
        self.thread.stop()


def _measure_reads(deployment: _Deployment, readers: int,
                   seconds: float) -> dict:
    counts = [0] * readers
    stop = threading.Event()

    def reader(slot: int) -> None:
        replica_set = ReplicaSet(deployment.addr,
                                 deployment.follower_addrs)
        try:
            i = 0
            while not stop.is_set():
                replica_set.query(QUERIES[i % len(QUERIES)])
                counts[slot] += 1
                i += 1
        finally:
            replica_set.close()

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(seconds)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    executed = sum(counts)
    return {
        "followers": len(deployment.follower_addrs),
        "queries": executed,
        "elapsed_seconds": elapsed,
        "queries_per_second": executed / elapsed,
    }


def _measure_lag(base: str, seconds: float) -> dict:
    db = Database(os.path.join(base, "lag-primary"),
                  concurrent=True, checkpoint_every=0)
    db.load("people", _fixture_xml())
    ages = _age_nids(db)
    thread = ServerThread(db)
    addr = thread.start()
    follower = Follower(os.path.join(base, "lag-follower"), addr,
                        poll_interval=0.002)
    follower.start()
    issued = 0
    samples: list[int] = []
    try:
        deadline = time.monotonic() + seconds
        next_sample = 0.0
        while time.monotonic() < deadline:
            db.update_text(ages[issued % len(ages)], str(issued % 25))
            issued += 1
            now = time.monotonic()
            if now >= next_sample:
                samples.append(issued - follower.applied_records)
                next_sample = now + 0.01
        drain_started = time.perf_counter()
        while follower.applied_records < issued:
            if time.perf_counter() - drain_started > 60:
                raise RuntimeError(
                    f"follower stuck at {follower.applied_records}/"
                    f"{issued} records: {follower.last_error!r}"
                )
            time.sleep(0.001)
        drain = time.perf_counter() - drain_started
    finally:
        follower.close()
        thread.stop()
        db.close(checkpoint=False)
    return {
        "updates": issued,
        "lag_samples": len(samples),
        "mean_lag_records": sum(samples) / max(1, len(samples)),
        "max_lag_records": max(samples, default=0),
        "drain_seconds": drain,
    }


def run() -> dict:
    seconds = float(os.environ.get("REPRO_REPL_SECONDS", "1.0"))
    readers = int(os.environ.get("REPRO_REPL_READERS", "4"))
    base = tempfile.mkdtemp(prefix="repro-bench-repl-")
    try:
        configurations = []
        for followers in _follower_counts():
            deployment = _Deployment(
                os.path.join(base, f"d{followers}"), followers)
            try:
                configurations.append(
                    _measure_reads(deployment, readers, seconds))
            finally:
                deployment.close()
        lag = _measure_lag(base, seconds)
    finally:
        shutil.rmtree(base, ignore_errors=True)
    by_count = {c["followers"]: c for c in configurations}
    base_qps = by_count.get(0, configurations[0])["queries_per_second"]
    return {
        "cores_available": os.cpu_count() or 1,
        "reader_threads": readers,
        "seconds": seconds,
        "configurations": configurations,
        "lag": lag,
        "aggregate": {
            "speedup_vs_primary_only": {
                str(c["followers"]): c["queries_per_second"] / base_qps
                for c in configurations
            },
        },
    }


def write_json(payload: dict, path: str = JSON_PATH) -> dict:
    return emit(
        path, "replication", payload,
        workload=f"{len(QUERIES)}-query read mix through ReplicaSet, "
                 f"{payload['reader_threads']} reader thread(s); "
                 "full-speed single-writer lag probe",
        config={
            "follower_counts": [c["followers"]
                                for c in payload["configurations"]],
            "reader_threads": payload["reader_threads"],
            "seconds": payload["seconds"],
            "cores_available": payload["cores_available"],
        },
    )


def format_report(payload: dict) -> str:
    headers = ["followers", "queries/s", "speedup"]
    speedups = payload["aggregate"]["speedup_vs_primary_only"]
    rows = [
        [
            str(c["followers"]),
            f"{c['queries_per_second']:,.1f}",
            f"{speedups[str(c['followers'])]:.2f}x",
        ]
        for c in payload["configurations"]
    ]
    return render_table(headers, rows)


def main() -> None:
    payload = run()
    print(f"Replication: {payload['reader_threads']} reader thread(s), "
          f"{payload['seconds']:.1f}s window, "
          f"{payload['cores_available']} core(s) available")
    print(format_report(payload))
    lag = payload["lag"]
    print(f"lag: {lag['updates']} update(s), "
          f"mean {lag['mean_lag_records']:.1f} / "
          f"max {lag['max_lag_records']} record(s) behind, "
          f"drained in {lag['drain_seconds'] * 1000:.0f} ms")
    write_json(payload)
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
