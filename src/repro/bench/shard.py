"""Shard scale-out benchmark: the 23-query sweep at 1..N shards.

For each shard count the corpus (XMark1, DBLP, PSD, Wiki, EPAGeo) is
round-robin-placed over that many *worker processes* and the full
23-query workload (:data:`repro.workloads.QUERY_SETS`) is scattered
repeatedly through the coordinator; aggregate throughput is total
queries over wall time.  Every sharded result is first verified
**bit-identical** — same ``(document, pre)`` rows in the same global
order, no duplicates across shard boundaries — against an unsharded
in-process oracle before any timing is taken.

Emits ``BENCH_shard_scaleout.json``.  Scale-out is real parallelism
across OS processes, so the headline speedup needs the cores: on an
M-core machine the curve should approach min(shards, M)x for the
index-bound queries (the ``cores_available`` field records what this
run had to work with — on a single core the sharded runs can only tie
or lose, the differential verification is then the point).

Env knobs: ``REPRO_SHARD_COUNTS`` (default ``1,2,4``),
``REPRO_SHARD_REPEATS`` (default 3 sweeps per configuration),
``REPRO_BENCH_SCALE_SHARD`` (generator scale; default
``bench_scale()``).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from ..database import Database
from ..shard import ShardCluster
from ..workloads import DATASETS, QUERY_SETS, bench_scale
from .harness import render_table
from .report import emit

__all__ = ["run", "write_json", "format_report", "main"]

JSON_PATH = "BENCH_shard_scaleout.json"

BENCH_DATASETS = ("XMark1", "DBLP", "PSD", "Wiki", "EPAGeo")


def _shard_counts() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_SHARD_COUNTS", "1,2,4")
    return tuple(int(part) for part in raw.split(",") if part)


def _scale() -> float:
    raw = os.environ.get("REPRO_BENCH_SCALE_SHARD")
    return float(raw) if raw else bench_scale()


def _workload() -> list[tuple[str, str]]:
    queries: list[tuple[str, str]] = []
    for dataset in BENCH_DATASETS:
        for name, text in QUERY_SETS[dataset]:
            queries.append((f"{dataset}/{name}", text))
    return queries


def _oracle_rows(corpus: list[tuple[str, str]],
                 queries: list[tuple[str, str]],
                 base: str) -> dict[str, list[tuple[str, int]]]:
    """Single-engine answers in (document, pre) space — the
    placement-independent shape every sharded run must reproduce."""
    with Database(os.path.join(base, "oracle")) as db:
        for name, xml in corpus:
            db.load(name, xml)
        return {
            label: [(doc, pre) for doc, pre, _nid in db.query_rows(text)]
            for label, text in queries
        }


def run() -> dict:
    scale = _scale()
    repeats = int(os.environ.get("REPRO_SHARD_REPEATS", "3"))
    counts = _shard_counts()
    queries = _workload()
    corpus = [
        (name, DATASETS[name].build(scale)) for name in BENCH_DATASETS
    ]
    base = tempfile.mkdtemp(prefix="repro-bench-shard-")
    try:
        oracle = _oracle_rows(corpus, queries, base)
        configurations = []
        for shards in counts:
            root = os.path.join(base, f"cluster-{shards}")
            with ShardCluster(root, shards=shards,
                              transport="process").start() as cluster:
                for idx, (name, xml) in enumerate(corpus):
                    cluster.load(name, xml, shard=idx % shards)
                mismatches = 0
                for label, text in queries:
                    rows = cluster.query_pres(text)
                    if rows != oracle[label]:
                        mismatches += 1
                started = time.perf_counter()
                for _ in range(repeats):
                    for _label, text in queries:
                        cluster.query(text)
                elapsed = time.perf_counter() - started
            executed = repeats * len(queries)
            configurations.append({
                "shards": shards,
                "queries": executed,
                "elapsed_seconds": elapsed,
                "queries_per_second": executed / elapsed,
                "oracle_mismatches": mismatches,
            })
    finally:
        shutil.rmtree(base, ignore_errors=True)
    by_shards = {c["shards"]: c for c in configurations}
    base_qps = by_shards.get(1, configurations[0])["queries_per_second"]
    payload = {
        "cores_available": os.cpu_count() or 1,
        "query_count": len(queries),
        "repeats": repeats,
        "configurations": configurations,
        "aggregate": {
            "verified_bit_identical": all(
                c["oracle_mismatches"] == 0 for c in configurations
            ),
            "speedup_vs_1_shard": {
                str(c["shards"]): c["queries_per_second"] / base_qps
                for c in configurations
            },
        },
    }
    return payload


def write_json(payload: dict, path: str = JSON_PATH) -> dict:
    return emit(
        path, "shard_scaleout", payload,
        workload=f"{payload['query_count']}-query sweep over "
                 f"{list(BENCH_DATASETS)}, scatter-gathered",
        config={
            "scale": _scale(),
            "shard_counts": [c["shards"]
                             for c in payload["configurations"]],
            "repeats": payload["repeats"],
            "cores_available": payload["cores_available"],
        },
    )


def format_report(payload: dict) -> str:
    headers = ["shards", "queries/s", "speedup", "oracle"]
    speedups = payload["aggregate"]["speedup_vs_1_shard"]
    rows = [
        [
            str(c["shards"]),
            f"{c['queries_per_second']:,.1f}",
            f"{speedups[str(c['shards'])]:.2f}x",
            "ok" if c["oracle_mismatches"] == 0
            else f"{c['oracle_mismatches']} MISMATCH",
        ]
        for c in payload["configurations"]
    ]
    return render_table(headers, rows)


def main() -> None:
    payload = run()
    print(f"Shard scale-out: {payload['query_count']}-query sweep, "
          f"{payload['repeats']} repeat(s), "
          f"{payload['cores_available']} core(s) available")
    print(format_report(payload))
    write_json(payload)
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
