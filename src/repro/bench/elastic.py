"""Elasticity benchmark: query service during a live migration.

One cluster, two measurements of the same read workload:

* **quiesced** — steady-state scatter-gather throughput with
  placement at rest;
* **during migration** — the same reader threads while a document is
  being migrated between shards in a loop (snapshot method: the
  source stays online for the copy, updates pause only for the WAL
  tail drain + manifest flip).

The headline is the throughput ratio plus the migration's measured
``duration_s``/``pause_s`` split — the paper-style claim being that
the cutover pause, not the copy, is the only offline window.

Emits ``BENCH_elastic.json``.

Env knobs: ``REPRO_ELASTIC_SECONDS`` (per-phase read window, default
1.0), ``REPRO_ELASTIC_READERS`` (reader threads, default 4),
``REPRO_ELASTIC_SHARDS`` (default 2).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time

from ..shard import ShardCluster
from .harness import render_table
from .report import emit

__all__ = ["run", "write_json", "format_report", "main"]

JSON_PATH = "BENCH_elastic.json"

QUERIES = [
    "//p[.//age = 7]",
    '//p[.//name = "n3"]',
    "//p[.//age >= 12]",
]


def _fixture_xml(persons: int = 160) -> str:
    body = "".join(
        f"<p><name>n{i % 12}</name><age>{i % 25}</age></p>"
        for i in range(persons)
    )
    return f"<root>{body}</root>"


def _measure_reads(cluster: ShardCluster, readers: int,
                   seconds: float, stop_when=None) -> dict:
    counts = [0] * readers
    stop = threading.Event()

    def reader(slot: int) -> None:
        i = 0
        while not stop.is_set():
            cluster.query_pres(QUERIES[i % len(QUERIES)])
            counts[slot] += 1
            i += 1

    threads = [threading.Thread(target=reader, args=(slot,))
               for slot in range(readers)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    deadline = started + seconds
    while time.perf_counter() < deadline:
        if stop_when is not None and stop_when():
            break
        time.sleep(0.005)
    stop.set()
    for thread in threads:
        thread.join(timeout=60)
    elapsed = time.perf_counter() - started
    executed = sum(counts)
    return {
        "queries": executed,
        "elapsed_seconds": elapsed,
        "queries_per_second": executed / elapsed,
    }


def run() -> dict:
    seconds = float(os.environ.get("REPRO_ELASTIC_SECONDS", "1.0"))
    readers = int(os.environ.get("REPRO_ELASTIC_READERS", "4"))
    shards = int(os.environ.get("REPRO_ELASTIC_SHARDS", "2"))
    base = tempfile.mkdtemp(prefix="repro-elastic-")
    try:
        cluster = ShardCluster(base, shards=shards, transport="thread",
                               checkpoint_every=0)
        cluster.start()
        try:
            cluster.load("people", _fixture_xml(), shard=0)
            cluster.load("ballast", _fixture_xml(40), shard=0)

            quiesced = _measure_reads(cluster, readers, seconds)

            migrations: list[dict] = []
            migrating = threading.Event()

            def mover() -> None:
                where = 0
                deadline = time.perf_counter() + seconds
                while time.perf_counter() < deadline:
                    target = (where + 1) % shards
                    migrations.append(cluster.migrate_document(
                        "people", target, method="snapshot"))
                    where = target
                migrating.set()

            thread = threading.Thread(target=mover)
            thread.start()
            live = _measure_reads(cluster, readers, seconds * 4,
                                  stop_when=migrating.is_set)
            thread.join(timeout=120)

            moved = [m for m in migrations if m["moved"]]
            payload = {
                "quiesced": quiesced,
                "during_migration": live,
                "migrations": len(moved),
                "migration_mean_duration_s": (
                    sum(m["duration_s"] for m in moved) / len(moved)
                    if moved else 0.0),
                "migration_mean_pause_s": (
                    sum(m["pause_s"] for m in moved) / len(moved)
                    if moved else 0.0),
                "migration_bytes": moved[0]["bytes"] if moved else 0,
                "throughput_ratio": (
                    live["queries_per_second"]
                    / quiesced["queries_per_second"]
                    if quiesced["queries_per_second"] else 0.0),
                "reader_threads": readers,
                "seconds": seconds,
                "shards": shards,
                "cores_available": os.cpu_count() or 1,
            }
        finally:
            cluster.stop()
    finally:
        shutil.rmtree(base, ignore_errors=True)
    return payload


def write_json(payload: dict, path: str = JSON_PATH) -> dict:
    return emit(
        path, "elastic", payload,
        workload=f"{len(QUERIES)}-query scatter mix, "
                 f"{payload['reader_threads']} reader thread(s), "
                 "snapshot migrations looping one document between "
                 "shards",
        config={
            "shards": payload["shards"],
            "reader_threads": payload["reader_threads"],
            "seconds": payload["seconds"],
            "cores_available": payload["cores_available"],
        },
    )


def format_report(payload: dict) -> str:
    headers = ["phase", "queries/s"]
    rows = [
        ["quiesced", f"{payload['quiesced']['queries_per_second']:,.1f}"],
        ["during migration",
         f"{payload['during_migration']['queries_per_second']:,.1f}"],
    ]
    return render_table(headers, rows)


def main() -> None:
    payload = run()
    print(f"Elastic: {payload['shards']} shard(s), "
          f"{payload['reader_threads']} reader thread(s), "
          f"{payload['cores_available']} core(s) available")
    print(format_report(payload))
    print(f"{payload['migrations']} migration(s): "
          f"mean total {payload['migration_mean_duration_s'] * 1e3:.1f} ms, "
          f"mean update pause {payload['migration_mean_pause_s'] * 1e3:.1f} "
          f"ms, throughput ratio "
          f"{payload['throughput_ratio']:.2f}x")
    write_json(payload)
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
