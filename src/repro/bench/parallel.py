"""Parallel index-creation speedup (serial vs. pooled chunked build).

Per catalog dataset: time the serial Figure 7 creation pass (string +
double index) next to the chunked pass of
:mod:`repro.core.parallel` at several worker counts, and emit the
speedup curve both as a table and as ``BENCH_parallel_build.json``
(consumed by CI and EXPERIMENTS.md).

Worker pools are warmed before timing — pool creation is a one-off
cost in a long-lived server, not part of the creation pass.  The
speedup ceiling is ``min(workers, cores_available)``; the JSON records
the core count so readers can judge the curve.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.builder import build_document
from ..core.parallel import build_document_parallel, resolve_workers
from ..core.string_index import StringIndex
from ..core.typed_index import TypedIndex
from ..workloads import DATASETS, bench_scale
from ..xmldb import Store
from .harness import measure_seconds, render_table
from .report import emit

__all__ = ["ParallelResult", "run", "write_json", "format_report", "main"]

#: Worker counts of the reported curve.
WORKER_COUNTS = (2, 4, 8)

#: Default output path (cwd, like the printed reports).
JSON_PATH = "BENCH_parallel_build.json"


@dataclass
class ParallelResult:
    """Creation timings for one dataset."""

    name: str
    nodes: int
    serial_seconds: float
    parallel_seconds: dict[int, float] = field(default_factory=dict)

    def speedup(self, workers: int) -> float:
        return self.serial_seconds / self.parallel_seconds[workers]


def _fresh_indexes() -> list:
    return [StringIndex(), TypedIndex("double")]


def run(
    scale: float | None = None,
    workers: tuple[int, ...] = WORKER_COUNTS,
    backend: str = "process",
    repeats: int = 3,
) -> list[ParallelResult]:
    """Measure serial vs. parallel creation over all catalog datasets."""
    if scale is None:
        scale = bench_scale()
    docs = {
        name: Store().add_document(name, spec.build(scale))
        for name, spec in DATASETS.items()
    }
    # Warm every pool outside the timed region (fork cost is one-off).
    smallest = min(docs.values(), key=len)
    for count in workers:
        build_document_parallel(
            smallest, _fresh_indexes(), workers=count, backend=backend
        )
    results = []
    for name, doc in docs.items():
        serial, _ = measure_seconds(
            lambda: build_document(doc, _fresh_indexes()), repeats=repeats
        )
        result = ParallelResult(name, len(doc), serial)
        for count in workers:
            seconds, _ = measure_seconds(
                lambda: build_document_parallel(
                    doc, _fresh_indexes(), workers=count, backend=backend
                ),
                repeats=repeats,
            )
            result.parallel_seconds[count] = seconds
        results.append(result)
    return results


def write_json(
    results: list[ParallelResult],
    path: str = JSON_PATH,
    backend: str = "process",
    scale: float | None = None,
) -> dict:
    """Serialise the speedup curve (returns the written payload)."""
    if scale is None:
        scale = bench_scale()
    worker_counts = sorted(
        {count for r in results for count in r.parallel_seconds}
    )
    total_serial = sum(r.serial_seconds for r in results)
    payload = {
        "scale": scale,
        "backend": backend,
        "cores_available": resolve_workers("auto"),
        "workers": worker_counts,
        "datasets": {
            r.name: {
                "nodes": r.nodes,
                "serial_seconds": r.serial_seconds,
                "parallel_seconds": {
                    str(count): r.parallel_seconds[count]
                    for count in worker_counts
                },
                "speedup": {
                    str(count): r.speedup(count) for count in worker_counts
                },
            }
            for r in results
        },
        "aggregate": {
            "serial_seconds": total_serial,
            "parallel_seconds": {
                str(count): sum(r.parallel_seconds[count] for r in results)
                for count in worker_counts
            },
            "speedup": {
                str(count): total_serial
                / sum(r.parallel_seconds[count] for r in results)
                for count in worker_counts
            },
        },
    }
    return emit(
        path, "parallel_build", payload,
        workload=f"parallel index creation over {sorted(r.name for r in results)}",
        config={"scale": scale, "backend": backend,
                "workers": worker_counts},
    )


def format_report(results: list[ParallelResult]) -> str:
    worker_counts = sorted(
        {count for r in results for count in r.parallel_seconds}
    )
    headers = ["dataset", "nodes", "serial ms"] + [
        f"{count}w ms (x)" for count in worker_counts
    ]
    rows = []
    for r in results:
        row = [r.name, f"{r.nodes:,}", f"{r.serial_seconds * 1e3:.1f}"]
        row += [
            f"{r.parallel_seconds[count] * 1e3:.1f} ({r.speedup(count):.2f})"
            for count in worker_counts
        ]
        rows.append(row)
    return render_table(headers, rows)


def main() -> None:
    backend = os.environ.get("REPRO_PARALLEL_BACKEND", "process")
    results = run(backend=backend)
    print(f"Parallel creation speedup ({backend} backend, "
          f"{resolve_workers('auto')} core(s) available)")
    print(format_report(results))
    payload = write_json(results, backend=backend)
    agg = payload["aggregate"]["speedup"]
    curve = ", ".join(f"{count}w: {agg[str(count)]:.2f}x" for count in
                      payload["workers"])
    print(f"aggregate speedup — {curve}")
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
