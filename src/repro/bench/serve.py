"""Network serving benchmark: many clients against one server.

Drives N simulated client connections (default 120 — well past the
acceptance floor of 100) from one asyncio event loop against a
:class:`~repro.server.DatabaseServer` running the concurrent engine
with group commit and fsync durability.  Most clients issue queries,
the rest stream text updates; every update acknowledged over the wire
is durable per the group-commit contract (``docs/serving.md``).

Emits ``BENCH_serve_network.json``:

* sustained queries/sec and commit (update-ack) throughput,
* client-observed query and commit latency percentiles (p50/p99),
* group-commit batch occupancy (from the ``wal.group.batch_size``
  histogram) and fsyncs-per-commit,
* admission-control pressure (``busy`` rejections).

Knobs (environment): ``REPRO_SERVE_CLIENTS`` (total connections),
``REPRO_SERVE_WRITERS`` (of which writers), ``REPRO_SERVE_SECONDS``
(measurement window).
"""

from __future__ import annotations

import asyncio
import os
import shutil
import tempfile
import time

from ..client import AsyncClient, ClientError
from ..database import Database
from ..server import ServerThread
from ..xmldb.document import ELEM, TEXT
from .harness import render_table
from .report import emit

__all__ = ["run", "write_json", "format_report", "main"]

CLIENTS = int(os.environ.get("REPRO_SERVE_CLIENTS", "120"))
WRITER_CLIENTS = int(os.environ.get("REPRO_SERVE_WRITERS", "20"))
DURATION_SECONDS = float(os.environ.get("REPRO_SERVE_SECONDS", "6"))

JSON_PATH = "BENCH_serve_network.json"

_QUERY = "//p[.//age = 7]"


def _fixture_xml(persons: int = 24) -> str:
    body = "".join(
        f"<p><name>n{i}</name><age>{i % 50}</age></p>" for i in range(persons)
    )
    return f"<root>{body}</root>"


def _age_nids(doc) -> list[int]:
    nids = []
    for pre in range(len(doc)):
        if doc.kind[pre] != TEXT:
            continue
        parent = doc.parent(pre)
        if doc.kind[parent] == ELEM and doc.name_of(parent) == "age":
            nids.append(doc.nid[pre])
    return nids


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


async def _drive(
    host: str,
    port: int,
    clients: int,
    writer_clients: int,
    duration: float,
    nids: list[int],
) -> dict:
    """Run the client fleet; returns raw latency samples and counts."""
    connections = []
    for _ in range(clients):
        client = AsyncClient()
        await client.connect(host, port)
        connections.append(client)

    query_lat: list[float] = []
    commit_lat: list[float] = []
    busy = 0
    deadline = time.perf_counter() + duration
    started = asyncio.Event()

    async def reader(client: AsyncClient) -> int:
        done = 0
        await started.wait()
        while time.perf_counter() < deadline:
            begin = time.perf_counter()
            await client.query(_QUERY)
            query_lat.append(time.perf_counter() - begin)
            done += 1
        return done

    async def writer(client: AsyncClient, slot: int) -> int:
        nonlocal busy
        done = 0
        await started.wait()
        while time.perf_counter() < deadline:
            nid = nids[(slot + done) % len(nids)]
            begin = time.perf_counter()
            try:
                await client.update_text(nid, str((slot + done) % 50))
            except ClientError as exc:
                if exc.code == "busy":
                    busy += 1
                    await asyncio.sleep((exc.retry_after_ms or 25.0) / 1000.0)
                    continue
                raise
            commit_lat.append(time.perf_counter() - begin)
            done += 1
        return done

    tasks = []
    for slot, client in enumerate(connections):
        if slot < writer_clients:
            tasks.append(asyncio.ensure_future(writer(client, slot)))
        else:
            tasks.append(asyncio.ensure_future(reader(client)))
    started.set()
    begin = time.perf_counter()
    counts = await asyncio.gather(*tasks)
    elapsed = time.perf_counter() - begin

    metrics = await connections[0].metrics()
    for client in connections:
        await client.close()

    commits = sum(counts[:writer_clients])
    queries = sum(counts[writer_clients:])
    return {
        "elapsed": elapsed,
        "queries": queries,
        "commits": commits,
        "busy_rejections": busy,
        "query_lat": sorted(query_lat),
        "commit_lat": sorted(commit_lat),
        "metrics": metrics,
    }


def run(
    clients: int = CLIENTS,
    writer_clients: int = WRITER_CLIENTS,
    duration: float = DURATION_SECONDS,
) -> dict:
    """One measured configuration; returns the JSON payload."""
    base = tempfile.mkdtemp(prefix="bench-serve-")
    try:
        db = Database(
            os.path.join(base, "db"),
            typed=(),
            sync="fsync",
            checkpoint_every=0,
            concurrent=True,
            group_commit=True,
            group_batch_max=32,
        )
        doc = db.load("bench", _fixture_xml())
        nids = _age_nids(doc)
        db.manager.metrics.reset()

        thread = ServerThread(db, max_pending_updates=128,
                              read_workers=8, write_workers=8)
        host, port = thread.start()
        try:
            raw = asyncio.run(
                _drive(host, port, clients, writer_clients, duration, nids)
            )
        finally:
            thread.stop()
        if thread.server.close_error is not None:
            raise RuntimeError(
                f"drain failed: {thread.server.close_error!r}"
            )

        counters = raw["metrics"]["counters"]
        histograms = raw["metrics"].get("histograms", {})
        batch_size = histograms.get("wal.group.batch_size", {})
        fsyncs = counters.get("wal.fsyncs", 0)
        payload = {
            "clients": clients,
            "reader_clients": clients - writer_clients,
            "writer_clients": writer_clients,
            "duration_seconds": raw["elapsed"],
            "queries": raw["queries"],
            "queries_per_second": raw["queries"] / raw["elapsed"],
            "query_p50_us": _percentile(raw["query_lat"], 0.50) * 1e6,
            "query_p99_us": _percentile(raw["query_lat"], 0.99) * 1e6,
            "commits": raw["commits"],
            "commits_per_second": raw["commits"] / raw["elapsed"],
            "commit_p50_us": _percentile(raw["commit_lat"], 0.50) * 1e6,
            "commit_p99_us": _percentile(raw["commit_lat"], 0.99) * 1e6,
            "busy_rejections": raw["busy_rejections"],
            "batch_occupancy_mean": batch_size.get("mean", 0.0),
            "batch_occupancy_max": batch_size.get("max", 0.0),
            "batches": counters.get("wal.group.batches", 0),
            "fsyncs": fsyncs,
            "fsyncs_per_commit": (
                fsyncs / raw["commits"] if raw["commits"] else 0.0
            ),
            "server_counters": {
                key: value
                for key, value in counters.items()
                if key.startswith(("server.", "wal.", "concurrency."))
            },
        }
        return payload
    finally:
        shutil.rmtree(base, ignore_errors=True)


def write_json(payload: dict, path: str = JSON_PATH) -> dict:
    return emit(
        path, "serve_network", payload,
        workload=f"{CLIENTS} pipelined connections "
                 f"({WRITER_CLIENTS} writers), query {_QUERY!r}",
        config={"clients": CLIENTS, "writer_clients": WRITER_CLIENTS,
                "duration_seconds": DURATION_SECONDS},
    )


def format_report(payload: dict) -> str:
    headers = ["clients", "queries/s", "query p50/p99 µs",
               "commits/s", "commit p50/p99 ms", "batch occ", "busy"]
    rows = [[
        f"{payload['clients']} ({payload['writer_clients']}w)",
        f"{payload['queries_per_second']:,.0f}",
        f"{payload['query_p50_us']:.0f}/{payload['query_p99_us']:.0f}",
        f"{payload['commits_per_second']:,.0f}",
        f"{payload['commit_p50_us'] / 1000:.1f}/"
        f"{payload['commit_p99_us'] / 1000:.1f}",
        f"{payload['batch_occupancy_mean']:.1f}",
        str(payload["busy_rejections"]),
    ]]
    return render_table(headers, rows)


def main() -> None:
    payload = run()
    print(f"Network serving bench ({payload['clients']} connections, "
          f"{payload['writer_clients']} writers, fsync + group commit)")
    print(format_report(payload))
    write_json(payload)
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
