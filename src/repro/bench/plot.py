"""Minimal ASCII plotting for the figure drivers.

The paper's Figures 10 and 11 are plots (update-time curves; a log-log
collision histogram).  The drivers print their data as tables for
precision and as ASCII plots for shape — monochrome terminal output,
one marker character per series.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&$"


def _transform(value: float, log: bool) -> float:
    if log:
        return math.log10(max(value, 1e-12))
    return value


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    log_y: bool = False,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render point series on one ASCII grid.

    Args:
        series: label -> [(x, y), ...]; each series gets a marker.
        width/height: Plot area in characters.
        log_x/log_y: Logarithmic axes (values must then be positive).

    Returns the plot plus a legend, as a multi-line string.
    """
    points = [
        (_transform(x, log_x), _transform(y, log_y))
        for values in series.values()
        for x, y in values
    ]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={label}")
        for x, y in values:
            tx = (_transform(x, log_x) - x_low) / x_span
            ty = (_transform(y, log_y) - y_low) / y_span
            column = min(width - 1, int(tx * (width - 1)))
            row = height - 1 - min(height - 1, int(ty * (height - 1)))
            grid[row][column] = marker

    def fmt(value: float, log: bool) -> str:
        if log:
            return f"1e{value:.1f}"
        return f"{value:g}"

    lines = []
    top = f"{fmt(y_high, log_y)} ({y_label})"
    lines.append(top)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f"{fmt(y_low, log_y)}  x: {fmt(x_low, log_x)} .. "
        f"{fmt(x_high, log_x)} ({x_label})"
    )
    lines.append("legend: " + "  ".join(legend))
    return "\n".join(lines)
