"""Batch executor speedup: vectorized vs. scalar query execution.

Runs every workload query set (the Figure 9/10 corpora) against the
same loaded database twice — once with the vectorized batch executor,
once with the scalar per-node executor — asserts bit-identical
results, and reports per-query best-of-N latencies with their speedup.
Emits ``BENCH_vectorized_exec.json`` (consumed by CI and
EXPERIMENTS.md); the headline number is the median speedup across all
(dataset, query) pairs.

Scale note: batch execution pays a fixed numpy overhead per operator,
so its advantage grows with document size (scalar cost is linear in
the candidate count; batch cost is mostly sublinear).  The default
scale (``REPRO_BENCH_SCALE_VECTORIZED``, falling back to 12x the
generator unit) yields documents of a few hundred thousand to a
couple million nodes — still far below the paper's corpora, which is
the *conservative* direction for the reported speedup.
"""

from __future__ import annotations

import os
import statistics
import time
from dataclasses import dataclass, field

from ..core.manager import IndexManager
from ..query.planner import query
from ..workloads import DATASETS, QUERY_SETS
from .harness import render_table
from .report import emit

__all__ = ["QueryTiming", "DatasetResult", "run", "write_json",
           "format_report", "main"]

#: Datasets of the sweep (one XMark size representative; the larger
#: XMark generators only multiply runtime, not query shapes).
BENCH_DATASETS = ("XMark1", "DBLP", "PSD", "Wiki", "EPAGeo")

#: Default output path (cwd, like the printed reports).
JSON_PATH = "BENCH_vectorized_exec.json"

#: Default generator scale; override with REPRO_BENCH_SCALE_VECTORIZED.
DEFAULT_SCALE = 12.0


@dataclass
class QueryTiming:
    """Timings of one query under both executors."""

    name: str
    text: str
    rows: int
    vectorized_seconds: float
    scalar_seconds: float

    @property
    def speedup(self) -> float:
        return self.scalar_seconds / self.vectorized_seconds


@dataclass
class DatasetResult:
    """All query timings for one dataset."""

    name: str
    nodes: int
    timings: list[QueryTiming] = field(default_factory=list)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_dataset(
    name: str, scale: float, repeats: int = 5
) -> DatasetResult:
    """Load one dataset and time its query set under both executors."""
    spec = DATASETS[name]
    manager = IndexManager(string=True, typed=("double",), substring=True)
    manager.load(name, spec.build(scale))
    doc = manager.store.document(name)
    result = DatasetResult(name=name, nodes=len(doc))
    for query_name, text in QUERY_SETS[name]:
        vectorized = query(manager, text, vectorized=True)
        scalar = query(manager, text, vectorized=False)
        if vectorized != scalar:  # pragma: no cover - equivalence bug
            raise AssertionError(
                f"{name}/{query_name}: executors disagree "
                f"({len(vectorized)} vs {len(scalar)} rows)"
            )
        result.timings.append(
            QueryTiming(
                name=query_name,
                text=text,
                rows=len(vectorized),
                vectorized_seconds=_best_of(
                    lambda: query(manager, text, vectorized=True), repeats
                ),
                scalar_seconds=_best_of(
                    lambda: query(manager, text, vectorized=False), repeats
                ),
            )
        )
    return result


def run(
    scale: float | None = None, repeats: int = 5
) -> list[DatasetResult]:
    if scale is None:
        scale = float(
            os.environ.get("REPRO_BENCH_SCALE_VECTORIZED", DEFAULT_SCALE)
        )
    return [bench_dataset(name, scale, repeats) for name in BENCH_DATASETS]


def median_speedup(results: list[DatasetResult]) -> float:
    return statistics.median(
        timing.speedup for result in results for timing in result.timings
    )


def format_report(results: list[DatasetResult]) -> str:
    rows = []
    for result in results:
        for timing in result.timings:
            rows.append(
                (
                    result.name,
                    timing.name,
                    timing.rows,
                    f"{timing.vectorized_seconds * 1e3:.2f}",
                    f"{timing.scalar_seconds * 1e3:.2f}",
                    f"{timing.speedup:.1f}x",
                )
            )
    return render_table(
        ("dataset", "query", "rows", "vectorized ms", "scalar ms",
         "speedup"),
        rows,
    )


def write_json(
    results: list[DatasetResult], path: str = JSON_PATH
) -> dict:
    payload = {
        "datasets": [
            {
                "name": result.name,
                "nodes": result.nodes,
                "queries": [
                    {
                        "name": timing.name,
                        "query": timing.text,
                        "rows": timing.rows,
                        "vectorized_seconds": timing.vectorized_seconds,
                        "scalar_seconds": timing.scalar_seconds,
                        "speedup": timing.speedup,
                    }
                    for timing in result.timings
                ],
            }
            for result in results
        ],
        "aggregate": {
            "median_speedup": median_speedup(results),
            "query_count": sum(len(r.timings) for r in results),
        },
    }
    return emit(
        path, "vectorized_exec", payload,
        workload=f"{payload['aggregate']['query_count']}-query sweep "
                 f"over {list(BENCH_DATASETS)}",
        config={"datasets": list(BENCH_DATASETS)},
    )


def main() -> None:
    results = run()
    print("Vectorized batch executor vs. scalar executor "
          "(best-of-5 per query)")
    print(format_report(results))
    payload = write_json(results)
    print(
        f"median speedup over {payload['aggregate']['query_count']} "
        f"queries: {payload['aggregate']['median_speedup']:.2f}x"
    )
    print(f"wrote {JSON_PATH}")


if __name__ == "__main__":
    main()
