"""Benchmark drivers: one module per paper table/figure.

Run any of them directly::

    python -m repro.bench.table1
    python -m repro.bench.figure9
    python -m repro.bench.figure10
    python -m repro.bench.figure11

or through ``pytest benchmarks/ --benchmark-only``, which times the
kernels with pytest-benchmark and prints the same reports.
"""

from .harness import format_bytes, measure_seconds, render_table

__all__ = ["format_bytes", "measure_seconds", "render_table"]
