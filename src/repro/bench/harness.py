"""Shared benchmark utilities: timing and table rendering."""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

__all__ = ["measure_seconds", "render_table", "format_bytes"]


def measure_seconds(
    fn: Callable[[], object], repeats: int = 3
) -> tuple[float, object]:
    """Run ``fn`` ``repeats`` times; return (average seconds, last result).

    Mirrors the paper's methodology of averaging repeated cold runs —
    the caller is responsible for resetting state between runs if the
    operation is not idempotent.
    """
    total = 0.0
    result: object = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        total += time.perf_counter() - start
    return total / repeats, result


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialised:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_bytes(count: int) -> str:
    """Human-readable byte count."""
    value = float(count)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024 or unit == "GB":
            return f"{value:,.1f} {unit}"
        value /= 1024
    return f"{value:,.1f} GB"  # pragma: no cover
