"""Figure 11 — hash stability (collision distribution).

Per dataset: collect the *distinct* string values of all value leaves,
group them by their hash value, and report how many hash values are
shared by 1, 2, ... 10 distinct strings (the paper's log-log plot).
The paper sees <1% of strings colliding on most datasets, up to ~10%
on PSD/Wiki, with the Wiki URL pathology producing groups of up to 9
distinct strings per hash.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.hashing import hash_string
from ..workloads import DATASETS, bench_scale
from ..xmldb import Store
from ..xmldb.document import ATTR, TEXT, Document
from .harness import render_table

__all__ = ["StabilityResult", "distinct_values", "hash_stability", "run", "format_report", "main"]


@dataclass
class StabilityResult:
    """Collision distribution for one dataset."""

    name: str
    distinct_strings: int
    #: group size (distinct strings per hash) -> number of hash values
    histogram: dict[int, int]

    @property
    def colliding_strings(self) -> int:
        return sum(
            size * count
            for size, count in self.histogram.items()
            if size > 1
        )

    @property
    def collision_fraction(self) -> float:
        if not self.distinct_strings:
            return 0.0
        return self.colliding_strings / self.distinct_strings

    @property
    def max_group(self) -> int:
        return max(self.histogram, default=0)


def distinct_values(doc: Document) -> set[str]:
    """Distinct string values of all value leaves (text + attributes)."""
    return {
        doc.text_of(pre)
        for pre in range(len(doc))
        if doc.kind[pre] in (TEXT, ATTR)
    }


def hash_stability(doc: Document, name: str | None = None) -> StabilityResult:
    """Group distinct values by hash; return the collision histogram."""
    values = distinct_values(doc)
    groups = Counter(hash_string(value) for value in values)
    histogram = Counter(groups.values())
    return StabilityResult(
        name=name or doc.name,
        distinct_strings=len(values),
        histogram=dict(histogram),
    )


def run(scale: float | None = None) -> list[StabilityResult]:
    scale = bench_scale() if scale is None else scale
    results = []
    for name, spec in DATASETS.items():
        store = Store()
        doc = store.add_document(name, spec.build(scale))
        results.append(hash_stability(doc))
    return results


def format_report(results: list[StabilityResult]) -> str:
    max_size = max((r.max_group for r in results), default=1)
    headers = ["Data", "Distinct", "Collide%"] + [
        f"x{size}" for size in range(1, max_size + 1)
    ]
    rows = []
    for r in results:
        rows.append(
            [r.name, f"{r.distinct_strings:,}", f"{r.collision_fraction:.2%}"]
            + [str(r.histogram.get(size, 0)) for size in range(1, max_size + 1)]
        )
    return render_table(headers, rows)


def format_plot(results: list[StabilityResult]) -> str:
    """The paper's log-log plot: hash-value count vs group size."""
    from .plot import ascii_plot

    series = {
        r.name: sorted((size, count) for size, count in r.histogram.items())
        for r in results
        if r.histogram
    }
    return ascii_plot(
        series,
        log_x=True,
        log_y=True,
        x_label="distinct strings per hash",
        y_label="number of hash values",
    )


def main() -> None:
    results = run()
    print(
        "Figure 11: hash stability — number of hash values (columns) shared "
        "by k distinct strings"
    )
    print(format_report(results))
    print()
    print(format_plot(results))


if __name__ == "__main__":
    main()
