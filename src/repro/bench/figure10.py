"""Figure 10 — update time vs. number of updated text nodes.

Per dataset and per batch size (1 ... 10^4 by default; the paper's
x-axis reaches 10^5), measure the time of one maintenance pass over a
random batch of text-node updates, separately for the string index and
the double index.  The paper's curves are flat for small batches
(tens of ms) and stay under ~400 ms at 10^6 updates on 2 GB documents;
the reproduction's shape — sub-linear growth, double cheaper than
string — is asserted by the benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core.manager import IndexManager
from ..workloads import DATASETS, bench_scale, random_text_updates
from .harness import measure_seconds, render_table

__all__ = ["UpdateSeries", "run", "format_report", "main"]

DEFAULT_BATCHES = (1, 10, 100, 1000, 10000)


@dataclass
class UpdateSeries:
    """Update timings for one dataset and one index kind."""

    name: str
    index_kind: str  # "string" | "double"
    nodes: int
    #: batch size -> average seconds per maintenance pass
    timings: dict[int, float] = field(default_factory=dict)


def _manager_for(kind: str, name: str, xml: str) -> IndexManager:
    if kind == "string":
        manager = IndexManager(string=True, typed=())
    else:
        manager = IndexManager(string=False, typed=("double",))
    manager.load(name, xml)
    return manager


def measure_dataset(
    name: str,
    xml: str,
    kind: str,
    batches: tuple[int, ...] = DEFAULT_BATCHES,
    repeats: int = 5,
    seed: int = 7,
) -> UpdateSeries:
    """Measure maintenance time per batch size for one dataset/index."""
    manager = _manager_for(kind, name, xml)
    doc = manager.store.document(name)
    rng = random.Random(seed)
    series = UpdateSeries(name=name, index_kind=kind, nodes=len(doc))
    for batch in batches:
        def one_pass():
            updates = random_text_updates(doc, batch, rng)
            return manager.update_texts(updates)

        seconds, _ = measure_seconds(one_pass, repeats)
        series.timings[batch] = seconds
    return series


def run(
    scale: float | None = None,
    kinds: tuple[str, ...] = ("string", "double"),
    batches: tuple[int, ...] = DEFAULT_BATCHES,
    repeats: int = 5,
) -> list[UpdateSeries]:
    scale = bench_scale() if scale is None else scale
    results = []
    for name, spec in DATASETS.items():
        xml = spec.build(scale)
        for kind in kinds:
            results.append(
                measure_dataset(name, xml, kind, batches, repeats)
            )
    return results


def format_report(results: list[UpdateSeries]) -> str:
    batches = sorted({b for r in results for b in r.timings})
    headers = ["Data", "Index", "Nodes"] + [f"{b} upd (ms)" for b in batches]
    rows = []
    for r in results:
        rows.append(
            [r.name, r.index_kind, f"{r.nodes:,}"]
            + [
                f"{r.timings[b] * 1000:.1f}" if b in r.timings else "-"
                for b in batches
            ]
        )
    return render_table(headers, rows)


def format_plot(results: list[UpdateSeries], kind: str) -> str:
    """ASCII rendition of one of the figure's two panels."""
    from .plot import ascii_plot

    series = {
        r.name: [(b, t * 1000) for b, t in sorted(r.timings.items())]
        for r in results
        if r.index_kind == kind
    }
    return ascii_plot(
        series,
        log_x=True,
        x_label="updated nodes",
        y_label=f"ms ({kind} index)",
    )


def main() -> None:
    results = run()
    print("Figure 10: update time vs number of updated text nodes")
    print(format_report(results))
    for kind in ("string", "double"):
        print()
        print(format_plot(results, kind))


if __name__ == "__main__":
    main()
