"""One shard core behind the wire protocol, in its own OS process.

``python -m repro.shard.worker --path DIR`` opens (or recovers) the
shard directory as a concurrent :class:`~repro.shard.engine.ShardEngine`
and serves it with the ordinary :class:`~repro.server.DatabaseServer` —
the shard IPC *is* the public wire protocol, so every server guarantee
(snapshot-pinned reads, admission control, graceful drain, acked ⇒
durable) holds per shard for free.  On successful bind the worker
prints one line::

    PORT <port>

to stdout (the coordinator's readiness signal + address) and serves
until SIGTERM.

Fault testing: ``--kill-at POINT[:OCCURRENCE]`` installs a process-wide
:class:`~repro.storage.faults.FaultInjector` that calls ``os._exit`` at
the chosen crashpoint — a *real* process death mid-commit, not an
exception Python could unwind; ``--kill-keep-bytes N`` additionally
tears the write at a write-shaped point, leaving N bytes of the frame
on disk for recovery to reject.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import BinaryIO

from ..server import DatabaseServer
from ..storage import faults
from .engine import ShardEngine

__all__ = ["KillSwitch", "main"]


class KillSwitch(faults.FaultInjector):
    """A fault injector that dies for real.

    :class:`~repro.storage.faults.InjectedCrash` models a power cut
    inside one thread; for shard-kill tests the whole *process* must
    vanish mid-commit, so the armed occurrence calls ``os._exit`` —
    no atexit hooks, no flushing, no graceful anything.  A torn-write
    plan still writes its ``keep_bytes`` prefix first, so the on-disk
    state is exactly what a mid-write power cut leaves.
    """

    EXIT_CODE = 43

    def on_crashpoint(self, point: str) -> None:
        count = self._register(point)
        if self._should_crash(point, count):
            os._exit(self.EXIT_CODE)

    def on_write(self, fh: BinaryIO, data: bytes, point: str) -> None:
        count = self._register(point)
        if self._should_crash(point, count):
            keep = self.crash.keep_bytes
            if keep:
                fh.write(data[:keep])
                fh.flush()
                os.fsync(fh.fileno())
            os._exit(self.EXIT_CODE)
        fh.write(data)


def _parse_kill(spec: str) -> tuple[str, int]:
    point, _, occurrence = spec.partition(":")
    return point, int(occurrence) if occurrence else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-shard-worker",
        description="serve one shard directory over the wire protocol",
    )
    parser.add_argument("--path", required=True, help="shard directory")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks an ephemeral port (default)")
    parser.add_argument("--shard-id", type=int, default=None)
    parser.add_argument("--sync", default="flush",
                        choices=("none", "flush", "fsync"))
    parser.add_argument("--checkpoint-every", type=int, default=10_000)
    parser.add_argument("--no-group-commit", action="store_true",
                        help="serve with plain concurrent WAL appends")
    parser.add_argument("--retain-epochs", type=int, default=0,
                        help="time-travel window for as_of queries "
                             "(docs/replication.md)")
    parser.add_argument("--placement-version", type=int, default=None,
                        help="cluster layout version this worker serves "
                             "under (stale-stamped scatters get doc_moved)")
    parser.add_argument("--kill-at", default=None, metavar="POINT[:OCC]",
                        help="os._exit at the OCCth hit of crashpoint POINT")
    parser.add_argument("--kill-keep-bytes", type=int, default=None,
                        help="bytes of the fatal write to leave on disk")
    args = parser.parse_args(argv)

    if args.kill_at is not None:
        point, occurrence = _parse_kill(args.kill_at)
        faults._INJECTOR = KillSwitch(
            faults.CrashPlan(point, occurrence,
                             keep_bytes=args.kill_keep_bytes)
        )

    engine = ShardEngine(
        args.path,
        sync=args.sync,
        checkpoint_every=args.checkpoint_every,
        concurrent=True,
        group_commit=not args.no_group_commit,
        shard_id=args.shard_id,
        retain_epochs=args.retain_epochs,
    )

    async def run() -> None:
        server = DatabaseServer(engine, host=args.host, port=args.port,
                                placement_version=args.placement_version)
        await server.start()
        print(f"PORT {server.port}", flush=True)
        await server.serve_until(asyncio.Event())
        if server.close_error is not None:
            raise server.close_error

    asyncio.run(run())
    return 0


if __name__ == "__main__":
    sys.exit(main())
