"""Scatter-gather coordinator over per-document shard workers.

:class:`ShardCluster` runs N shard workers (separate OS processes by
default — one engine per core is the whole point — or in-process
:class:`~repro.server.ServerThread`\\ s for fast tests), places whole
documents on shards via the :class:`~repro.shard.manifest.ShardingManifest`,
and presents the familiar engine API on top:

* **updates** are routed to the single shard owning the document, so
  every engine guarantee (WAL, group commit, acked ⇒ durable) holds
  unchanged — an update never spans shards;
* **queries** scatter to every owning shard over the wire protocol
  (predicates travel with the query text, so each shard runs its own
  index plans and only ``(document, pre, nid)`` row batches come
  back), and the gather side k-way merges the per-shard sorted key
  arrays with :func:`repro.query.kernels.kway_merge` into exactly the
  order a single-shard engine would produce;
* **read views** pin a *consistent epoch vector* by two-phase
  publication: phase one pins a session view on every shard, phase
  two re-reads every shard's published epoch and retries until no
  shard advanced in between — since each update commits on exactly
  one shard, a vector observed in such a quiescent instant is a
  consistent cut;
* a shard that dies surfaces as the stable ``shard_down`` error
  (:class:`ShardDownError`) on every operation that needs it, while
  the remaining shards keep serving; :meth:`restart_shard` respawns
  the worker, whose engine recovers from its own WAL + manifest;
* the cluster is **elastic**: :meth:`migrate_document` moves one live
  document between shards (snapshot copy at a pinned epoch via the
  replication protocol, WAL tail replay, a paused-updates cutover and
  an atomic manifest flip), :meth:`rebalance` re-levels placement
  under a pluggable policy, and :meth:`resize` grows or shrinks the
  worker pool.  Queries racing a flip see the old or the new
  placement, never both: every scatter is stamped with the manifest
  version it was planned under and a shard that has moved on answers
  with the retryable ``doc_moved`` code
  (:class:`DocumentMovedError`), which :meth:`query` absorbs by
  re-planning.

``docs/sharding.md`` specifies placement, snapshots, migration and
failure semantics; ``repro.bench.shard`` measures the scale-out
claim and ``repro.bench.elastic`` the cost of a live migration.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from .. import wire
from ..client import Client, ClientError
from ..errors import ReproError
from ..query.kernels import kway_merge
from ..query.plan import RemotePlan, ScatterGather, number_plan, render_plan
from ..storage import faults
from .engine import ShardEngine
from .manifest import ShardingManifest

__all__ = [
    "ShardCluster", "ShardError", "ShardDownError", "DocumentMovedError",
    "ClusterView", "greedy_balance",
]

#: Bits reserved for ``pre`` in the int64 merge key
#: ``global_doc_index << PRE_BITS | pre`` (a single document may hold
#: up to 2**40 nodes before keys could collide).
PRE_BITS = 40
_PRE_MASK = (1 << PRE_BITS) - 1

#: Attempts at a stable epoch vector before giving up.
PIN_ATTEMPTS = 16

#: Extra attempts a plain (un-pinned) query makes after a ``doc_moved``
#: rejection before surfacing the error; each retry re-plans against
#: the then-current manifest, so one in-flight migration costs at most
#: one bounce.
MOVED_RETRIES = 4


class ShardError(ReproError):
    """A cluster-level failure tagged with the shard it came from."""

    code = "shard_error"

    def __init__(self, shard: int | None, message: str):
        super().__init__(message)
        self.shard = shard


class ShardDownError(ShardError):
    """The owning shard is unreachable (stable code ``shard_down``).

    Raised for every routed or scattered operation that needs the dead
    shard; other shards keep serving.  :meth:`ShardCluster.restart_shard`
    brings the worker back through ordinary WAL recovery.
    """

    code = wire.E_SHARD_DOWN


class DocumentMovedError(ShardError):
    """A scatter was planned under a manifest version a shard has
    already left behind (stable code ``doc_moved``): a migration
    flipped placement between planning and execution.  Transient —
    re-plan against the current manifest and retry, which
    :meth:`ShardCluster.query` does automatically."""

    code = wire.E_DOC_MOVED


class ClusterView:
    """A pinned cross-shard read view: one epoch per shard, one
    consistent cut overall (see module docstring).

    The view also freezes the *placement* it was pinned under
    (``plan``/``placement_version``): queries through the view scatter
    to the shards that owned each document at pin time, so a migration
    that flips the manifest mid-view cannot split or duplicate the
    view's result rows.  The source copy of a migrated document
    outlives the flip for as long as any view is open (deferred
    unload), so those pinned placements keep answering.
    """

    def __init__(self, pins: dict[int, tuple[int, int]],
                 plan: dict[int, list[str]] | None = None,
                 version: int | None = None):
        #: shard → (server view token, pinned epoch)
        self.pins = pins
        #: shard → documents it served when the view was pinned
        self.plan = plan if plan is not None else {}
        #: manifest version the plan was snapshotted at
        self.placement_version = version

    @property
    def epochs(self) -> dict[int, int]:
        """The pinned epoch vector (shard → epoch)."""
        return {shard: epoch for shard, (_view, epoch) in self.pins.items()}

    def token(self, shard: int) -> int | None:
        pin = self.pins.get(shard)
        return pin[0] if pin else None


def _src_dir() -> str:
    # .../src/repro/shard/coordinator.py → .../src
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


class _ProcessWorker:
    """One shard worker in its own OS process (the scale-out unit)."""

    def __init__(self, path: str, shard_id: int, *, sync: str,
                 checkpoint_every: int, group_commit: bool,
                 kill_at: str | None = None,
                 kill_keep_bytes: int | None = None,
                 placement_version: int | None = None):
        cmd = [
            sys.executable, "-m", "repro.shard.worker",
            "--path", path,
            "--shard-id", str(shard_id),
            "--sync", sync,
            "--checkpoint-every", str(checkpoint_every),
        ]
        if placement_version is not None:
            cmd += ["--placement-version", str(placement_version)]
        if not group_commit:
            cmd.append("--no-group-commit")
        if kill_at is not None:
            cmd += ["--kill-at", kill_at]
            if kill_keep_bytes is not None:
                cmd += ["--kill-keep-bytes", str(kill_keep_bytes)]
        env = dict(os.environ)
        src = _src_dir()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, env=env, text=True
        )
        line = self.proc.stdout.readline()
        if not line.startswith("PORT "):
            self.proc.wait()
            raise ShardError(
                shard_id, f"worker for shard {shard_id} failed to start "
                f"(exit {self.proc.returncode})"
            )
        self.host = "127.0.0.1"
        self.port = int(line.split()[1])

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stop(self, timeout: float = 60.0) -> None:
        if self.alive():
            self.proc.terminate()  # SIGTERM → graceful drain
        try:
            self.proc.wait(timeout=timeout)
        finally:
            self.proc.stdout.close()

    def kill(self) -> None:
        """Hard kill (test support — no drain, no checkpoint)."""
        if self.alive():
            self.proc.kill()
        self.proc.wait()
        self.proc.stdout.close()


class _ThreadWorker:
    """One shard worker on an in-process server thread (fast tests;
    shares the GIL, so no true scale-out and no hard kill)."""

    def __init__(self, path: str, shard_id: int, *, sync: str,
                 checkpoint_every: int, group_commit: bool,
                 kill_at: str | None = None,
                 kill_keep_bytes: int | None = None,
                 placement_version: int | None = None):
        if kill_at is not None:
            raise ShardError(
                shard_id, "kill injection requires the process transport"
            )
        from ..server import ServerThread

        self.engine = ShardEngine(
            path, sync=sync, checkpoint_every=checkpoint_every,
            concurrent=True, group_commit=group_commit, shard_id=shard_id,
        )
        self.thread = ServerThread(self.engine,
                                   placement_version=placement_version)
        self.host, self.port = self.thread.start()
        self._stopped = False

    def alive(self) -> bool:
        return not self._stopped

    def stop(self, timeout: float = 60.0) -> None:
        if not self._stopped:
            self._stopped = True
            self.thread.stop(timeout=timeout)

    def kill(self) -> None:
        self.stop()


class ShardCluster:
    """Coordinate N shard workers behind one engine-shaped API.

    Args:
        root: Cluster directory — ``SHARDING.json`` plus one
            ``shard-NNN/`` engine directory per shard.
        shards: Shard count for a *new* cluster (an existing
            ``SHARDING.json`` wins; passing a conflicting count is an
            error).
        config: Index configuration for new shards, e.g.
            ``{"string": True, "typed": ["double"], "substring": False}``
            — recorded in the sharding manifest so restarts and late
            shard creation agree.
        transport: ``"process"`` (one worker per OS process; the
            scale-out deployment) or ``"thread"`` (in-process server
            threads; fast tests).
        sync / checkpoint_every / group_commit: Per-shard engine knobs
            (see :class:`~repro.shard.engine.ShardEngine`).
    """

    def __init__(self, root: str, shards: int | None = None,
                 config: dict[str, Any] | None = None,
                 transport: str = "process", sync: str = "flush",
                 checkpoint_every: int = 10_000,
                 group_commit: bool = True):
        if transport not in ("process", "thread"):
            raise ValueError(f"unknown transport {transport!r}")
        if ShardingManifest.exists(root):
            self.manifest = ShardingManifest.load(root)
            if shards is not None and shards != self.manifest.shards:
                raise ShardError(
                    None,
                    f"cluster at {root!r} has {self.manifest.shards} "
                    f"shards; cannot reopen with {shards}",
                )
        else:
            if shards is None:
                raise ShardError(None, "new cluster needs a shard count")
            self.manifest = ShardingManifest(shards, config=config)
            self.manifest.save(root)
        self.root = root
        self.transport = transport
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self.group_commit = group_commit
        self._workers: dict[int, Any] = {}
        self._clients: dict[int, Client | None] = {}
        self._client_locks: dict[int, threading.Lock] = {}
        self._kill_specs: dict[int, tuple[str, int | None]] = {}
        self._doc_index: dict[str, int] = {}
        # Elasticity state (docs/sharding.md "Elastic shards"): the
        # route lock guards manifest mutation + plan snapshots; the
        # condition gates updates during a migration cutover.
        self._route_lock = threading.RLock()
        self._route_cond = threading.Condition(self._route_lock)
        self._paused_shards: set[int] = set()
        self._inflight_updates: dict[int, int] = {}
        self._views_open = 0
        self._pending_unloads: list[tuple[int, str]] = []
        self._reindex()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardCluster":
        """Create missing shard directories (with the manifest's index
        config), spawn every worker, handshake each connection, and
        :meth:`reconcile` placement against what the shards actually
        hold (repairing any migration the previous coordinator died
        mid-way through)."""
        self.create_shards()
        for shard in range(self.manifest.shards):
            self._spawn(shard)
        self.reconcile()
        return self

    def create_shards(self) -> None:
        """Create any missing shard engine directories without
        spawning workers (the ``shard-init`` CLI path)."""
        for shard in range(self.manifest.shards):
            self._ensure_shard_dir(shard)

    def addresses(self) -> dict[int, tuple[str, int]]:
        """Bound address of every running worker (shard → host, port)."""
        return {
            shard: (worker.host, worker.port)
            for shard, worker in sorted(self._workers.items())
        }

    def _ensure_shard_dir(self, shard: int) -> None:
        path = self.manifest.shard_dir(self.root, shard)
        if not os.path.exists(os.path.join(path, "MANIFEST.json")):
            config = self.manifest.config
            ShardEngine(
                path,
                string=config.get("string", True),
                typed=tuple(config.get("typed", ("double",))),
                substring=config.get("substring", False),
            ).close()

    def _spawn(self, shard: int) -> None:
        cls = _ProcessWorker if self.transport == "process" else _ThreadWorker
        kill_at, keep = self._kill_specs.pop(shard, (None, None))
        worker = cls(
            self.manifest.shard_dir(self.root, shard), shard,
            sync=self.sync, checkpoint_every=self.checkpoint_every,
            group_commit=self.group_commit,
            kill_at=kill_at, kill_keep_bytes=keep,
            placement_version=self.manifest.version,
        )
        self._workers[shard] = worker
        self._client_locks.setdefault(shard, threading.Lock())
        client = Client(worker.host, worker.port)
        client.handshake(features=("rows", "elastic"))
        self._clients[shard] = client

    def stop(self) -> None:
        """Drain every worker (graceful: in-flight work finishes, each
        shard checkpoints and truncates its WAL) and save the manifest."""
        with self._route_lock:
            self._views_open = 0
        self._flush_unloads()
        for client in self._clients.values():
            if client is not None:
                client.close()
        self._clients.clear()
        for worker in self._workers.values():
            worker.stop()
        self._workers.clear()
        self.manifest.save(self.root)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- fault-test support ---------------------------------------------

    def arm_kill(self, shard: int, point: str,
                 occurrence: int = 1,
                 keep_bytes: int | None = None) -> None:
        """Arm the *next spawn* of ``shard`` to ``os._exit`` at the
        given crashpoint occurrence (process transport only) — a real
        mid-commit process death for the fault suite."""
        spec = point if occurrence == 1 else f"{point}:{occurrence}"
        self._kill_specs[shard] = (spec, keep_bytes)

    def kill_shard(self, shard: int) -> None:
        """Hard-kill a worker immediately (no drain, no checkpoint)."""
        worker = self._workers.get(shard)
        if worker is not None:
            worker.kill()
        self._drop_client(shard)

    def restart_shard(self, shard: int) -> None:
        """Respawn one worker; its engine recovers from WAL + manifest.

        The sharding manifest is re-read from disk first: while the
        worker was down another coordinator (or an operator) may have
        migrated documents, so routing from the in-memory placement
        the dead worker was spawned under would send requests to
        shards that no longer own them.
        """
        worker = self._workers.pop(shard, None)
        if worker is not None:
            if worker.alive():
                worker.stop()
            elif isinstance(worker, _ProcessWorker):
                worker.proc.wait()
                worker.proc.stdout.close()
        self._drop_client(shard)
        with self._route_lock:
            self.manifest = ShardingManifest.load(self.root)
            self._reindex()
        self._spawn(shard)

    def shard_alive(self, shard: int) -> bool:
        worker = self._workers.get(shard)
        return worker is not None and worker.alive()

    def _drop_client(self, shard: int) -> None:
        client = self._clients.pop(shard, None)
        if client is not None:
            client.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _reindex(self) -> None:
        self._doc_index = {
            name: idx for idx, name in enumerate(self.manifest.doc_order)
        }

    def _client(self, shard: int) -> Client:
        client = self._clients.get(shard)
        worker = self._workers.get(shard)
        if client is None or worker is None or not worker.alive():
            raise ShardDownError(shard, f"shard {shard} is down")
        return client

    def _owner(self, document: str) -> int:
        with self._route_lock:
            shard = self.manifest.placement.get(document)
        if shard is None:
            raise ShardError(None, f"unknown document {document!r}")
        return shard

    def _routed(self, shard: int, fn):
        """Run one client call against ``shard``, mapping transport
        failures (dead socket, worker exit) to :class:`ShardDownError`.

        Serialized per shard: the coordinator's clients are plain
        blocking sockets, and migrations/queries/updates may now run
        from different threads.
        """
        lock = self._client_locks.setdefault(shard, threading.Lock())
        with lock:
            client = self._client(shard)
            try:
                return fn(client)
            except ClientError as exc:
                if exc.code == "disconnected":
                    raise ShardDownError(
                        shard, f"shard {shard} went down mid-request"
                    ) from exc
                raise
            except (ConnectionError, OSError) as exc:
                raise ShardDownError(
                    shard, f"shard {shard} unreachable: {exc}"
                ) from exc

    # -- migration cutover gate -----------------------------------------

    @contextmanager
    def _update_slot(self, document: str) -> Iterator[int]:
        """Admit one routed update: resolve the owner, wait out any
        cutover pause on it, and count the update in-flight so a
        migration can drain to a quiescent source.  The owner is
        re-resolved after every wake-up, so an update released by a
        cutover lands on the *new* shard, never the stale one."""
        with self._route_cond:
            while True:
                shard = self.manifest.placement.get(document)
                if shard is None:
                    raise ShardError(None, f"unknown document {document!r}")
                if shard not in self._paused_shards:
                    break
                self._route_cond.wait()
            self._inflight_updates[shard] = \
                self._inflight_updates.get(shard, 0) + 1
        try:
            yield shard
        finally:
            with self._route_cond:
                self._inflight_updates[shard] -= 1
                self._route_cond.notify_all()

    @contextmanager
    def _pause_updates(self, shard: int) -> Iterator[None]:
        """Block new updates to ``shard`` and wait for in-flight ones
        to drain (the migration cutover window).  Queries are never
        paused — reads stay online throughout a migration."""
        with self._route_cond:
            self._paused_shards.add(shard)
            while self._inflight_updates.get(shard, 0):
                self._route_cond.wait()
        try:
            yield
        finally:
            with self._route_cond:
                self._paused_shards.discard(shard)
                self._route_cond.notify_all()

    # ------------------------------------------------------------------
    # Documents and updates (single-shard routed)
    # ------------------------------------------------------------------

    def load(self, name: str, xml: str, shard: int | None = None) -> int:
        """Place + load one document; returns the owning shard.

        The placement is recorded in the sharding manifest *before*
        the shard loads (and the manifest is re-saved after), so a
        crash between the two leaves a placed-but-empty name, never an
        orphan document.
        """
        self._flush_unloads(name=name)
        with self._route_lock:
            target = self.manifest.place(name, shard)
            self.manifest.save(self.root)
            self._reindex()
        try:
            self._routed(target,
                         lambda c: c.call("load", name=name, xml=xml))
        except BaseException:
            with self._route_lock:
                self.manifest.unplace(name)
                self.manifest.save(self.root)
                self._reindex()
            raise
        return target

    def unload(self, name: str) -> None:
        shard = self._owner(name)
        self._flush_unloads(name=name)
        self._routed(shard, lambda c: c.call("unload", name=name))
        with self._route_lock:
            self.manifest.unplace(name)
            self.manifest.save(self.root)
            self._reindex()

    def update_text(self, document: str, nid: int, text: str,
                    busy_retries: int = 0) -> dict:
        with self._update_slot(document) as shard:
            return self._routed(
                shard, lambda c: c.update_text(nid, text,
                                               busy_retries=busy_retries))

    def insert_xml(self, document: str, nid: int, fragment: str,
                   before: int | None = None) -> dict:
        with self._update_slot(document) as shard:
            return self._routed(
                shard, lambda c: c.insert_xml(nid, fragment, before))

    def delete_subtree(self, document: str, nid: int) -> dict:
        with self._update_slot(document) as shard:
            return self._routed(shard, lambda c: c.delete_subtree(nid))

    def update(self, document: str, action: str, **params: Any) -> dict:
        """Generic routed update (any ``update`` wire action)."""
        with self._update_slot(document) as shard:
            return self._routed(
                shard, lambda c: c.call("update", action=action, **params))

    # ------------------------------------------------------------------
    # Scatter-gather reads
    # ------------------------------------------------------------------

    def _target_shards(self, document: str | None) -> list[int]:
        if document is not None:
            return [self._owner(document)]
        with self._route_lock:
            shards = sorted({
                self.manifest.placement[name]
                for name in self.manifest.doc_order
            })
        return shards

    def _placement_plan(
        self, document: str | None = None
    ) -> tuple[int, dict[int, list[str]]]:
        """An atomic snapshot of routing: the manifest version plus
        shard → owned documents (in document order).  Scatters built
        from one snapshot are internally consistent; the version stamp
        lets shards veto a plan a migration has already outrun."""
        with self._route_lock:
            version = self.manifest.version
            if document is not None:
                shard = self.manifest.placement.get(document)
                if shard is None:
                    raise ShardError(
                        None, f"unknown document {document!r}")
                return version, {shard: [document]}
            plan: dict[int, list[str]] = {}
            for name in self.manifest.doc_order:
                plan.setdefault(self.manifest.placement[name],
                                []).append(name)
        return version, plan

    def _scatter(self, shards: list[int], op: str, params) -> dict[int, dict]:
        """Pipeline one request to every shard, then gather: the sends
        all go out before the first receive blocks, so the shards
        evaluate concurrently in their own processes."""
        sent: dict[int, int] = {}
        for shard in shards:
            sent[shard] = self._routed(
                shard, lambda c, s=shard: c.send(op, **params(s)))
        results: dict[int, dict] = {}
        for shard, request_id in sent.items():
            results[shard] = self._routed(
                shard,
                lambda c, rid=request_id: c.receive(rid))
        return results

    def query(self, xpath: str, document: str | None = None,
              use_indexes: bool | str = True,
              view: ClusterView | None = None) -> list[tuple[str, int, int]]:
        """Scatter the query, gather ``(document, pre, nid)`` rows in
        global single-engine order (document load order, then pre).

        Un-pinned queries run against a placement-plan snapshot
        stamped with its manifest version; when a migration flips
        placement mid-scatter the outrun shard answers ``doc_moved``
        and the query transparently re-plans (up to
        :data:`MOVED_RETRIES` times).  Queries through a
        :class:`ClusterView` use the view's frozen plan instead — the
        pinned epochs predate any flip, and the source copy is kept
        loaded while the view is open.
        """
        if view is not None:
            plan = dict(view.plan)
            if document is not None:
                owner = next(
                    (s for s, docs in plan.items() if document in docs),
                    None)
                if owner is None:
                    raise ShardError(
                        None, f"unknown document {document!r}")
                plan = {owner: [document]}
            if not plan:
                return []
            return self._scatter_query(xpath, use_indexes, plan,
                                       view=view, version=None)
        for attempt in range(1 + MOVED_RETRIES):
            version, plan = self._placement_plan(document)
            if not plan:
                return []
            try:
                return self._scatter_query(xpath, use_indexes, plan,
                                           view=None, version=version)
            except DocumentMovedError:
                if attempt == MOVED_RETRIES:
                    raise
        raise AssertionError("unreachable")

    def _scatter_query(self, xpath: str, use_indexes: bool | str,
                       plan: dict[int, list[str]],
                       view: ClusterView | None,
                       version: int | None) -> list[tuple[str, int, int]]:
        """One scatter round over an explicit placement plan.  All
        responses are drained even when some answer ``doc_moved``
        (leaving requests in flight would desynchronize the pipelined
        per-shard connections); the move is re-raised afterwards."""
        shards = sorted(plan)

        def params(shard: int) -> dict:
            p: dict[str, Any] = {"xpath": xpath, "use_indexes": use_indexes,
                                 "rows": True, "documents": plan[shard]}
            if version is not None:
                p["placement"] = version
            if view is not None:
                token = view.token(shard)
                if token is not None:
                    p["view"] = token
            return p

        sent: dict[int, int] = {}
        for shard in shards:
            sent[shard] = self._routed(
                shard, lambda c, s=shard: c.send("query", **params(s)))
        results: dict[int, dict] = {}
        moved: DocumentMovedError | None = None
        for shard, request_id in sent.items():
            try:
                results[shard] = self._routed(
                    shard, lambda c, rid=request_id: c.receive(rid))
            except ClientError as exc:
                if exc.code == wire.E_DOC_MOVED and view is None:
                    moved = DocumentMovedError(shard, str(exc))
                    continue
                raise
        if moved is not None:
            raise moved
        return self._merge_rows(
            [(shard, result["rows"]) for shard, result in results.items()]
        )

    def query_pres(self, xpath: str, document: str | None = None,
                   use_indexes: bool | str = True,
                   view: ClusterView | None = None) -> list[tuple[str, int]]:
        """Placement-independent result shape for differential checks."""
        return [(doc, pre) for doc, pre, _nid in
                self.query(xpath, document, use_indexes, view=view)]

    def _merge_rows(
        self, per_shard: list[tuple[int, list]]
    ) -> list[tuple[str, int, int]]:
        keys_arrays: list[np.ndarray] = []
        nids_arrays: list[np.ndarray] = []
        for _shard, rows in per_shard:
            if not rows:
                continue
            gidx = np.fromiter(
                (self._doc_index[row[0]] for row in rows),
                dtype=np.int64, count=len(rows),
            )
            pres = np.fromiter((row[1] for row in rows),
                               dtype=np.int64, count=len(rows))
            nids = np.fromiter((row[2] for row in rows),
                               dtype=np.int64, count=len(rows))
            keys = (gidx << PRE_BITS) | pres
            order = np.argsort(keys, kind="stable")
            keys_arrays.append(keys[order])
            nids_arrays.append(nids[order])
        if not keys_arrays:
            return []
        merged = kway_merge(keys_arrays)
        out_nids = np.empty(merged.size, dtype=np.int64)
        for keys, nids in zip(keys_arrays, nids_arrays):
            # Placements are disjoint, so each shard's keys land in
            # unique merged slots.
            out_nids[np.searchsorted(merged, keys)] = nids
        order = self.manifest.doc_order
        return [
            (order[int(key >> PRE_BITS)], int(key & _PRE_MASK), int(nid))
            for key, nid in zip(merged, out_nids)
        ]

    def explain(self, xpath: str) -> dict:
        """Cluster-level explain: a ``ScatterGather`` root with one
        ``RemotePlan`` child per shard carrying that shard's own plan
        summary."""
        shards = self._target_shards(None)
        gathered = self._scatter(
            shards, "explain", lambda _shard: {"xpath": xpath})
        children = tuple(
            RemotePlan(
                shard,
                tuple(self.manifest.documents_on(shard)),
                summary=gathered[shard]["summary"],
            )
            for shard in shards
        )
        root = number_plan(ScatterGather(children))
        return {
            "summary": render_plan(root),
            "tree": root.to_dict(),
            "shards": {
                shard: gathered[shard] for shard in shards
            },
        }

    # ------------------------------------------------------------------
    # Cross-shard read views (two-phase epoch publication)
    # ------------------------------------------------------------------

    @contextmanager
    def read_view(self, attempts: int = PIN_ATTEMPTS) -> Iterator[ClusterView]:
        """Pin one consistent epoch vector across every shard.

        Phase one opens a session view per shard; phase two re-reads
        each shard's published epoch and accepts the vector only when
        no shard advanced between its pin and the re-read — i.e. there
        was an instant at which every pinned epoch was current, which
        (updates being single-shard) makes the vector a consistent
        cut.  On interference all pins are dropped and both phases
        retry.

        The view registers itself with the coordinator: while any
        view is open, the source copy of a migrated document is only
        *queued* for unload (see :meth:`migrate_document`), so the
        view's frozen placement plan keeps answering at its pinned
        epochs.  The queue drains when the last view closes.
        """
        with self._route_lock:
            self._views_open += 1
        try:
            view = self._pin_vector(attempts)
        except BaseException:
            self._release_view()
            raise
        try:
            yield view
        finally:
            for shard, (token, _epoch) in view.pins.items():
                try:
                    self._routed(shard, lambda c, t=token: c.close_view(t))
                except (ShardError, ClientError, OSError):
                    pass  # dead or restarted shard dropped the pin itself
            self._release_view()

    def _release_view(self) -> None:
        with self._route_lock:
            self._views_open -= 1
            if self._views_open:
                return
        self._flush_unloads()

    def _pin_vector(self, attempts: int) -> ClusterView:
        shards = list(range(self.manifest.shards))
        for _attempt in range(attempts):
            pins: dict[int, tuple[int, int]] = {}
            stable = False
            try:
                for shard in shards:
                    opened = self._routed(shard, lambda c: c.open_view())
                    pins[shard] = (opened["view"], opened["epoch"])
                # Freeze the routing plan between pin and verify: if a
                # migration flips the manifest in that window, the
                # destination's import bumped its published epoch after
                # its pin, so the verify below fails and the attempt
                # retries.  A flip *after* the verify leaves this plan
                # routing to the source shard, whose copy stays loaded
                # (deferred unload) at an epoch the pin covers.
                version, plan = self._placement_plan()
                stable = all(
                    self._routed(shard, lambda c: c.hello())["epoch"]
                    == pins[shard][1]
                    for shard in shards
                )
            finally:
                # Drop accumulated pins on interference AND when a
                # later shard's open_view/hello raised mid-loop — a
                # leaked pin on a surviving shard wedges its overlay
                # pruning until that process exits.
                if not stable:
                    for shard, (token, _epoch) in pins.items():
                        try:
                            self._routed(
                                shard, lambda c, t=token: c.close_view(t))
                        except (ShardError, ClientError, OSError):
                            pass
            if stable:
                return ClusterView(pins, plan=plan, version=version)
        raise ShardError(
            None,
            f"no consistent epoch vector after {attempts} attempts "
            "(updates kept landing between pin and verify)",
        )

    # ------------------------------------------------------------------
    # Elasticity: migration, rebalance, resize (docs/sharding.md)
    # ------------------------------------------------------------------

    def migrate_document(self, name: str, dst: int,
                         method: str = "snapshot") -> dict:
        """Move one live document from its owning shard to ``dst``.

        ``method="snapshot"`` keeps the source online for almost the
        whole copy: a throwaway :class:`~repro.repl.follower.Follower`
        snapshots the source at a pinned epoch and tails its WAL while
        updates keep landing; only the final tail drain + cutover runs
        with updates to the source paused.  ``method="direct"`` pauses
        for the whole copy (simpler; fine for small documents).

        Cutover order is the crash-safety invariant: the document is
        imported on ``dst`` *before* the manifest flips, and the
        source copy is unloaded only *after* — so at every crash point
        the manifest's owner actually holds the document
        (:meth:`reconcile` repairs the redundant copy either side of
        the flip).  Queries in flight across the flip either carry the
        old manifest version (the source still answers, or ``dst``
        rejects with retryable ``doc_moved``) or a pinned view plan
        (the source copy is retained until the last view closes).
        """
        if method not in ("snapshot", "direct"):
            raise ValueError(f"unknown migration method {method!r}")
        with self._route_lock:
            if not 0 <= dst < self.manifest.shards:
                raise ShardError(
                    dst, f"shard {dst} out of range "
                    f"(cluster has {self.manifest.shards})")
        src = self._owner(name)
        report = {"document": name, "src": src, "dst": dst,
                  "method": method, "moved": False}
        if src == dst:
            return report
        # A queued-but-unflushed unload of this name on dst (the doc
        # bounced back) would collide with the import: force it now.
        self._flush_unloads(name=name)
        started = time.monotonic()
        if method == "snapshot":
            self._migrate_snapshot(name, src, dst, report)
        else:
            self._migrate_direct(name, src, dst, report)
        report["moved"] = True
        report["duration_s"] = time.monotonic() - started
        return report

    def _migrate_snapshot(self, name: str, src: int, dst: int,
                          report: dict) -> None:
        from ..repl.follower import Follower, ReplicationError

        worker = self._workers.get(src)
        if worker is None or not worker.alive():
            raise ShardDownError(src, f"shard {src} is down")
        staging = os.path.join(self.root, f".staging-{src:03d}-{dst:03d}")
        shutil.rmtree(staging, ignore_errors=True)
        follower = Follower(staging, (worker.host, worker.port))

        def tail_once() -> int:
            # A dead source must abort the migration: an acked update
            # could still sit in an unfetched WAL segment, so the
            # snapshot is never promoted over a broken tail.
            try:
                return follower.poll_once()
            except (ClientError, ReplicationError,
                    ConnectionError, OSError) as exc:
                raise ShardDownError(
                    src, f"shard {src} went down mid-migration"
                ) from exc

        try:
            try:
                follower.sync()
            except (ClientError, ReplicationError,
                    ConnectionError, OSError) as exc:
                raise ShardDownError(
                    src, f"shard {src} went down mid-migration"
                ) from exc
            faults.crashpoint("migrate.after_sync")
            # Online tail replay: updates are still landing on src.
            while tail_once():
                pass
            with self._pause_updates(src):
                paused = time.monotonic()
                # Quiescent drain: two consecutive empty polls, so a
                # resync (returns 0 even when a tail remains) cannot
                # end the loop with frames unapplied.
                empty = 0
                while empty < 2:
                    empty = empty + 1 if tail_once() == 0 else 0
                # Belt and braces: the drain above only proves the
                # repl endpoint answered; probe the routing path too
                # before trusting the tail.
                self._routed(src, lambda c: c.ping())
                payload = follower.engine.export_document(name)
                report["bytes"] = len(payload)
                faults.crashpoint("migrate.before_import")
                self._import_to(dst, name, payload)
                faults.crashpoint("migrate.after_import")
                self._flip(name, src, dst)
                report["pause_s"] = time.monotonic() - paused
        finally:
            try:
                follower.close()
            except Exception:
                pass
            shutil.rmtree(staging, ignore_errors=True)

    def _migrate_direct(self, name: str, src: int, dst: int,
                        report: dict) -> None:
        with self._pause_updates(src):
            paused = time.monotonic()
            payload = self._export_from(src, name)
            report["bytes"] = len(payload)
            faults.crashpoint("migrate.before_import")
            self._import_to(dst, name, payload)
            faults.crashpoint("migrate.after_import")
            self._flip(name, src, dst)
            report["pause_s"] = time.monotonic() - paused

    @contextmanager
    def _transfer_client(self, shard: int) -> Iterator[Client]:
        """A dedicated connection for bulk document transfer, so the
        (possibly large, chunked) copy never holds the shard's shared
        routing client against concurrent queries."""
        worker = self._workers.get(shard)
        if worker is None or not worker.alive():
            raise ShardDownError(shard, f"shard {shard} is down")
        client = Client(worker.host, worker.port)
        try:
            client.handshake(features=("elastic",))
            yield client
        except ClientError as exc:
            if exc.code == "disconnected":
                raise ShardDownError(
                    shard, f"shard {shard} went down mid-transfer"
                ) from exc
            raise
        except (ConnectionError, OSError) as exc:
            raise ShardDownError(
                shard, f"shard {shard} unreachable: {exc}") from exc
        finally:
            client.close()

    def _export_from(self, shard: int, name: str) -> bytes:
        with self._transfer_client(shard) as client:
            return client.export_document(name)

    def _import_to(self, shard: int, name: str, payload: bytes) -> None:
        with self._transfer_client(shard) as client:
            client.import_document(name, payload)

    def _flip(self, name: str, src: int, dst: int) -> None:
        """Atomically repoint the manifest at ``dst`` and tell the
        shards about the new layout version; called with updates to
        ``src`` paused, so no update can land on the stale owner
        between the flip and the broadcast."""
        faults.crashpoint("migrate.before_flip")
        with self._route_lock:
            self.manifest.move(name, dst)
            version = self.manifest.version
            self.manifest.save(self.root)
            self._reindex()
        faults.crashpoint("migrate.after_flip")
        self._broadcast_placement(version)
        self._queue_unload(src, name)

    def _broadcast_placement(self, version: int | None = None) -> None:
        """Best-effort: push the manifest version to every live worker
        so stale-stamped scatters get ``doc_moved`` vetoes.  A worker
        that misses the broadcast (down, racing a restart) adopts the
        version from the first newer-stamped request it sees."""
        if version is None:
            with self._route_lock:
                version = self.manifest.version
        for shard in sorted(self._workers):
            try:
                self._routed(
                    shard, lambda c: c.set_placement(version))
            except (ShardError, ClientError, OSError):
                pass

    def _queue_unload(self, shard: int, name: str) -> None:
        """Unload the superseded source copy — immediately when no
        cluster views are open, else deferred until the last closes
        (their frozen plans still route this document to ``shard``)."""
        with self._route_lock:
            if self._views_open:
                self._pending_unloads.append((shard, name))
                return
        self._unload_copy(shard, name)

    def _flush_unloads(self, name: str | None = None) -> None:
        """Drain queued source-copy unloads: all of them when the last
        view closes, or just ``name``'s (forced, regardless of open
        views) when a reload/re-import is about to collide with it."""
        with self._route_lock:
            if name is None:
                if self._views_open:
                    return
                drained, self._pending_unloads = self._pending_unloads, []
            else:
                drained = [(s, n) for s, n in self._pending_unloads
                           if n == name]
                self._pending_unloads = [
                    (s, n) for s, n in self._pending_unloads if n != name]
        for shard, doc in drained:
            self._unload_copy(shard, doc)

    def _unload_copy(self, shard: int, name: str) -> None:
        try:
            self._routed(shard, lambda c: c.call("unload", name=name))
        except (ShardError, ClientError, OSError):
            pass  # dead shard: reconcile() sweeps the stray copy later

    def reconcile(self) -> dict:
        """Repair placement after an interrupted migration.

        Compares the manifest against what each live worker actually
        holds: a placed document missing from its owner but present on
        another shard is flipped to the holder (completing — or
        rolling back — whichever side of the cutover the crash landed
        on), and copies held by non-owners are unloaded.  Placed-but-
        empty names (a crash between ``place`` and ``load``) are left
        for the caller, as before.
        """
        holders: dict[int, set[str]] = {}
        for shard in sorted(self._workers):
            info = self._routed(shard, lambda c: c.hello())
            holders[shard] = set(info.get("documents", ()))
        flipped: list[tuple[str, int, int]] = []
        with self._route_lock:
            for name, owner in list(self.manifest.placement.items()):
                if owner in holders and name not in holders[owner]:
                    holder = next(
                        (s for s in sorted(holders)
                         if name in holders[s]), None)
                    if holder is not None:
                        self.manifest.move(name, holder)
                        flipped.append((name, owner, holder))
            if flipped:
                self.manifest.save(self.root)
                self._reindex()
            placement = dict(self.manifest.placement)
        if flipped:
            self._broadcast_placement()
        unloaded: list[tuple[int, str]] = []
        for shard, docs in sorted(holders.items()):
            for name in sorted(docs):
                if placement.get(name) != shard:
                    self._unload_copy(shard, name)
                    unloaded.append((shard, name))
        return {"flipped": flipped, "unloaded": unloaded}

    def _document_weights(self, weight: str = "bytes") -> dict[str, int]:
        """Per-document load weights from the owning shards' stats."""
        if weight not in ("bytes", "nodes"):
            raise ValueError(f"unknown weight {weight!r}")
        weights: dict[str, int] = {}
        for shard in sorted(self._workers):
            stats = self._routed(shard, lambda c: c.document_stats())
            with self._route_lock:
                for name, stat in stats.items():
                    if self.manifest.placement.get(name) == shard:
                        weights[name] = int(stat[weight])
        return weights

    def _query_load(self) -> dict[int, float]:
        """Per-shard ``query.executed`` counters (policy input)."""
        load: dict[int, float] = {}
        for shard in sorted(self._workers):
            try:
                snap = self._routed(shard, lambda c: c.metrics())
            except ShardError:
                continue
            load[shard] = float(
                (snap.get("counters") or {}).get("query.executed", 0))
        return load

    def rebalance(self, policy: Callable | None = None,
                  weight: str = "bytes", apply: bool = True,
                  method: str = "direct") -> dict:
        """Re-level document placement across shards.

        ``policy(assignment, weights, shards, query_load)`` returns the
        moves ``[(document, dst_shard), ...]``; the default is
        :func:`greedy_balance` over per-document ``weight`` ("bytes"
        or "nodes").  With ``apply=False`` the plan is returned
        without migrating anything.
        """
        weights = self._document_weights(weight)
        with self._route_lock:
            assignment = {
                name: self.manifest.placement[name]
                for name in self.manifest.doc_order
            }
            shards = self.manifest.shards
        chosen = policy if policy is not None else greedy_balance
        moves = list(chosen(assignment, weights, shards,
                            self._query_load()))
        loads_before = _shard_loads(assignment, weights, shards)
        result = {"moves": moves, "applied": [],
                  "loads_before": loads_before}
        if apply:
            for name, dst in moves:
                outcome = self.migrate_document(name, dst, method=method)
                if outcome["moved"]:
                    result["applied"].append((name, dst))
            with self._route_lock:
                assignment = {
                    name: self.manifest.placement[name]
                    for name in self.manifest.doc_order
                }
        else:
            for name, dst in moves:
                assignment[name] = dst
        result["loads_after"] = _shard_loads(assignment, weights, shards)
        return result

    def resize(self, shards: int, method: str = "direct",
               policy: Callable | None = None) -> dict:
        """Grow or shrink the cluster to ``shards`` workers.

        Growing registers and spawns the new (empty) shards, then
        rebalances onto them.  Shrinking migrates every document off
        the doomed shards to the least-loaded survivors, stops the
        doomed workers, and then drops them from the manifest (their
        emptied directories stay on disk).
        """
        if shards < 1:
            raise ValueError("cluster needs at least one shard")
        with self._route_lock:
            current = self.manifest.shards
        if shards == current:
            return {"shards": shards, "moves": []}
        if shards > current:
            with self._route_lock:
                self.manifest.set_shards(shards)
                self.manifest.save(self.root)
            for shard in range(current, shards):
                self._ensure_shard_dir(shard)
                self._spawn(shard)
            self._broadcast_placement()
            plan = self.rebalance(policy=policy, method=method)
            return {"shards": shards, "moves": plan["applied"],
                    "loads_after": plan["loads_after"]}
        doomed = list(range(shards, current))
        survivors = list(range(shards))
        weights = self._document_weights()
        with self._route_lock:
            assignment = dict(self.manifest.placement)
        loads = {s: 0 for s in survivors}
        for name, owner in assignment.items():
            if owner in loads:
                loads[owner] += weights.get(name, 0)
        moves: list[tuple[str, int, int]] = []
        for src in doomed:
            for name in list(self.manifest.documents_on(src)):
                dst = min(survivors, key=lambda s: (loads[s], s))
                outcome = self.migrate_document(name, dst, method=method)
                if outcome["moved"]:
                    loads[dst] += weights.get(name, 0)
                    moves.append((name, src, dst))
        # Doomed shards may still hold view-deferred source copies;
        # they die with the workers and are swept on any reconcile.
        for shard in doomed:
            worker = self._workers.pop(shard, None)
            if worker is not None:
                worker.stop()
            self._drop_client(shard)
            with self._route_lock:
                self._pending_unloads = [
                    (s, n) for s, n in self._pending_unloads if s != shard]
        with self._route_lock:
            self.manifest.set_shards(shards)
            self.manifest.save(self.root)
            self._reindex()
        self._broadcast_placement()
        return {"shards": shards, "moves": moves}

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict[int, int]:
        """Checkpoint every shard; returns shard → checkpoint epoch.
        The sharding manifest is re-saved alongside, so the cluster
        layout is always at least as new as any shard snapshot."""
        gathered = self._scatter(
            list(range(self.manifest.shards)), "checkpoint",
            lambda _shard: {})
        self.manifest.save(self.root)
        return {shard: result["epoch"]
                for shard, result in gathered.items()}

    def metrics(self) -> dict:
        """Per-shard metric snapshots plus a numeric aggregate."""
        gathered = self._scatter(
            list(range(self.manifest.shards)), "metrics",
            lambda _shard: {})
        aggregate: dict = {}
        for result in gathered.values():
            _merge_numeric(aggregate, result["metrics"])
        return {
            "aggregate": aggregate,
            "shards": {shard: result["metrics"]
                       for shard, result in gathered.items()},
        }


def _shard_loads(assignment: dict[str, int], weights: dict[str, int],
                 shards: int) -> dict[int, int]:
    loads = {shard: 0 for shard in range(shards)}
    for name, shard in assignment.items():
        loads[shard] = loads.get(shard, 0) + weights.get(name, 0)
    return loads


def greedy_balance(assignment: dict[str, int], weights: dict[str, int],
                   shards: int,
                   query_load: dict[int, float] | None = None
                   ) -> list[tuple[str, int]]:
    """Minimal-move greedy leveling (the default rebalance policy).

    Repeatedly moves the lightest document off the most-loaded shard
    onto the least-loaded one, for as long as that strictly shrinks
    the load spread.  ``query_load`` (per-shard ``query.executed``
    counters) breaks ties: among equally-loaded destinations the
    historically coldest shard wins.  Deterministic for a given input.
    """
    query_load = query_load or {}
    loads = _shard_loads(assignment, weights, shards)
    placement = dict(assignment)
    moves: list[tuple[str, int]] = []
    for _ in range(len(placement) * shards or 1):
        hi = max(loads, key=lambda s: (loads[s], -s))
        lo = min(loads, key=lambda s: (loads[s], query_load.get(s, 0.0), s))
        candidates = sorted(
            (weights.get(name, 0), name)
            for name, shard in placement.items() if shard == hi
        )
        if not candidates:
            break
        lightest, name = candidates[0]
        if loads[lo] + lightest >= loads[hi]:
            break  # no move strictly improves the spread
        placement[name] = lo
        loads[hi] -= lightest
        loads[lo] += lightest
        moves.append((name, lo))
    return moves


def _merge_numeric(into: dict, snapshot: dict) -> None:
    for key, value in snapshot.items():
        if isinstance(value, dict):
            _merge_numeric(into.setdefault(key, {}), value)
        elif isinstance(value, bool):
            into.setdefault(key, value)
        elif isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value
        else:
            into.setdefault(key, value)
