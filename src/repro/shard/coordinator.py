"""Scatter-gather coordinator over per-document shard workers.

:class:`ShardCluster` runs N shard workers (separate OS processes by
default — one engine per core is the whole point — or in-process
:class:`~repro.server.ServerThread`\\ s for fast tests), places whole
documents on shards via the :class:`~repro.shard.manifest.ShardingManifest`,
and presents the familiar engine API on top:

* **updates** are routed to the single shard owning the document, so
  every engine guarantee (WAL, group commit, acked ⇒ durable) holds
  unchanged — an update never spans shards;
* **queries** scatter to every owning shard over the wire protocol
  (predicates travel with the query text, so each shard runs its own
  index plans and only ``(document, pre, nid)`` row batches come
  back), and the gather side k-way merges the per-shard sorted key
  arrays with :func:`repro.query.kernels.kway_merge` into exactly the
  order a single-shard engine would produce;
* **read views** pin a *consistent epoch vector* by two-phase
  publication: phase one pins a session view on every shard, phase
  two re-reads every shard's published epoch and retries until no
  shard advanced in between — since each update commits on exactly
  one shard, a vector observed in such a quiescent instant is a
  consistent cut;
* a shard that dies surfaces as the stable ``shard_down`` error
  (:class:`ShardDownError`) on every operation that needs it, while
  the remaining shards keep serving; :meth:`restart_shard` respawns
  the worker, whose engine recovers from its own WAL + manifest.

``docs/sharding.md`` specifies placement, snapshots and failure
semantics; ``repro.bench.shard`` measures the scale-out claim.
"""

from __future__ import annotations

import os
import subprocess
import sys
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

from .. import wire
from ..client import Client, ClientError
from ..errors import ReproError
from ..query.kernels import kway_merge
from ..query.plan import RemotePlan, ScatterGather, number_plan, render_plan
from .engine import ShardEngine
from .manifest import ShardingManifest

__all__ = ["ShardCluster", "ShardError", "ShardDownError", "ClusterView"]

#: Bits reserved for ``pre`` in the int64 merge key
#: ``global_doc_index << PRE_BITS | pre`` (a single document may hold
#: up to 2**40 nodes before keys could collide).
PRE_BITS = 40
_PRE_MASK = (1 << PRE_BITS) - 1

#: Attempts at a stable epoch vector before giving up.
PIN_ATTEMPTS = 16


class ShardError(ReproError):
    """A cluster-level failure tagged with the shard it came from."""

    code = "shard_error"

    def __init__(self, shard: int | None, message: str):
        super().__init__(message)
        self.shard = shard


class ShardDownError(ShardError):
    """The owning shard is unreachable (stable code ``shard_down``).

    Raised for every routed or scattered operation that needs the dead
    shard; other shards keep serving.  :meth:`ShardCluster.restart_shard`
    brings the worker back through ordinary WAL recovery.
    """

    code = wire.E_SHARD_DOWN


class ClusterView:
    """A pinned cross-shard read view: one epoch per shard, one
    consistent cut overall (see module docstring)."""

    def __init__(self, pins: dict[int, tuple[int, int]]):
        #: shard → (server view token, pinned epoch)
        self.pins = pins

    @property
    def epochs(self) -> dict[int, int]:
        """The pinned epoch vector (shard → epoch)."""
        return {shard: epoch for shard, (_view, epoch) in self.pins.items()}

    def token(self, shard: int) -> int | None:
        pin = self.pins.get(shard)
        return pin[0] if pin else None


def _src_dir() -> str:
    # .../src/repro/shard/coordinator.py → .../src
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


class _ProcessWorker:
    """One shard worker in its own OS process (the scale-out unit)."""

    def __init__(self, path: str, shard_id: int, *, sync: str,
                 checkpoint_every: int, group_commit: bool,
                 kill_at: str | None = None,
                 kill_keep_bytes: int | None = None):
        cmd = [
            sys.executable, "-m", "repro.shard.worker",
            "--path", path,
            "--shard-id", str(shard_id),
            "--sync", sync,
            "--checkpoint-every", str(checkpoint_every),
        ]
        if not group_commit:
            cmd.append("--no-group-commit")
        if kill_at is not None:
            cmd += ["--kill-at", kill_at]
            if kill_keep_bytes is not None:
                cmd += ["--kill-keep-bytes", str(kill_keep_bytes)]
        env = dict(os.environ)
        src = _src_dir()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        self.proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, env=env, text=True
        )
        line = self.proc.stdout.readline()
        if not line.startswith("PORT "):
            self.proc.wait()
            raise ShardError(
                shard_id, f"worker for shard {shard_id} failed to start "
                f"(exit {self.proc.returncode})"
            )
        self.host = "127.0.0.1"
        self.port = int(line.split()[1])

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stop(self, timeout: float = 60.0) -> None:
        if self.alive():
            self.proc.terminate()  # SIGTERM → graceful drain
        try:
            self.proc.wait(timeout=timeout)
        finally:
            self.proc.stdout.close()

    def kill(self) -> None:
        """Hard kill (test support — no drain, no checkpoint)."""
        if self.alive():
            self.proc.kill()
        self.proc.wait()
        self.proc.stdout.close()


class _ThreadWorker:
    """One shard worker on an in-process server thread (fast tests;
    shares the GIL, so no true scale-out and no hard kill)."""

    def __init__(self, path: str, shard_id: int, *, sync: str,
                 checkpoint_every: int, group_commit: bool,
                 kill_at: str | None = None,
                 kill_keep_bytes: int | None = None):
        if kill_at is not None:
            raise ShardError(
                shard_id, "kill injection requires the process transport"
            )
        from ..server import ServerThread

        self.engine = ShardEngine(
            path, sync=sync, checkpoint_every=checkpoint_every,
            concurrent=True, group_commit=group_commit, shard_id=shard_id,
        )
        self.thread = ServerThread(self.engine)
        self.host, self.port = self.thread.start()
        self._stopped = False

    def alive(self) -> bool:
        return not self._stopped

    def stop(self, timeout: float = 60.0) -> None:
        if not self._stopped:
            self._stopped = True
            self.thread.stop(timeout=timeout)

    def kill(self) -> None:
        self.stop()


class ShardCluster:
    """Coordinate N shard workers behind one engine-shaped API.

    Args:
        root: Cluster directory — ``SHARDING.json`` plus one
            ``shard-NNN/`` engine directory per shard.
        shards: Shard count for a *new* cluster (an existing
            ``SHARDING.json`` wins; passing a conflicting count is an
            error).
        config: Index configuration for new shards, e.g.
            ``{"string": True, "typed": ["double"], "substring": False}``
            — recorded in the sharding manifest so restarts and late
            shard creation agree.
        transport: ``"process"`` (one worker per OS process; the
            scale-out deployment) or ``"thread"`` (in-process server
            threads; fast tests).
        sync / checkpoint_every / group_commit: Per-shard engine knobs
            (see :class:`~repro.shard.engine.ShardEngine`).
    """

    def __init__(self, root: str, shards: int | None = None,
                 config: dict[str, Any] | None = None,
                 transport: str = "process", sync: str = "flush",
                 checkpoint_every: int = 10_000,
                 group_commit: bool = True):
        if transport not in ("process", "thread"):
            raise ValueError(f"unknown transport {transport!r}")
        if ShardingManifest.exists(root):
            self.manifest = ShardingManifest.load(root)
            if shards is not None and shards != self.manifest.shards:
                raise ShardError(
                    None,
                    f"cluster at {root!r} has {self.manifest.shards} "
                    f"shards; cannot reopen with {shards}",
                )
        else:
            if shards is None:
                raise ShardError(None, "new cluster needs a shard count")
            self.manifest = ShardingManifest(shards, config=config)
            self.manifest.save(root)
        self.root = root
        self.transport = transport
        self.sync = sync
        self.checkpoint_every = checkpoint_every
        self.group_commit = group_commit
        self._workers: dict[int, Any] = {}
        self._clients: dict[int, Client | None] = {}
        self._kill_specs: dict[int, tuple[str, int | None]] = {}
        self._doc_index: dict[str, int] = {}
        self._reindex()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ShardCluster":
        """Create missing shard directories (with the manifest's index
        config), spawn every worker and handshake each connection."""
        self.create_shards()
        for shard in range(self.manifest.shards):
            self._spawn(shard)
        return self

    def create_shards(self) -> None:
        """Create any missing shard engine directories without
        spawning workers (the ``shard-init`` CLI path)."""
        for shard in range(self.manifest.shards):
            self._ensure_shard_dir(shard)

    def addresses(self) -> dict[int, tuple[str, int]]:
        """Bound address of every running worker (shard → host, port)."""
        return {
            shard: (worker.host, worker.port)
            for shard, worker in sorted(self._workers.items())
        }

    def _ensure_shard_dir(self, shard: int) -> None:
        path = self.manifest.shard_dir(self.root, shard)
        if not os.path.exists(os.path.join(path, "MANIFEST.json")):
            config = self.manifest.config
            ShardEngine(
                path,
                string=config.get("string", True),
                typed=tuple(config.get("typed", ("double",))),
                substring=config.get("substring", False),
            ).close()

    def _spawn(self, shard: int) -> None:
        cls = _ProcessWorker if self.transport == "process" else _ThreadWorker
        kill_at, keep = self._kill_specs.pop(shard, (None, None))
        worker = cls(
            self.manifest.shard_dir(self.root, shard), shard,
            sync=self.sync, checkpoint_every=self.checkpoint_every,
            group_commit=self.group_commit,
            kill_at=kill_at, kill_keep_bytes=keep,
        )
        self._workers[shard] = worker
        client = Client(worker.host, worker.port)
        client.handshake(features=("rows",))
        self._clients[shard] = client

    def stop(self) -> None:
        """Drain every worker (graceful: in-flight work finishes, each
        shard checkpoints and truncates its WAL) and save the manifest."""
        for client in self._clients.values():
            if client is not None:
                client.close()
        self._clients.clear()
        for worker in self._workers.values():
            worker.stop()
        self._workers.clear()
        self.manifest.save(self.root)

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- fault-test support ---------------------------------------------

    def arm_kill(self, shard: int, point: str,
                 occurrence: int = 1,
                 keep_bytes: int | None = None) -> None:
        """Arm the *next spawn* of ``shard`` to ``os._exit`` at the
        given crashpoint occurrence (process transport only) — a real
        mid-commit process death for the fault suite."""
        spec = point if occurrence == 1 else f"{point}:{occurrence}"
        self._kill_specs[shard] = (spec, keep_bytes)

    def kill_shard(self, shard: int) -> None:
        """Hard-kill a worker immediately (no drain, no checkpoint)."""
        worker = self._workers.get(shard)
        if worker is not None:
            worker.kill()
        self._drop_client(shard)

    def restart_shard(self, shard: int) -> None:
        """Respawn one worker; its engine recovers from WAL + manifest."""
        worker = self._workers.pop(shard, None)
        if worker is not None:
            if worker.alive():
                worker.stop()
            elif isinstance(worker, _ProcessWorker):
                worker.proc.wait()
                worker.proc.stdout.close()
        self._drop_client(shard)
        self._spawn(shard)

    def shard_alive(self, shard: int) -> bool:
        worker = self._workers.get(shard)
        return worker is not None and worker.alive()

    def _drop_client(self, shard: int) -> None:
        client = self._clients.pop(shard, None)
        if client is not None:
            client.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _reindex(self) -> None:
        self._doc_index = {
            name: idx for idx, name in enumerate(self.manifest.doc_order)
        }

    def _client(self, shard: int) -> Client:
        client = self._clients.get(shard)
        worker = self._workers.get(shard)
        if client is None or worker is None or not worker.alive():
            raise ShardDownError(shard, f"shard {shard} is down")
        return client

    def _owner(self, document: str) -> int:
        shard = self.manifest.placement.get(document)
        if shard is None:
            raise ShardError(None, f"unknown document {document!r}")
        return shard

    def _routed(self, shard: int, fn):
        """Run one client call against ``shard``, mapping transport
        failures (dead socket, worker exit) to :class:`ShardDownError`."""
        client = self._client(shard)
        try:
            return fn(client)
        except ClientError as exc:
            if exc.code == "disconnected":
                raise ShardDownError(
                    shard, f"shard {shard} went down mid-request"
                ) from exc
            raise
        except (ConnectionError, OSError) as exc:
            raise ShardDownError(
                shard, f"shard {shard} unreachable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Documents and updates (single-shard routed)
    # ------------------------------------------------------------------

    def load(self, name: str, xml: str, shard: int | None = None) -> int:
        """Place + load one document; returns the owning shard.

        The placement is recorded in the sharding manifest *before*
        the shard loads (and the manifest is re-saved after), so a
        crash between the two leaves a placed-but-empty name, never an
        orphan document.
        """
        target = self.manifest.place(name, shard)
        self.manifest.save(self.root)
        self._reindex()
        try:
            self._routed(target,
                         lambda c: c.call("load", name=name, xml=xml))
        except BaseException:
            self.manifest.unplace(name)
            self.manifest.save(self.root)
            self._reindex()
            raise
        return target

    def unload(self, name: str) -> None:
        shard = self._owner(name)
        self._routed(shard, lambda c: c.call("unload", name=name))
        self.manifest.unplace(name)
        self.manifest.save(self.root)
        self._reindex()

    def update_text(self, document: str, nid: int, text: str,
                    busy_retries: int = 0) -> dict:
        shard = self._owner(document)
        return self._routed(
            shard, lambda c: c.update_text(nid, text,
                                           busy_retries=busy_retries))

    def insert_xml(self, document: str, nid: int, fragment: str,
                   before: int | None = None) -> dict:
        shard = self._owner(document)
        return self._routed(
            shard, lambda c: c.insert_xml(nid, fragment, before))

    def delete_subtree(self, document: str, nid: int) -> dict:
        shard = self._owner(document)
        return self._routed(shard, lambda c: c.delete_subtree(nid))

    def update(self, document: str, action: str, **params: Any) -> dict:
        """Generic routed update (any ``update`` wire action)."""
        shard = self._owner(document)
        return self._routed(
            shard, lambda c: c.call("update", action=action, **params))

    # ------------------------------------------------------------------
    # Scatter-gather reads
    # ------------------------------------------------------------------

    def _target_shards(self, document: str | None) -> list[int]:
        if document is not None:
            return [self._owner(document)]
        shards = sorted({
            self.manifest.placement[name]
            for name in self.manifest.doc_order
        })
        return shards

    def _scatter(self, shards: list[int], op: str, params) -> dict[int, dict]:
        """Pipeline one request to every shard, then gather: the sends
        all go out before the first receive blocks, so the shards
        evaluate concurrently in their own processes."""
        sent: dict[int, int] = {}
        for shard in shards:
            sent[shard] = self._routed(
                shard, lambda c, s=shard: c.send(op, **params(s)))
        results: dict[int, dict] = {}
        for shard, request_id in sent.items():
            results[shard] = self._routed(
                shard,
                lambda c, rid=request_id: c.receive(rid))
        return results

    def query(self, xpath: str, document: str | None = None,
              use_indexes: bool | str = True,
              view: ClusterView | None = None) -> list[tuple[str, int, int]]:
        """Scatter the query, gather ``(document, pre, nid)`` rows in
        global single-engine order (document load order, then pre)."""
        shards = self._target_shards(document)
        if not shards:
            return []

        def params(shard: int) -> dict:
            p: dict[str, Any] = {"xpath": xpath, "use_indexes": use_indexes,
                                 "rows": True}
            if document is not None:
                p["document"] = document
            if view is not None:
                token = view.token(shard)
                if token is not None:
                    p["view"] = token
            return p

        gathered = self._scatter(shards, "query", params)
        return self._merge_rows(
            [(shard, result["rows"]) for shard, result in gathered.items()]
        )

    def query_pres(self, xpath: str, document: str | None = None,
                   use_indexes: bool | str = True,
                   view: ClusterView | None = None) -> list[tuple[str, int]]:
        """Placement-independent result shape for differential checks."""
        return [(doc, pre) for doc, pre, _nid in
                self.query(xpath, document, use_indexes, view=view)]

    def _merge_rows(
        self, per_shard: list[tuple[int, list]]
    ) -> list[tuple[str, int, int]]:
        keys_arrays: list[np.ndarray] = []
        nids_arrays: list[np.ndarray] = []
        for _shard, rows in per_shard:
            if not rows:
                continue
            gidx = np.fromiter(
                (self._doc_index[row[0]] for row in rows),
                dtype=np.int64, count=len(rows),
            )
            pres = np.fromiter((row[1] for row in rows),
                               dtype=np.int64, count=len(rows))
            nids = np.fromiter((row[2] for row in rows),
                               dtype=np.int64, count=len(rows))
            keys = (gidx << PRE_BITS) | pres
            order = np.argsort(keys, kind="stable")
            keys_arrays.append(keys[order])
            nids_arrays.append(nids[order])
        if not keys_arrays:
            return []
        merged = kway_merge(keys_arrays)
        out_nids = np.empty(merged.size, dtype=np.int64)
        for keys, nids in zip(keys_arrays, nids_arrays):
            # Placements are disjoint, so each shard's keys land in
            # unique merged slots.
            out_nids[np.searchsorted(merged, keys)] = nids
        order = self.manifest.doc_order
        return [
            (order[int(key >> PRE_BITS)], int(key & _PRE_MASK), int(nid))
            for key, nid in zip(merged, out_nids)
        ]

    def explain(self, xpath: str) -> dict:
        """Cluster-level explain: a ``ScatterGather`` root with one
        ``RemotePlan`` child per shard carrying that shard's own plan
        summary."""
        shards = self._target_shards(None)
        gathered = self._scatter(
            shards, "explain", lambda _shard: {"xpath": xpath})
        children = tuple(
            RemotePlan(
                shard,
                tuple(self.manifest.documents_on(shard)),
                summary=gathered[shard]["summary"],
            )
            for shard in shards
        )
        root = number_plan(ScatterGather(children))
        return {
            "summary": render_plan(root),
            "tree": root.to_dict(),
            "shards": {
                shard: gathered[shard] for shard in shards
            },
        }

    # ------------------------------------------------------------------
    # Cross-shard read views (two-phase epoch publication)
    # ------------------------------------------------------------------

    @contextmanager
    def read_view(self, attempts: int = PIN_ATTEMPTS) -> Iterator[ClusterView]:
        """Pin one consistent epoch vector across every shard.

        Phase one opens a session view per shard; phase two re-reads
        each shard's published epoch and accepts the vector only when
        no shard advanced between its pin and the re-read — i.e. there
        was an instant at which every pinned epoch was current, which
        (updates being single-shard) makes the vector a consistent
        cut.  On interference all pins are dropped and both phases
        retry.
        """
        view = self._pin_vector(attempts)
        try:
            yield view
        finally:
            for shard, (token, _epoch) in view.pins.items():
                try:
                    self._client(shard).close_view(token)
                except (ShardError, ClientError, OSError):
                    pass  # dead or restarted shard dropped the pin itself

    def _pin_vector(self, attempts: int) -> ClusterView:
        shards = list(range(self.manifest.shards))
        for _attempt in range(attempts):
            pins: dict[int, tuple[int, int]] = {}
            stable = False
            try:
                for shard in shards:
                    opened = self._routed(shard, lambda c: c.open_view())
                    pins[shard] = (opened["view"], opened["epoch"])
                stable = all(
                    self._routed(shard, lambda c: c.hello())["epoch"]
                    == pins[shard][1]
                    for shard in shards
                )
            finally:
                # Drop accumulated pins on interference AND when a
                # later shard's open_view/hello raised mid-loop — a
                # leaked pin on a surviving shard wedges its overlay
                # pruning until that process exits.
                if not stable:
                    for shard, (token, _epoch) in pins.items():
                        try:
                            self._client(shard).close_view(token)
                        except (ShardError, ClientError, OSError):
                            pass
            if stable:
                return ClusterView(pins)
        raise ShardError(
            None,
            f"no consistent epoch vector after {attempts} attempts "
            "(updates kept landing between pin and verify)",
        )

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def checkpoint(self) -> dict[int, int]:
        """Checkpoint every shard; returns shard → checkpoint epoch.
        The sharding manifest is re-saved alongside, so the cluster
        layout is always at least as new as any shard snapshot."""
        gathered = self._scatter(
            list(range(self.manifest.shards)), "checkpoint",
            lambda _shard: {})
        self.manifest.save(self.root)
        return {shard: result["epoch"]
                for shard, result in gathered.items()}

    def metrics(self) -> dict:
        """Per-shard metric snapshots plus a numeric aggregate."""
        gathered = self._scatter(
            list(range(self.manifest.shards)), "metrics",
            lambda _shard: {})
        aggregate: dict = {}
        for result in gathered.values():
            _merge_numeric(aggregate, result["metrics"])
        return {
            "aggregate": aggregate,
            "shards": {shard: result["metrics"]
                       for shard, result in gathered.items()},
        }


def _merge_numeric(into: dict, snapshot: dict) -> None:
    for key, value in snapshot.items():
        if isinstance(value, dict):
            _merge_numeric(into.setdefault(key, {}), value)
        elif isinstance(value, bool):
            into.setdefault(key, value)
        elif isinstance(value, (int, float)):
            into[key] = into.get(key, 0) + value
        else:
            into.setdefault(key, value)
