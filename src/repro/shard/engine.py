"""The embeddable shard core: indices + persistence + WAL recovery.

:class:`ShardEngine` owns everything one shard needs to serve on its
own — a document store with its generic value indices, the write-ahead
log and group-commit leader, the checkpoint manifests and the MVCC
concurrency controller.  It has **no knowledge of other shards**: the
coordinator (:mod:`repro.shard.coordinator`) places whole documents on
engines and merges their answers, and :class:`repro.database.Database`
is the degenerate single-shard deployment of the very same core.

Example::

    with ShardEngine("./shard-0", typed=("double",)) as engine:
        engine.load("persons", xml)
        engine.update_text(nid, "Prefect")          # logged
        hits = engine.query('//person[.//age = 42]')
    # power cut here? next open() replays the log.
"""

from __future__ import annotations

import os
import threading
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

from ..core import IndexManager
from ..core.concurrency import active_view
from ..query import explain as _explain
from ..query import query as _query
from ..storage import faults
from ..storage.groupcommit import GroupCommitLog
from ..storage.persist import (
    document_bytes,
    document_from_bytes,
    load_manager,
    manifest_epoch,
    read_manifest,
    save_manager,
)
from ..storage.wal import (
    DELETE_ATTRIBUTE,
    DELETE_SUBTREE,
    INSERT_ATTRIBUTE,
    INSERT_XML,
    RENAME,
    TEXT_UPDATE,
    ReplayStats,
    WalRecord,
    WriteAheadLog,
    replay_records,
)

__all__ = ["ShardEngine", "RecoveryReport"]

_WAL_FILE = "wal.log"
_MANIFEST = "MANIFEST.json"

#: Width of each shard's private nid range (shard ``k`` allocates from
#: ``k << NID_RANGE_BITS``): no two shards ever mint the same node id,
#: so a migrated document keeps its nids and clients keep using ids
#: they learned before the move.
NID_RANGE_BITS = 48


@dataclass(frozen=True)
class RecoveryReport:
    """What opening an existing shard found in its WAL.

    * ``replayed`` — records applied through the maintenance path;
    * ``skipped_epoch`` — records from epochs the committed snapshot
      already folded in (e.g. a crash landed between the snapshot
      commit and the WAL truncate);
    * ``rejected_crc`` — frames whose checksum or body failed to
      verify (bit flips, or garbage after a torn frame);
    * ``torn_tail`` — incomplete final frames from a crash mid-append;
    * ``wal_format`` — on-disk WAL format version that was read back.
    """

    replayed: int = 0
    skipped_epoch: int = 0
    rejected_crc: int = 0
    torn_tail: int = 0
    wal_format: int = 0

    @property
    def clean(self) -> bool:
        return not (self.replayed or self.skipped_epoch
                    or self.rejected_crc or self.torn_tail)


class ShardEngine:
    """One persistent, WAL-protected XML index shard.

    Args:
        path: Shard directory (created when absent).
        string/typed/substring: Index configuration for a *new*
            shard; an existing one keeps its stored configuration.
        sync: WAL durability (``"none"``/``"flush"``/``"fsync"``).
        checkpoint_every: Auto-checkpoint after this many logged
            updates (0 disables; explicit :meth:`checkpoint` always
            works).
        parallel: Creation-pass parallelism for :meth:`load` — ``None``
            (serial), ``"auto"`` or a worker count (see
            :mod:`repro.core.parallel`).
        parallel_backend: ``"process"`` (default) or ``"thread"``.
        concurrent: Enable the concurrent serving path: queries pin
            snapshot-isolated read views, text updates run under MVCC,
            structural updates stop the world (docs/concurrency.md).
        group_commit: Batch concurrent writers' WAL records so one
            fsync covers a whole batch (implies ``concurrent``).
        group_batch_max: Most records per commit batch.
        group_batch_wait_ms: How long the commit leader lingers for a
            fuller batch (0 = commit immediately).
        shard_id: Position of this shard in a cluster (``None`` when
            the engine runs stand-alone, as under
            :class:`repro.database.Database`).
        retain_epochs: Time-travel window — keep this many published
            MVCC snapshots so :meth:`query` can answer ``as_of`` a
            historical epoch (requires ``concurrent``; 0 disables —
            see docs/replication.md).  Epochs are process-lifetime:
            a restart starts the window fresh.
    """

    def __init__(
        self,
        path: str,
        string: bool = True,
        typed: Iterable[str] = ("double",),
        substring: bool = False,
        sync: str = "flush",
        checkpoint_every: int = 10_000,
        parallel: int | str | None = None,
        parallel_backend: str = "process",
        concurrent: bool = False,
        group_commit: bool = False,
        group_batch_max: int = 32,
        group_batch_wait_ms: float = 0.0,
        shard_id: int | None = None,
        retain_epochs: int = 0,
    ):
        self.path = path
        self.shard_id = shard_id
        #: Bumped by every load/unload.  Those force checkpoints and
        #: are NOT WAL-logged, so a log shipper cannot see them in the
        #: frame stream; the stamp travels in the replication manifest
        #: instead and forces followers into a full resync.
        self.bulk_stamp = 0
        self._checkpoint_every = checkpoint_every
        self._pending = 0
        self._pending_lock = threading.Lock()
        wal_path = os.path.join(path, _WAL_FILE)
        if os.path.exists(os.path.join(path, _MANIFEST)):
            manifest = read_manifest(path)
            self.checkpoint_epoch = manifest_epoch(manifest)
            self.manager = load_manager(path)
            self._reserve_shard_nids()
            stats = ReplayStats()
            replayed = skipped = 0
            for record in replay_records(wal_path, stats):
                if record.epoch < self.checkpoint_epoch:
                    # Already folded into the committed snapshot (a
                    # crash hit between snapshot commit and WAL
                    # truncate); replaying would double-apply it.
                    skipped += 1
                    continue
                self._apply(record)
                replayed += 1
            self.recovered_records = replayed
            self.recovery = RecoveryReport(
                replayed=replayed,
                skipped_epoch=skipped,
                rejected_crc=stats.rejected_crc,
                torn_tail=stats.torn_tail,
                wal_format=stats.format_version,
            )
            if replayed:
                # Fold the replayed tail into a fresh checkpoint.
                faults.crashpoint("recovery.before_refold")
                self.checkpoint_epoch = save_manager(
                    self.manager, path, epoch=self.checkpoint_epoch + 1
                )
                faults.crashpoint("recovery.refolded")
        else:
            os.makedirs(path, exist_ok=True)
            self.manager = IndexManager(
                string=string, typed=tuple(typed), substring=substring
            )
            self._reserve_shard_nids()
            self.checkpoint_epoch = save_manager(self.manager, path)
            self.recovered_records = 0
            self.recovery = RecoveryReport()
        self.manager.parallel = parallel
        self.manager.parallel_backend = parallel_backend
        self._record_recovery_metrics()
        self._wal = WriteAheadLog(
            wal_path, sync=sync, metrics=self.manager.metrics,
            epoch=self.checkpoint_epoch,
        )
        if not self.recovery.clean or self._wal.needs_upgrade:
            # Replayed records are folded, stale/corrupt records must
            # not survive, and legacy logs upgrade to the framed format.
            self._wal.truncate(epoch=self.checkpoint_epoch)
        # Concurrency is enabled only after recovery: replay is
        # single-threaded by construction.
        self._group: GroupCommitLog | None = None
        if retain_epochs and not (concurrent or group_commit):
            raise ValueError("retain_epochs requires concurrent=True")
        if concurrent or group_commit:
            self.manager.enable_concurrency()
            if retain_epochs:
                self.manager.concurrency.set_retention(retain_epochs)
        if group_commit:
            self._group = GroupCommitLog(
                self._wal,
                batch_max=group_batch_max,
                batch_wait=group_batch_wait_ms / 1000.0,
                metrics=self.manager.metrics,
            )

    def _reserve_shard_nids(self) -> None:
        """Move the nid allocator into this shard's private range (a
        no-op outside a cluster, and on reopen — the persisted counter
        is already in range)."""
        if self.shard_id:
            self.manager.store.reserve_nids(
                self.shard_id << NID_RANGE_BITS)

    def _record_recovery_metrics(self) -> None:
        metrics = self.manager.metrics
        report = self.recovery
        if report.replayed:
            metrics.counter("wal.recovery.replayed").inc(report.replayed)
        if report.skipped_epoch:
            metrics.counter("wal.recovery.skipped_epoch").inc(
                report.skipped_epoch
            )
        if report.rejected_crc:
            metrics.counter("wal.recovery.rejected_crc").inc(
                report.rejected_crc
            )
        if report.torn_tail:
            metrics.counter("wal.recovery.torn_tail").inc(report.torn_tail)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def _apply(self, record: WalRecord) -> None:
        manager = self.manager
        if record.kind == TEXT_UPDATE:
            manager.update_text(record.nid, record.text)
        elif record.kind == INSERT_XML:
            before = record.extra - 1 if record.extra else None
            manager.insert_xml(record.nid, record.text, before_nid=before)
        elif record.kind == DELETE_SUBTREE:
            manager.delete_subtree(record.nid)
        elif record.kind == INSERT_ATTRIBUTE:
            manager.insert_attribute(record.nid, record.name, record.text)
        elif record.kind == DELETE_ATTRIBUTE:
            manager.delete_attribute(record.nid)
        elif record.kind == RENAME:
            manager.rename(record.nid, record.name)

    def _log(self, record: WalRecord) -> None:
        self._wal.append(record)
        self._bump_pending()

    def _bump_pending(self) -> None:
        with self._pending_lock:
            self._pending += 1
            due = (
                self._checkpoint_every
                and self._pending >= self._checkpoint_every
            )
            if due:
                # Arm the trigger once: reset while still holding the
                # lock, so a second writer crossing the threshold
                # concurrently cannot also see due=True and run a
                # back-to-back stop-the-world checkpoint.
                self._pending = 0
        if due:
            self.checkpoint()

    def _write_scope(self):
        """Serializes apply + WAL-append so log order equals apply
        order across writer threads (no-op when single-threaded).
        Raises instead of deadlocking if the calling thread is inside a
        read view (it holds the latch shared; waiting on the writer
        lock here could cycle with a structural writer draining
        shared holders)."""
        controller = self.manager.concurrency
        if controller is None:
            return nullcontext()
        controller.check_write_allowed()
        return controller.write_lock

    def _logged(self, apply, record: WalRecord):
        """Run one logged update: apply it and make it durable.

        Concurrent path: the in-memory apply and the WAL enqueue
        happen under the writer lock; the *wait* for durability
        happens outside it, so the next writer's apply overlaps this
        record's fsync (and, with group commit, several writers share
        one fsync).  The update is acknowledged — this method returns —
        only once its record is on storage at the configured sync
        level.
        """
        if self._group is None:
            with self._write_scope():
                result = apply()
                self._log(record)
            return result
        with self._write_scope():
            result = apply()
            seq = self._group.enqueue(record)
        self._group.wait_durable(seq)
        self._bump_pending()
        return result

    # ------------------------------------------------------------------
    # Document management
    # ------------------------------------------------------------------

    def load(self, name: str, xml: str):
        """Shred + index a document; forces a checkpoint (bulk loads
        are snapshot-sized events, not log records)."""
        doc = self.manager.load(name, xml)
        self.bulk_stamp += 1
        self.checkpoint()
        return doc

    def unload(self, name: str) -> None:
        self.manager.unload(name)
        self.bulk_stamp += 1
        self.checkpoint()

    def export_document(self, name: str) -> bytes:
        """One document in the on-disk snapshot encoding — the unit of
        transfer for shard migration.

        The encoding carries this engine's nids; the importer remaps
        them (:meth:`import_document`).  Runs under the non-structural
        exclusive latch so the columns are a consistent cut, without
        invalidating session pins.
        """
        controller = self.manager.concurrency
        scope = (nullcontext() if controller is None
                 else controller.exclusive(structural=False))
        with scope:
            doc = self.manager.store.document(name)
            return document_bytes(doc)

    def import_document(self, name: str, payload: bytes):
        """Adopt a document exported from another shard.

        Decodes the snapshot encoding, adopts the nodes (original
        nids are kept — shard nid ranges are disjoint), rebuilds index
        fields with the ordinary creation pass, and checkpoints —
        like :meth:`load`, an import
        is a snapshot-sized event (``bulk_stamp`` bump), not a log
        record, so a tailing follower resyncs rather than replays.
        """
        doc = document_from_bytes(name, payload)
        doc = self.manager.adopt_document(doc)
        self.bulk_stamp += 1
        self.checkpoint()
        return doc

    def document_stats(self) -> dict[str, dict[str, int]]:
        """Per-document placement metrics: node count and column-store
        byte size — the inputs to rebalancing policies."""
        return {
            name: {"nodes": len(doc), "bytes": doc.byte_size()}
            for name, doc in self.manager.store.documents.items()
        }

    @property
    def store(self):
        return self.manager.store

    # ------------------------------------------------------------------
    # Logged updates
    # ------------------------------------------------------------------

    def update_text(self, nid: int, new_text: str) -> int:
        return self._logged(
            lambda: self.manager.update_text(nid, new_text),
            WalRecord(TEXT_UPDATE, nid, text=new_text),
        )

    def insert_xml(self, parent_nid: int, fragment: str,
                   before_nid: int | None = None):
        return self._logged(
            lambda: self.manager.insert_xml(parent_nid, fragment, before_nid),
            WalRecord(
                INSERT_XML,
                parent_nid,
                text=fragment,
                extra=0 if before_nid is None else before_nid + 1,
            ),
        )

    def delete_subtree(self, nid: int):
        return self._logged(
            lambda: self.manager.delete_subtree(nid),
            WalRecord(DELETE_SUBTREE, nid),
        )

    def insert_attribute(self, owner_nid: int, name: str, value: str):
        return self._logged(
            lambda: self.manager.insert_attribute(owner_nid, name, value),
            WalRecord(INSERT_ATTRIBUTE, owner_nid, text=value, name=name),
        )

    def delete_attribute(self, attr_nid: int):
        return self._logged(
            lambda: self.manager.delete_attribute(attr_nid),
            WalRecord(DELETE_ATTRIBUTE, attr_nid),
        )

    def rename(self, nid: int, new_name: str) -> None:
        self._logged(
            lambda: self.manager.rename(nid, new_name),
            WalRecord(RENAME, nid, name=new_name),
        )

    def apply_logged(self, record: WalRecord):
        """Apply a shipped WAL record through the *logged* update path.

        A replication follower replays the primary's frames with this:
        the record lands in the follower's own WAL (re-stamped with the
        follower's checkpoint epoch), so a promoted follower recovers
        through ordinary WAL replay like any other engine.
        """
        return self._logged(
            lambda: self._apply(record),
            WalRecord(record.kind, record.nid, text=record.text,
                      name=record.name, extra=record.extra),
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_view(self):
        """A pinned snapshot view (context manager; requires
        ``concurrent=True``).  Queries and lookups inside the scope all
        run at the pinned epoch."""
        return self.manager.read_view()

    def _as_of_view(self, as_of: int):
        controller = self.manager.concurrency
        if controller is None:
            raise ValueError(
                "as_of queries require concurrent=True and retain_epochs"
            )
        return controller.read_view_as_of(as_of)

    def retained_epochs(self) -> list[int]:
        """Epochs answerable with ``as_of`` right now (oldest first;
        always includes the current epoch).  Empty window unless the
        engine was opened with ``retain_epochs``."""
        controller = self.manager.concurrency
        if controller is None:
            return [self.manager.epoch]
        return controller.retained_epochs()

    def query(self, text: str, document: str | None = None,
              use_indexes: bool | str = True,
              vectorized: bool | None = None,
              as_of: int | None = None) -> list[int]:
        if as_of is not None:
            with self._as_of_view(as_of):
                return _query(self.manager, text, document, use_indexes,
                              vectorized=vectorized)
        controller = self.manager.concurrency
        if controller is not None and active_view() is None:
            # Auto-pin: the whole evaluation runs at one epoch.
            with controller.read_view():
                return _query(self.manager, text, document, use_indexes,
                              vectorized=vectorized)
        return _query(self.manager, text, document, use_indexes,
                      vectorized=vectorized)

    def query_rows(self, text: str, document: str | None = None,
                   use_indexes: bool | str = True,
                   vectorized: bool | None = None,
                   as_of: int | None = None) -> list[tuple[str, int, int]]:
        """Like :meth:`query`, but returns ``(document, pre, nid)``
        rows instead of bare nids.

        nids are surrogates of one engine's nid space; ``(document,
        pre)`` addresses are stable across *placements*, which is what
        the scatter-gather coordinator merges and what the cross-shard
        differential suite compares bit-for-bit.  Mapping runs at the
        same pinned epoch as the evaluation.
        """
        if as_of is not None:
            with self._as_of_view(as_of):
                return self._rows_of(self.query(
                    text, document, use_indexes, vectorized=vectorized))
        controller = self.manager.concurrency
        if controller is not None and active_view() is None:
            with controller.read_view():
                return self._rows_of(self.query(
                    text, document, use_indexes, vectorized=vectorized))
        return self._rows_of(self.query(
            text, document, use_indexes, vectorized=vectorized))

    def _rows_of(self, nids: list[int]) -> list[tuple[str, int, int]]:
        node = self.store.node
        rows = []
        for nid in nids:
            doc, pre = node(nid)
            rows.append((doc.name, pre, nid))
        return rows

    def explain(self, text: str, execute: bool = False):
        """Plan report (see :func:`repro.query.planner.explain`): an
        :class:`~repro.query.planner.Explanation` comparable to the
        legacy summary strings and carrying per-document plan trees."""
        controller = self.manager.concurrency
        if controller is not None and active_view() is None:
            # Auto-pin like query(): pricing and (with execute=True)
            # operator execution must not straddle epochs.
            with controller.read_view():
                return _explain(self.manager, text, execute=execute)
        return _explain(self.manager, text, execute=execute)

    def metrics(self) -> dict:
        """Snapshot of runtime counters and timers (queries, plan
        cache, index builds/updates, statistics refreshes, WAL)."""
        return self.manager.metrics.snapshot()

    def lookup_string(self, value: str) -> Iterator[int]:
        return self.manager.lookup_string(value)

    def lookup_typed_equal(self, type_name: str, value: Any) -> Iterator[int]:
        return self.manager.lookup_typed_equal(type_name, value)

    def lookup_typed_range(self, type_name: str, low=None, high=None,
                           **kwargs) -> Iterator[tuple[Any, int]]:
        return self.manager.lookup_typed_range(type_name, low, high, **kwargs)

    def lookup_contains(self, needle: str) -> Iterator[int]:
        return self.manager.lookup_contains(needle)

    def lookup_regex(self, pattern: str) -> Iterator[int]:
        return self.manager.lookup_regex(pattern)

    def verify(self):
        """First-principles integrity check (see repro.core.verify)."""
        from ..core.verify import verify_database

        return verify_database(self.manager)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Snapshot everything and reset the log.

        The snapshot commits atomically under the next checkpoint epoch
        (manifest written last); only then is the WAL truncated and
        moved to the new epoch.  A crash in between is safe: recovery
        skips WAL records whose epoch predates the committed snapshot.

        Under the concurrent serving path this is a stop-the-world
        operation: the exclusive latch drains readers and writers, and
        any queued group-commit records are flushed before the
        snapshot, so the truncated WAL never holds an applied-but-
        unwritten update.
        """
        controller = self.manager.concurrency
        scope = (
            nullcontext() if controller is None
            # A checkpoint drains readers but changes no indexed
            # state, so it must not invalidate session pins.
            else controller.exclusive(structural=False)
        )
        with scope:
            if self._group is not None:
                self._group.drain()
            self.checkpoint_epoch = save_manager(
                self.manager, self.path, epoch=self.checkpoint_epoch + 1
            )
            faults.crashpoint("checkpoint.after_snapshot")
            self._wal.truncate(epoch=self.checkpoint_epoch)
            with self._pending_lock:
                self._pending = 0

    def close(self, checkpoint: bool = True) -> None:
        """Flush (optionally checkpoint) and release the WAL handle.

        The handle is released even when the checkpoint or the group
        drain raises (e.g. a poisoned :class:`GroupCommitLog`
        re-raising its injected crash): a server restarting after a
        poison must not hold the old file open.
        """
        try:
            if checkpoint:
                self.checkpoint()
            elif self._group is not None and not self._group.poisoned:
                self._group.drain()
        finally:
            self._wal.close()

    def __enter__(self) -> "ShardEngine":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        # On an exception, keep the WAL so recovery replays it.
        self.close(checkpoint=exc_type is None)
