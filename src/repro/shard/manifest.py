"""The sharding manifest: which shard owns which document.

A sharded deployment is a directory holding one subdirectory per shard
(each an ordinary :class:`~repro.shard.engine.ShardEngine` directory
with its own ``MANIFEST.json`` and WAL) plus one ``SHARDING.json`` at
the root — the :class:`ShardingManifest` — recording the cluster
layout:

* ``shards`` — how many shards the corpus is split over;
* ``placement`` — document name → owning shard (explicit placements
  win; anything else falls to a deterministic hash of the name);
* ``doc_order`` — every document in *global load order*.  Single-shard
  query results are ordered by document insertion order then pre
  within the document; the coordinator reproduces exactly that order
  across shards by merging on ``(global doc index, pre)``, so the
  order documents were loaded in must be a cluster-level fact, not a
  per-shard one;
* ``config`` — the index configuration every shard was created with.

The file is written atomically (temp + rename, like the per-shard
manifests in :mod:`repro.storage.persist`) and re-written whenever a
document is placed or unloaded, i.e. checkpointed alongside each
shard's own manifest.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any

__all__ = ["ShardingManifest", "SHARDING_FILE"]

SHARDING_FILE = "SHARDING.json"
_FORMAT_VERSION = 1


def _hash_shard(name: str, shards: int) -> int:
    # crc32 rather than hash(): stable across processes and runs
    # (PYTHONHASHSEED randomizes str.__hash__), so every coordinator
    # restart routes a name to the same shard.
    return zlib.crc32(name.encode("utf-8")) % shards


class ShardingManifest:
    """In-memory mirror of ``SHARDING.json`` (see module docstring)."""

    def __init__(self, shards: int,
                 config: dict[str, Any] | None = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.config: dict[str, Any] = dict(config or {})
        self.placement: dict[str, int] = {}
        self.doc_order: list[str] = []

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """The shard that owns (or would own) ``name``."""
        try:
            return self.placement[name]
        except KeyError:
            return _hash_shard(name, self.shards)

    def place(self, name: str, shard: int | None = None) -> int:
        """Record ``name`` as placed, on ``shard`` when given (explicit
        placement) or on its hash shard otherwise.  Re-placing an
        already-placed document on a *different* shard is an error —
        moving a document is an unload + reload, not a re-place."""
        target = self.shard_of(name) if shard is None else shard
        if not 0 <= target < self.shards:
            raise ValueError(
                f"shard {target} out of range for {self.shards} shards"
            )
        current = self.placement.get(name)
        if current is not None and current != target:
            raise ValueError(
                f"document {name!r} already placed on shard {current}"
            )
        self.placement[name] = target
        if name in self.doc_order:
            self.doc_order.remove(name)
        self.doc_order.append(name)
        return target

    def unplace(self, name: str) -> int:
        shard = self.placement.pop(name)
        self.doc_order.remove(name)
        return shard

    def documents_on(self, shard: int) -> list[str]:
        """Documents owned by ``shard``, in global load order."""
        return [n for n in self.doc_order if self.placement[n] == shard]

    def global_index(self, name: str) -> int:
        """Position of ``name`` in the global load order — the major
        merge key for cross-shard result ordering."""
        return self.doc_order.index(name)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": _FORMAT_VERSION,
            "shards": self.shards,
            "config": self.config,
            "placement": self.placement,
            "doc_order": list(self.doc_order),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardingManifest":
        if data.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported sharding manifest format {data.get('format')!r}"
            )
        manifest = cls(int(data["shards"]), config=data.get("config") or {})
        manifest.placement = {
            str(k): int(v) for k, v in data.get("placement", {}).items()
        }
        manifest.doc_order = [str(n) for n in data.get("doc_order", [])]
        if sorted(manifest.doc_order) != sorted(manifest.placement):
            raise ValueError("sharding manifest: doc_order != placement keys")
        return manifest

    def save(self, root: str) -> None:
        """Atomically write ``SHARDING.json`` under ``root``."""
        os.makedirs(root, exist_ok=True)
        final = os.path.join(root, SHARDING_FILE)
        tmp = final + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)

    @classmethod
    def load(cls, root: str) -> "ShardingManifest":
        with open(os.path.join(root, SHARDING_FILE), encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def exists(cls, root: str) -> bool:
        return os.path.exists(os.path.join(root, SHARDING_FILE))

    def shard_dir(self, root: str, shard: int) -> str:
        return os.path.join(root, f"shard-{shard:03d}")
