"""The sharding manifest: which shard owns which document.

A sharded deployment is a directory holding one subdirectory per shard
(each an ordinary :class:`~repro.shard.engine.ShardEngine` directory
with its own ``MANIFEST.json`` and WAL) plus one ``SHARDING.json`` at
the root — the :class:`ShardingManifest` — recording the cluster
layout:

* ``shards`` — how many shards the corpus is split over;
* ``placement`` — document name → owning shard (explicit placements
  win; anything else falls to a deterministic hash of the name);
* ``doc_order`` — every document in *global load order*.  Single-shard
  query results are ordered by document insertion order then pre
  within the document; the coordinator reproduces exactly that order
  across shards by merging on ``(global doc index, pre)``, so the
  order documents were loaded in must be a cluster-level fact, not a
  per-shard one;
* ``config`` — the index configuration every shard was created with.
* ``version`` — a monotonic counter bumped by every placement change
  (place, unplace, move, resize).  The coordinator stamps scatter
  requests with the version its routing decision was made under, so a
  worker can reject a request routed under a stale layout
  (``doc_moved``) instead of silently answering from the wrong side
  of a migration — see ``docs/sharding.md``.

The file is written atomically (temp + rename, like the per-shard
manifests in :mod:`repro.storage.persist`) and re-written whenever a
document is placed, unloaded or moved, i.e. checkpointed alongside
each shard's own manifest.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any

__all__ = ["ShardingManifest", "SHARDING_FILE"]

SHARDING_FILE = "SHARDING.json"
_FORMAT_VERSION = 1


def _hash_shard(name: str, shards: int) -> int:
    # crc32 rather than hash(): stable across processes and runs
    # (PYTHONHASHSEED randomizes str.__hash__), so every coordinator
    # restart routes a name to the same shard.
    return zlib.crc32(name.encode("utf-8")) % shards


class ShardingManifest:
    """In-memory mirror of ``SHARDING.json`` (see module docstring)."""

    def __init__(self, shards: int,
                 config: dict[str, Any] | None = None):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.config: dict[str, Any] = dict(config or {})
        self.placement: dict[str, int] = {}
        self.doc_order: list[str] = []
        self.version = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def shard_of(self, name: str) -> int:
        """The shard that owns (or would own) ``name``."""
        try:
            return self.placement[name]
        except KeyError:
            return _hash_shard(name, self.shards)

    def place(self, name: str, shard: int | None = None) -> int:
        """Record ``name`` as placed, on ``shard`` when given (explicit
        placement) or on its hash shard otherwise.  Re-placing an
        already-placed document on a *different* shard is an error —
        moving a live document is :meth:`move` (which preserves the
        global load order), not a re-place."""
        target = self.shard_of(name) if shard is None else shard
        if not 0 <= target < self.shards:
            raise ValueError(
                f"shard {target} out of range for {self.shards} shards"
            )
        current = self.placement.get(name)
        if current is not None and current != target:
            raise ValueError(
                f"document {name!r} already placed on shard {current}"
            )
        self.placement[name] = target
        if name in self.doc_order:
            self.doc_order.remove(name)
        self.doc_order.append(name)
        self.version += 1
        return target

    def unplace(self, name: str) -> int:
        shard = self.placement.pop(name)
        self.doc_order.remove(name)
        self.version += 1
        return shard

    def move(self, name: str, shard: int) -> int:
        """Re-home an already-placed document onto ``shard``.

        Unlike unplace + place this keeps ``name``'s position in
        ``doc_order`` — a migration changes *where* a document lives,
        never the global result order — and bumps ``version`` exactly
        once, so the flip is a single atomic layout transition.
        Returns the previous owner.
        """
        if not 0 <= shard < self.shards:
            raise ValueError(
                f"shard {shard} out of range for {self.shards} shards"
            )
        try:
            current = self.placement[name]
        except KeyError:
            raise ValueError(f"document {name!r} is not placed") from None
        self.placement[name] = shard
        self.version += 1
        return current

    def set_shards(self, shards: int) -> None:
        """Change the shard count (the resize flip).

        Every placement must already fit inside the new range — the
        coordinator drains documents off doomed shards *before*
        shrinking, so a manifest never references a shard that no
        longer exists.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        stranded = sorted(
            n for n, s in self.placement.items() if s >= shards
        )
        if stranded:
            raise ValueError(
                f"cannot shrink to {shards} shards: documents still "
                f"placed on removed shards: {', '.join(stranded)}"
            )
        self.shards = shards
        self.version += 1

    def documents_on(self, shard: int) -> list[str]:
        """Documents owned by ``shard``, in global load order."""
        return [n for n in self.doc_order if self.placement[n] == shard]

    def global_index(self, name: str) -> int:
        """Position of ``name`` in the global load order — the major
        merge key for cross-shard result ordering."""
        return self.doc_order.index(name)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": _FORMAT_VERSION,
            "shards": self.shards,
            "config": self.config,
            "placement": self.placement,
            "doc_order": list(self.doc_order),
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardingManifest":
        if data.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported sharding manifest format {data.get('format')!r}"
            )
        manifest = cls(int(data["shards"]), config=data.get("config") or {})
        manifest.placement = {
            str(k): int(v) for k, v in data.get("placement", {}).items()
        }
        manifest.doc_order = [str(n) for n in data.get("doc_order", [])]
        if sorted(manifest.doc_order) != sorted(manifest.placement):
            raise ValueError("sharding manifest: doc_order != placement keys")
        # Manifests written before elasticity carry no version; they
        # have by definition never seen a placement change race, so 0
        # (strictly below any bumped version) is the right basis.
        manifest.version = int(data.get("version", 0))
        return manifest

    def save(self, root: str) -> None:
        """Atomically write ``SHARDING.json`` under ``root``."""
        os.makedirs(root, exist_ok=True)
        final = os.path.join(root, SHARDING_FILE)
        tmp = final + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)

    @classmethod
    def load(cls, root: str) -> "ShardingManifest":
        with open(os.path.join(root, SHARDING_FILE), encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    @classmethod
    def exists(cls, root: str) -> bool:
        return os.path.exists(os.path.join(root, SHARDING_FILE))

    def shard_dir(self, root: str, shard: int) -> str:
        return os.path.join(root, f"shard-{shard:03d}")
