"""Shard-per-core engine: embeddable shard cores + a coordinator.

The package splits the serving engine into three layers
(``docs/sharding.md`` is the spec):

* :mod:`repro.shard.engine` — :class:`ShardEngine`, the embeddable
  single-shard core: documents, indices, WAL, group-commit leader and
  MVCC controller.  :class:`repro.database.Database` is a thin
  single-shard facade over it.
* :mod:`repro.shard.worker` — one shard core behind the wire protocol
  in its own OS process (the unit the coordinator scales out over).
* :mod:`repro.shard.coordinator` — :class:`ShardCluster`: partitions a
  corpus across shards by document, routes updates to the owning
  shard, scatters queries and k-way merges the per-shard row batches,
  and pins cross-shard read views on a consistent epoch vector.  The
  cluster is elastic: live document migration, policy-driven
  rebalancing and resize (``docs/sharding.md``, "Elastic shards").
"""

from .coordinator import (
    ClusterView,
    DocumentMovedError,
    ShardCluster,
    ShardDownError,
    ShardError,
    greedy_balance,
)
from .engine import RecoveryReport, ShardEngine
from .manifest import ShardingManifest

__all__ = [
    "ClusterView",
    "DocumentMovedError",
    "RecoveryReport",
    "ShardCluster",
    "ShardDownError",
    "ShardError",
    "ShardEngine",
    "ShardingManifest",
    "greedy_balance",
]
