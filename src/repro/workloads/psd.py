"""PSD-like protein-sequence dataset generator.

The paper's PSD corpus (Georgetown Protein Sequence Database, 685 MB)
has ~63% value leaves, a low ~4% share of potential-double values, and
the largest number of non-leaf potential doubles (902 of 58.4 M
nodes): sequence spans decomposed into ``<from>``/``<to>`` children
whose concatenation is numeric.  The analogue emits protein entries
with reference blocks, amino-acid sequence strings (always rejected by
the double FSM), and rare decomposed ``<seq-spec>`` spans at the
paper's per-node rate.
"""

from __future__ import annotations

import random

from .words import proper_name, sentence

__all__ = ["generate_psd", "NODES_PER_SCALE"]

#: Approximate generated nodes at ``scale=1.0``.
NODES_PER_SCALE = 116900

#: The paper's non-leaf-double rate: 902 per 58,445,809 nodes.
_NON_LEAF_RATE = 902 / 58_445_809

_AMINO = "ACDEFGHIKLMNPQRSTVWY"


def _reference(rng: random.Random, out: list[str]) -> None:
    out.append(
        f'<reference refid="ref{rng.randrange(10**6)}" '
        f'journal="{sentence(rng, 1)}" medline="m{rng.randrange(10**7)}">'
    )
    for _ in range(2):
        out.append(f"<author>{proper_name(rng)}</author>")
    out.append(f"<citation>{sentence(rng, 4)}</citation>")
    if rng.random() < 0.5:
        out.append(f"<year>{rng.randrange(1975, 2009)}</year>")
    else:
        # "Dec 1999" style: rejected by the double FSM.
        out.append(f"<year>Dec {rng.randrange(1975, 2009)}</year>")
    out.append("</reference>")


def _protein(
    rng: random.Random, out: list[str], number: int, decomposed_span: bool
) -> None:
    out.append(
        f'<protein id="P{number:06d}" type="{rng.choice(("complete", "fragment"))}" '
        f'curation="{rng.choice(("reviewed", "unreviewed"))}" '
        f'created="{rng.randrange(1, 29)}-Dec-{rng.randrange(1990, 2009)}" '
        f'modified="{rng.randrange(1, 29)}-Jan-{rng.randrange(1990, 2009)}">'
    )
    for _ in range(2):
        out.append(
            f'<xref db="{rng.choice(("PIR", "SWISS", "GB"))}" '
            f'accession="X{rng.randrange(10**6):06d}"/>'
        )
    out.append(f"<name>{sentence(rng, 3)}</name>")
    out.append(f"<organism>{proper_name(rng)}</organism>")
    out.append(f"<classification>{sentence(rng, 2)}</classification>")
    out.append(f"<keywords>{sentence(rng, 3)}</keywords>")
    sequence = "".join(rng.choice(_AMINO) for _ in range(rng.randrange(30, 90)))
    out.append(f"<sequence>{sequence}</sequence>")
    out.append(f"<length>{len(sequence)}</length>")
    if rng.random() < 0.3:
        out.append(f"<mass>{rng.uniform(5000, 120000):.1f}</mass>")
    else:
        out.append(f"<mass>{rng.uniform(5000, 120000):.1f} Da</mass>")
    if decomposed_span:
        # Concatenated span value is numeric: a non-leaf double.
        out.append(
            f"<seq-spec><from>{rng.randrange(1, 9)}</from>"
            f"<to>{rng.randrange(10, 99)}</to></seq-spec>"
        )
    else:
        out.append(
            f"<seq-spec>{rng.randrange(1, 9)}-{rng.randrange(10, 99)}</seq-spec>"
        )
    for _ in range(rng.randrange(1, 3)):
        _reference(rng, out)
    out.append("</protein>")


def generate_psd(
    scale: float, seed: int = 4, decomposed_spans: int | None = None
) -> str:
    """Generate a PSD-like document of roughly
    ``scale * NODES_PER_SCALE`` nodes.

    ``decomposed_spans`` fixes the number of non-leaf-double spans
    (default: the paper's per-node rate, minimum 1).
    """
    rng = random.Random(seed)
    proteins = max(1, round(scale * NODES_PER_SCALE / 53))
    if decomposed_spans is None:
        decomposed_spans = max(
            1, round(scale * NODES_PER_SCALE * _NON_LEAF_RATE)
        )
    decomposed = set(
        rng.sample(range(proteins), min(decomposed_spans, proteins))
    )
    out = ["<proteindatabase>"]
    for number in range(proteins):
        _protein(rng, out, number, decomposed_span=number in decomposed)
    out.append("</proteindatabase>")
    return "".join(out)
