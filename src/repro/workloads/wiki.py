"""Wikipedia-abstract-like dataset generator.

The paper's Wiki corpus (2 GB of article abstracts) is the largest and
most text-heavy dataset: ~56% value leaves, almost no doubles (0.1%),
and — critically for Figure 11 — URL-rich content that defeats the
hash function's 27-position circular XOR: "the different characters
between two distinct URLs are repeated every 27 positions, while the
rest data remain the same", producing up to 9 distinct strings per
hash value.

The analogue emits articles with sublink URLs, a controlled share of
which come from *collision families*: URLs that differ only by a
permutation of characters at positions 27 apart, so every member of a
family hashes identically (characters at string positions ``i`` and
``i + 27k`` XOR into the same c-array offset).
"""

from __future__ import annotations

import random
import string

from .words import sentence

__all__ = ["generate_wiki", "collision_family", "NODES_PER_SCALE"]

#: Approximate generated nodes at ``scale=1.0``.
NODES_PER_SCALE = 189000


def collision_family(rng: random.Random, size: int) -> list[str]:
    """Build ``size`` distinct URLs that all hash to the same value.

    The URLs share every character except at three positions spaced 27
    apart, which hold permutations of three distinct characters.  Since
    the hash XORs the character at string index ``i`` into c-array
    offset ``5·i mod 27``, characters 27 positions apart land on the
    same offset; any permutation of the same multiset over those slots
    yields the same hash.  Three slots give 6 variants; a fourth slot
    pair extends the family to the paper-observed maximum of 9.
    """
    if not 2 <= size <= 9:
        raise ValueError("family size must be in 2..9")
    prefix = "http://www."
    letters = string.ascii_lowercase
    mid_a = "".join(rng.choice(letters) for _ in range(26))
    mid_b = "".join(rng.choice(letters) for _ in range(26))
    suffix = "/wiki/" + "".join(rng.choice(letters) for _ in range(8))
    a, b, c = rng.sample(letters, 3)
    perms = [
        (a, b, c), (a, c, b), (b, a, c), (b, c, a), (c, a, b), (c, b, a),
    ]
    family = [
        f"{prefix}{x}{mid_a}{y}{mid_b}{z}{suffix}" for x, y, z in perms
    ]
    if size > 6:
        # Swap a second, independent pair 27 positions apart inside the
        # suffix region of the first few variants.
        d, e = rng.sample(letters, 2)
        tail = "".join(rng.choice(letters) for _ in range(26))
        extended = [
            f"{base}{d}{tail}{e}" for base in family[:3]
        ] + [f"{base}{e}{tail}{d}" for base in family[:3]]
        family = [f"{base}{d}{tail}{e}" for base in family] + extended[3:]
    return family[:size]


def _article(
    rng: random.Random, out: list[str], number: int, urls: list[str]
) -> None:
    out.append("<doc>")
    out.append(f"<title>Wikipedia: {sentence(rng, 2)}</title>")
    out.append(f"<abstract>{sentence(rng, rng.randrange(12, 30))}</abstract>")
    out.append("<links>")
    for url in urls:
        if rng.random() < 0.4:
            out.append(
                f'<sublink linktype="nav" url="{url}">'
                f"<anchor>{sentence(rng, 2)}</anchor></sublink>"
            )
        else:
            out.append(
                f'<sublink linktype="nav" anchor="{sentence(rng, 2)}" '
                f'url="{url}"/>'
            )
    out.append("</links>")
    if rng.random() < 0.012:
        out.append(f"<pageid>{number}</pageid>")
    out.append("</doc>")


def generate_wiki(
    scale: float, seed: int = 5, collision_share: float = 0.04
) -> str:
    """Generate a Wiki-like document of roughly
    ``scale * NODES_PER_SCALE`` nodes.

    ``collision_share`` is the fraction of URLs drawn from collision
    families (size 2-9, smaller families more common), reproducing the
    Figure 11 tail.
    """
    rng = random.Random(seed)
    articles = max(1, round(scale * NODES_PER_SCALE / 19))
    # Pre-build the collision families the URL stream will draw from.
    family_urls: list[str] = []
    target_family_urls = int(articles * 3 * collision_share)
    while len(family_urls) < target_family_urls:
        size = rng.choices(
            (2, 3, 4, 5, 6, 7, 8, 9),
            weights=(40, 20, 12, 9, 7, 5, 4, 3),
        )[0]
        family_urls.extend(collision_family(rng, size))
    rng.shuffle(family_urls)
    letters = string.ascii_lowercase
    out = ["<feed>"]
    for number in range(articles):
        urls = []
        for _ in range(rng.randrange(2, 5)):
            if family_urls and rng.random() < collision_share * 2:
                urls.append(family_urls.pop())
            else:
                path = "".join(rng.choice(letters) for _ in range(rng.randrange(8, 20)))
                urls.append(f"http://www.{sentence(rng, 1)}.org/wiki/{path}")
        _article(rng, out, number, urls)
    out.append("</feed>")
    return "".join(out)
