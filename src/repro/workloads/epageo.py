"""EPAGeo-like geospatial dataset generator.

The paper's EPAGeo corpus (EPA geospatial downloads, 170 MB) carries
~66% value leaves and ~7% potential-double values (Table 1), with no
non-leaf doubles.  The analogue: flat facility records, attribute-
heavy (ids, state/county codes), with decimal latitude plus a
longitude that is only sometimes in plain decimal form (DMS-style
strings reject, which is what keeps the double share at ~7%).
"""

from __future__ import annotations

import random

from .words import sentence

__all__ = ["generate_epageo", "NODES_PER_SCALE"]

#: Approximate generated nodes at ``scale=1.0``.
NODES_PER_SCALE = 13100

_STATES = ("AZ", "CA", "NM", "NV", "OR", "TX", "UT", "WA")


def _facility(rng: random.Random, out: list[str], number: int) -> None:
    state = rng.choice(_STATES)
    out.append(
        f'<facility registry_id="REG{number:07d}" state="{state}" '
        f'county="{rng.choice(_STATES)}{rng.randrange(99):02d}" '
        f'epa_region="R{rng.randrange(1, 11)}" '
        f'program="{rng.choice(("AIR", "WATER", "WASTE"))}" '
        f'status="{rng.choice(("ACTIVE", "CLOSED"))}" '
        f'naics="N{rng.randrange(10000, 99999)}" '
        f'huc="H{rng.randrange(10000000)}">'
    )
    out.append(f"<name>{sentence(rng, 3).upper()}</name>")
    out.append(f"<street>{rng.randrange(1, 9999)} {sentence(rng, 2)}</street>")
    out.append(f"<city>{sentence(rng, 1).upper()}</city>")
    out.append(f"<collection_method>{sentence(rng, 2)}</collection_method>")
    out.append(f"<latitude>{rng.uniform(24, 49):.6f}</latitude>")
    if rng.random() < 0.5:
        out.append(f"<longitude>{rng.uniform(-125, -66):.6f}</longitude>")
    else:
        # DMS form ("W 112 04 30") — not a double lexical value.
        out.append(
            f"<longitude>W {rng.randrange(66, 125)} "
            f"{rng.randrange(60)} {rng.randrange(60)}</longitude>"
        )
    out.append("</facility>")


def generate_epageo(scale: float, seed: int = 2) -> str:
    """Generate an EPAGeo-like document of roughly
    ``scale * NODES_PER_SCALE`` nodes."""
    rng = random.Random(seed)
    facilities = max(1, round(scale * NODES_PER_SCALE / 22))
    out = ['<geo_data source="EPA">']
    for number in range(facilities):
        _facility(rng, out, number)
    out.append("</geo_data>")
    return "".join(out)
