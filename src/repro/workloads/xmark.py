"""XMark-like auction-site document generator.

The paper's first four datasets are XMark documents at scale factors
1, 2, 4 and 8 (Table 1: ~64% text nodes, ~8% potential-double values,
no non-leaf doubles).  This generator reproduces the auction-site
*shape* — regions/items with mixed-content descriptions, people, open
auctions with bids — with the unit composition solved so the node-kind
mix matches the paper's fractions: per item, 3 attributes, 3 word
fields, 8 numeric leaves and ~12 mixed-content description groups give
64% value leaves and 8% potential doubles.  ``scale=1.0`` corresponds
to roughly :data:`NODES_PER_SCALE` nodes (pure-Python budgets; the
fractions, which the experiments depend on, are scale-invariant).
"""

from __future__ import annotations

import random

from .words import date_text, double_text, sentence

__all__ = ["generate_xmark", "NODES_PER_SCALE"]

#: Approximate generated nodes at ``scale=1.0``.
NODES_PER_SCALE = 9400

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")


def _description(rng: random.Random, out: list[str], groups: int) -> None:
    """Mixed-content description: the text-node-rich part of XMark.

    Per group: ``text <bold>text <emph>text</emph> text</bold>`` — 4
    text nodes to 2 elements, XMark's description ratio.
    """
    out.append("<description>")
    for _ in range(groups):
        out.append(sentence(rng, 3))
        out.append("<bold>")
        out.append(sentence(rng, 2))
        out.append("<emph>")
        out.append(sentence(rng, 2))
        out.append("</emph>")
        out.append(sentence(rng, 2))
        out.append("</bold>")
    out.append(sentence(rng, 3))
    out.append("</description>")


def _numeric_fields(rng: random.Random, out: list[str], names: tuple[str, ...]):
    for name in names:
        out.append(f"<{name}>{double_text(rng)}</{name}>")


def _item(rng: random.Random, out: list[str], number: int) -> None:
    out.append(
        f'<item id="item{number}" featured="{rng.choice("yn")}" '
        f'category="cat{rng.randrange(50)}">'
    )
    out.append(f"<name>{sentence(rng, 2)}</name>")
    out.append(f"<location>{sentence(rng, 1)}</location>")
    out.append(f"<payment>{sentence(rng, 2)}</payment>")
    _numeric_fields(
        rng,
        out,
        (
            "quantity",
            "price",
            "reserve",
            "shipping_cost",
            "tax",
            "weight",
            "rating",
            "handling",
        ),
    )
    _description(rng, out, groups=rng.randrange(10, 15))
    out.append("</item>")


def _auction(rng: random.Random, out: list[str], number: int) -> None:
    out.append(
        f'<open_auction id="auction{number}" seller="person{rng.randrange(997)}" '
        f'status="{rng.choice(("open", "closing"))}">'
    )
    out.append(f"<interval>{date_text(rng)}</interval>")
    out.append(f"<type>{sentence(rng, 1)}</type>")
    out.append(f"<privacy>{sentence(rng, 1)}</privacy>")
    _numeric_fields(
        rng,
        out,
        (
            "initial",
            "current",
            "reserve",
            "increase",
            "increase",
            "increase",
            "itemref",
            "quantity",
        ),
    )
    _description(rng, out, groups=rng.randrange(10, 15))
    out.append("</open_auction>")


def _person(rng: random.Random, out: list[str], number: int) -> None:
    out.append(f'<person id="person{number}">')
    out.append(f"<name>{sentence(rng, 2)}</name>")
    out.append(f"<emailaddress>mailto:{rng.choice('abcdef')}@{sentence(rng, 1)}.org</emailaddress>")
    out.append(f"<city>{sentence(rng, 1)}</city>")
    out.append(f"<country>{sentence(rng, 1)}</country>")
    out.append(f"<income>{double_text(rng)}</income>")
    out.append(f"<age>{rng.randrange(18, 99)}</age>")
    out.append("<profile>")
    out.append(sentence(rng, 3))
    out.append(f"<interest>{sentence(rng, 2)}</interest>")
    out.append(sentence(rng, 2))
    out.append(f"<education>{sentence(rng, 1)}</education>")
    out.append(sentence(rng, 2))
    out.append("</profile>")
    out.append("</person>")


def generate_xmark(scale: float, seed: int = 1) -> str:
    """Generate an XMark-like document of roughly
    ``scale * NODES_PER_SCALE`` nodes (node mix per Table 1)."""
    rng = random.Random(seed)
    # item ~110 nodes, auction ~110, person ~25: units of ~245 nodes.
    units = max(1, round(scale * NODES_PER_SCALE / 245))
    out: list[str] = ["<site>"]
    out.append("<regions>")
    region_items: dict[str, list[int]] = {region: [] for region in _REGIONS}
    for number in range(units):
        region_items[_REGIONS[number % len(_REGIONS)]].append(number)
    for region in _REGIONS:
        out.append(f"<{region}>")
        for number in region_items[region]:
            _item(rng, out, number)
        out.append(f"</{region}>")
    out.append("</regions>")
    out.append("<people>")
    for number in range(units):
        _person(rng, out, number)
    out.append("</people>")
    out.append("<open_auctions>")
    for number in range(units):
        _auction(rng, out, number)
    out.append("</open_auctions>")
    out.append("</site>")
    return "".join(out)
