"""DBLP-like bibliography generator.

The paper's DBLP snapshot (474 MB) has ~66% value leaves, ~10%
potential-double values (years, volumes, numbers all lex like
integers) and — uniquely among the corpora — a small absolute number
of *non-leaf* potential doubles (21): titles like
``<title>2<sup>10</sup>24</title>`` whose concatenated string value is
numeric.  The analogue reproduces all three properties; the non-leaf
count is injected explicitly (``math_titles``) since it is an absolute
rarity, not a proportion.
"""

from __future__ import annotations

import random

from .words import proper_name, sentence

__all__ = ["generate_dblp", "NODES_PER_SCALE"]

#: Approximate generated nodes at ``scale=1.0``.
NODES_PER_SCALE = 69600

_VENUES = ("VLDB", "SIGMOD", "EDBT", "ICDE", "TODS", "VLDBJ", "CIDR")


def _publication(
    rng: random.Random, out: list[str], number: int, math_title: bool
) -> None:
    kind = rng.choice(("article", "inproceedings"))
    out.append(
        f'<{kind} key="conf/x/{number}" mdate="{rng.randrange(2002, 2009)}-'
        f'{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}" '
        f'publtype="{rng.choice(("informal", "survey", "regular"))}" '
        f'rating="{rng.choice("ABC")}" '
        f'reviewid="rv{rng.randrange(10**6)}">'
    )
    for _ in range(rng.randrange(2, 4)):
        out.append(
            f'<author orcid="0000-{rng.randrange(10**4):04d}">'
            f"{proper_name(rng)}</author>"
        )
    if math_title:
        # The combined title value is numeric => a non-leaf double.
        out.append(
            f"<title>{rng.randrange(1, 9)}<sup>{rng.randrange(2, 64)}</sup>"
            f"{rng.randrange(100)}</title>"
        )
    elif rng.random() < 0.5:
        out.append(
            f"<title>{sentence(rng, 3)}<i>{sentence(rng, 1)}</i>"
            f"{sentence(rng, 2)}</title>"
        )
    else:
        out.append(f"<title>{sentence(rng, 5)}</title>")
    out.append(f"<journal>{rng.choice(_VENUES)}</journal>")
    start = rng.randrange(1, 500)
    out.append(f"<pages>{start}-{start + rng.randrange(5, 30)}</pages>")
    out.append(f"<year>{rng.randrange(1970, 2009)}</year>")
    out.append(f"<volume>{rng.randrange(1, 40)}</volume>")
    out.append(f"<number>{rng.randrange(1, 12)}</number>")
    out.append(f"</{kind}>")


def generate_dblp(
    scale: float, seed: int = 3, math_titles: int | None = None
) -> str:
    """Generate a DBLP-like document of roughly
    ``scale * NODES_PER_SCALE`` nodes.

    ``math_titles`` controls the number of non-leaf-double titles
    (default: scales the paper's 21 with document size, minimum 1).
    """
    rng = random.Random(seed)
    publications = max(1, round(scale * NODES_PER_SCALE / 27))
    if math_titles is None:
        math_titles = max(1, round(21 * scale * NODES_PER_SCALE / 34_799_707))
    math_slots = set(
        rng.sample(range(publications), min(math_titles, publications))
    )
    out = ["<dblp>"]
    for number in range(publications):
        _publication(rng, out, number, math_title=number in math_slots)
    out.append("</dblp>")
    return "".join(out)
