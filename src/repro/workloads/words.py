"""Deterministic text/number builders shared by the dataset generators.

All generators draw from seeded ``random.Random`` instances, so every
dataset is reproducible byte-for-byte for a given (scale, seed).
Content is built from an XML-safe alphabet (no ``&``, ``<``, ``>``), so
generated markup needs no escaping.
"""

from __future__ import annotations

import random

__all__ = [
    "WORDS",
    "sentence",
    "proper_name",
    "double_text",
    "integer_text",
    "date_text",
]

# A Halliday-flavoured vocabulary; 64 words so sampling is cheap.
WORDS = (
    "towel galaxy improbability babel fish pan dimensional mice dolphin "
    "vogon poetry bypass earth mostly harmless guide restaurant universe "
    "tea infinite drive gold heart marvin paranoid android sirius "
    "cybernetics corporation deep thought question answer forty two "
    "petunia whale sperm bowl jewelled crab ford prefect zaphod trillian "
    "slartibartfast fjord norway coastline award magrathea planet factory "
    "hyperspace express route demolition council lunch time paradox"
).split()

_MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def sentence(rng: random.Random, n_words: int) -> str:
    """A space-separated pseudo-sentence of ``n_words`` words."""
    return " ".join(rng.choice(WORDS) for _ in range(n_words))


def proper_name(rng: random.Random) -> str:
    """A capitalised two-part name."""
    return f"{rng.choice(WORDS).capitalize()} {rng.choice(WORDS).capitalize()}"


def double_text(rng: random.Random) -> str:
    """A double value in one of the lexical shapes the FSM accepts."""
    shape = rng.randrange(5)
    if shape == 0:
        return str(rng.randrange(100000))
    if shape == 1:
        return f"{rng.uniform(0, 1000):.2f}"
    if shape == 2:
        return f"{rng.uniform(-90, 90):.6f}"
    if shape == 3:
        return f"{rng.uniform(0, 10):.3f}E{rng.randrange(-5, 6)}"
    return f".{rng.randrange(1000)}"


def integer_text(rng: random.Random, low: int = 0, high: int = 10000) -> str:
    return str(rng.randrange(low, high))


def date_text(rng: random.Random) -> str:
    """A slash date (``MM/DD/YYYY``) — intentionally *not* castable to a
    double, like XMark's date fields."""
    month = rng.randrange(1, 13)
    day = rng.randrange(1, _MONTH_DAYS[month - 1] + 1)
    return f"{month:02d}/{day:02d}/{rng.randrange(1998, 2009)}"
