"""Synthetic workloads: the paper's eight datasets and update mixes."""

from .catalog import DATASETS, Dataset, bench_scale, dataset
from .dblp import generate_dblp
from .epageo import generate_epageo
from .psd import generate_psd
from .queries import QUERY_SETS, queries_for
from .stats import DatasetStats, collect_stats
from .updates import random_text_updates, text_nids
from .wiki import collision_family, generate_wiki
from .xmark import generate_xmark

__all__ = [
    "DATASETS",
    "Dataset",
    "DatasetStats",
    "bench_scale",
    "collect_stats",
    "collision_family",
    "dataset",
    "generate_dblp",
    "generate_epageo",
    "generate_psd",
    "generate_wiki",
    "generate_xmark",
    "QUERY_SETS",
    "queries_for",
    "random_text_updates",
    "text_nids",
]
