"""Named query workloads per evaluation dataset.

The paper motivates the indices with XPath value predicates but does
not publish a query set; these workloads exercise each corpus's
characteristic shapes — XMark-style auction lookups, DBLP year ranges,
PSD mass ranges, Wiki substring searches — and are used by the query
benchmarks and examples.  Every query is answerable both by index plan
and by full scan, so agreement can always be asserted.
"""

from __future__ import annotations

__all__ = ["QUERY_SETS", "queries_for"]

_XMARK = [
    ("equality on a numeric leaf", "//item[quantity = 5]"),
    ("price range", "//item[price < 10]"),
    ("open range", "//open_auction[initial >= 100]"),
    ("string equality on a word field", '//person[city = "magrathea"]'),
    ("conjunction", "//item[quantity = 5 and price < 100]"),
    ("disjunction", "//person[age = 42 or age = 43]"),
    ("attribute equality", '//item[@featured = "y"]'),
    ("nested predicate path", "//open_auction[.//increase > 100]"),
]

_DBLP = [
    ("publications of a year", "//article[year = 1999]"),
    ("year range", "//inproceedings[year >= 2000 and year < 2005]"),
    ("journal equality", '//article[journal = "EDBT"]'),
    ("volume lookup", "//article[volume = 12]"),
    ("author equality", '//article[author = "Towel Guide"]'),
]

_PSD = [
    ("sequence length", "//protein[length = 60]"),
    ("length range", "//protein[length > 80]"),
    ("reference year", "//reference[year = 1999]"),
    ("organism equality", '//protein[organism = "Vogon Poetry"]'),
]

_WIKI = [
    ("title equality", '//doc[title = "Wikipedia: vogon poetry"]'),
    ("pageid lookup", "//doc[pageid = 7]"),
    ("anchor text", '//sublink[anchor = "deep thought"]'),
]

QUERY_SETS: dict[str, list[tuple[str, str]]] = {
    "XMark1": _XMARK,
    "XMark2": _XMARK,
    "XMark4": _XMARK,
    "XMark8": _XMARK,
    "DBLP": _DBLP,
    "PSD": _PSD,
    "Wiki": _WIKI,
    "EPAGeo": [
        ("latitude range", "//facility[latitude > 40]"),
        ("state attribute", '//facility[@state = "AZ"]'),
        ("city equality", '//facility[city = "GALAXY"]'),
    ],
}


def queries_for(dataset_name: str) -> list[tuple[str, str]]:
    """(description, query) pairs for a catalog dataset."""
    try:
        return QUERY_SETS[dataset_name]
    except KeyError:
        raise KeyError(
            f"no query set for {dataset_name!r}; known: {sorted(QUERY_SETS)}"
        ) from None
