"""Dataset statistics — the quantities of the paper's Table 1.

Definitions (documented deviations from the paper where its own
definitions are not fully recoverable):

* **total nodes** — all rows in the pre plane: document, element,
  text, attribute, comment and PI nodes.
* **text nodes** — value-bearing leaves: text nodes *plus attribute
  nodes*.  MonetDB/XQuery stores attribute values in the same value
  heap as text content, and the paper's reported text fractions (64%
  for XMark) exceed the structural maximum for pure text nodes
  (text siblings must be separated by elements, so text ≤ ~2·elements),
  which indicates its count includes attribute values.
* **double values** — value-bearing leaves whose content is a
  *potential valid* double lexical representation (the FSM does not
  reject it).
* **non-leaf** — element nodes with at least one element child whose
  *combined* value is potential-valid and contains at least one digit
  (the paper's "intermediate nodes that cast to a specific XML type";
  the digit requirement keeps empty/whitespace elements out).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fsm import get_plugin
from ..xmldb.document import ATTR, ELEM, TEXT, Document

__all__ = ["DatasetStats", "collect_stats"]


@dataclass(frozen=True)
class DatasetStats:
    """One row of Table 1."""

    name: str
    size_bytes: int
    total_nodes: int
    text_nodes: int
    double_values: int
    non_leaf_doubles: int

    @property
    def size_mb(self) -> float:
        return self.size_bytes / (1024 * 1024)

    @property
    def text_fraction(self) -> float:
        return self.text_nodes / self.total_nodes if self.total_nodes else 0.0

    @property
    def double_fraction(self) -> float:
        return self.double_values / self.total_nodes if self.total_nodes else 0.0

    def row(self) -> str:
        """Format as a Table 1 row."""
        return (
            f"{self.name:<10} {self.size_mb:8.1f} {self.total_nodes:>12,} "
            f"{self.text_nodes:>12,} {self.text_fraction:5.0%} "
            f"{self.double_values:>10,} {self.double_fraction:5.1%} "
            f"{self.non_leaf_doubles:>8,}"
        )

    @staticmethod
    def header() -> str:
        return (
            f"{'Data':<10} {'Size MB':>8} {'Total Nodes':>12} "
            f"{'Text Nodes':>12} {'%':>5} {'Doubles':>10} {'%':>5} "
            f"{'non-leaf':>8}"
        )


def collect_stats(doc: Document, name: str | None = None) -> DatasetStats:
    """Compute the Table 1 row for a shredded document."""
    double = get_plugin("double")
    total = len(doc)
    text_nodes = 0
    double_values = 0
    non_leaf = 0
    # Per-node double fragments, folded bottom-up over the pre plane
    # (reverse pre order: children precede parents).
    fragments = [None] * total
    kinds = doc.kind
    for pre in range(total - 1, -1, -1):
        kind = kinds[pre]
        if kind in (TEXT, ATTR):
            text_nodes += 1
            fragment = double.fragment_of_text(doc.text_of(pre))
            fragments[pre] = fragment
            if not fragment.is_rejected:
                double_values += 1
        elif kind == ELEM or kind == 0:  # element or document
            fragment = double.empty_fragment
            has_element_child = False
            for child in doc.children(pre):
                child_kind = kinds[child]
                if child_kind == ELEM:
                    has_element_child = True
                if child_kind in (ELEM, TEXT):
                    child_fragment = fragments[child]
                    fragment = double.combine(fragment, child_fragment)
            fragments[pre] = fragment
            if (
                kind == ELEM
                and has_element_child
                and not fragment.is_rejected
                and any(
                    cid in double.run_class_ids
                    for cid, _p, _l in fragment.tokens
                )
            ):
                non_leaf += 1
        else:
            fragments[pre] = double.empty_fragment
    return DatasetStats(
        name=name or doc.name,
        size_bytes=doc.source_bytes,
        total_nodes=total,
        text_nodes=text_nodes,
        double_values=double_values,
        non_leaf_doubles=non_leaf,
    )
