"""The eight-dataset catalog of the paper's evaluation (Table 1).

Each entry pairs a generator with the paper's reported statistics so
every benchmark can print *paper vs. measured* side by side.  Scales
are relative: ``scale=1.0`` produces roughly 1/500 of the paper's node
counts (the paper's corpora are 4.7–95 M nodes; pure Python asks for a
smaller default).  All fractions — which the experiments' shapes
depend on — are scale-invariant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from .dblp import generate_dblp
from .epageo import generate_epageo
from .psd import generate_psd
from .wiki import generate_wiki
from .xmark import generate_xmark

__all__ = ["Dataset", "DATASETS", "dataset", "bench_scale"]


@dataclass(frozen=True)
class Dataset:
    """One evaluation dataset and its paper-reported Table 1 row."""

    name: str
    generate: Callable[[float], str]
    paper_size_mb: int
    paper_total_nodes: int
    paper_text_pct: int
    paper_double_pct: float
    paper_non_leaf: int

    def build(self, scale: float = 1.0) -> str:
        """Generate the serialized document at the given scale."""
        return self.generate(scale)


DATASETS: dict[str, Dataset] = {
    d.name: d
    for d in (
        Dataset("XMark1", lambda s: generate_xmark(s * 1, seed=11),
                112, 4_690_640, 64, 8.0, 0),
        Dataset("XMark2", lambda s: generate_xmark(s * 2, seed=12),
                224, 9_394_467, 64, 8.0, 0),
        Dataset("XMark4", lambda s: generate_xmark(s * 4, seed=14),
                448, 18_827_157, 64, 8.0, 0),
        Dataset("XMark8", lambda s: generate_xmark(s * 8, seed=18),
                896, 37_642_301, 64, 8.0, 0),
        Dataset("EPAGeo", lambda s: generate_epageo(s, seed=21),
                170, 6_558_707, 66, 7.0, 0),
        Dataset("DBLP", lambda s: generate_dblp(s, seed=31),
                474, 34_799_707, 66, 10.0, 21),
        Dataset("PSD", lambda s: generate_psd(s, seed=41),
                685, 58_445_809, 63, 4.0, 902),
        Dataset("Wiki", lambda s: generate_wiki(s, seed=51),
                2024, 94_672_619, 56, 0.1, 0),
    )
}


def dataset(name: str) -> Dataset:
    """Look up a dataset by its Table 1 name."""
    try:
        return DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


def bench_scale(default: float = 0.12) -> float:
    """The benchmark scale knob (env ``REPRO_BENCH_SCALE``).

    At the default 0.12 the eight datasets total ~65k nodes — a
    laptop-friendly pure-Python budget; raise it to stress the curves.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", default))
