"""Random update workloads (the paper's Figure 10 methodology).

"The update queries were created by first defining the number of text
nodes whose values should be updated, and then randomly picking the
specified number of the text nodes for each document in the database."
"""

from __future__ import annotations

import random

from ..xmldb.document import TEXT, Document
from .words import double_text, sentence

__all__ = ["random_text_updates", "text_nids"]


def text_nids(doc: Document) -> list[int]:
    """All text-node nids of a document, in document order."""
    return [
        doc.nid[pre] for pre in range(len(doc)) if doc.kind[pre] == TEXT
    ]


def random_text_updates(
    doc: Document,
    count: int,
    rng: random.Random | None = None,
    numeric_share: float = 0.25,
) -> list[tuple[int, str]]:
    """Pick ``count`` random text nodes and fresh values for them.

    Sampling is without replacement while ``count`` fits the document,
    with replacement beyond that (matching the paper's workloads that
    update up to 10^6 nodes).  New values are a mix of sentences and
    numeric strings so both the string and the double index see churn.
    """
    rng = rng or random.Random(0)
    population = text_nids(doc)
    if not population:
        raise ValueError(f"document {doc.name!r} has no text nodes")
    if count <= len(population):
        chosen = rng.sample(population, count)
    else:
        chosen = [rng.choice(population) for _ in range(count)]
    updates = []
    for nid in chosen:
        if rng.random() < numeric_share:
            updates.append((nid, double_text(rng)))
        else:
            updates.append((nid, sentence(rng, rng.randrange(1, 5))))
    return updates
