"""Clients for the :mod:`repro.server` wire protocol.

Two flavours over the same length-prefixed JSON frames
(:mod:`repro.wire`):

* :class:`Client` — a blocking, one-request-at-a-time client for
  tests, scripts and thread-per-connection drivers.  Also supports
  explicit pipelining (:meth:`Client.send` / :meth:`Client.receive`)
  when the caller wants several requests in flight on one connection.
* :class:`AsyncClient` — an asyncio client whose ``call`` coroutine
  may be awaited concurrently from many tasks; requests are pipelined
  on one connection and responses are matched by request id.  Used by
  ``repro.bench.serve`` to drive hundreds of connections from one
  event loop.

Failures come back as :class:`ClientError` carrying the server's
stable error code (``busy``, ``view_invalid``, ...); ``busy``
rejections include the server's ``retry_after_ms`` hint, which
:meth:`Client.update_text`'s optional retry loop honours.
"""

from __future__ import annotations

import asyncio
import base64
import json
import socket
import time
from typing import Any

from . import wire
from .errors import ReproError

__all__ = ["Client", "AsyncClient", "ClientError"]


class ClientError(ReproError):
    """A server-reported failure (the response's error code/message)."""

    def __init__(self, code: str, message: str, response: dict):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.response = response

    @property
    def retry_after_ms(self) -> float | None:
        value = self.response.get("retry_after_ms")
        return float(value) if value is not None else None


def _unwrap(response: dict) -> dict:
    if response.get("ok"):
        return response.get("result", {})
    raise ClientError(
        response.get("error", "unknown"),
        response.get("message", ""),
        response,
    )


class Client:
    """Blocking client: one socket, explicit request/response calls."""

    def __init__(self, host: str, port: int, timeout: float = 60.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 1
        self._pending: dict[int, dict] = {}

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- pipelined primitives -------------------------------------------

    def send(self, op: str, **params: Any) -> int:
        """Fire one request without waiting; returns its id."""
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        message.update(params)
        wire.write_frame(self._sock, message)
        return request_id

    def receive(self, request_id: int) -> dict:
        """The response for ``request_id`` (drains out-of-order ones)."""
        while request_id not in self._pending:
            response = wire.read_frame(self._sock)
            if response is None:
                raise ClientError(
                    "disconnected", "server closed the connection",
                    {},
                )
            self._pending[response.get("id")] = response
        return _unwrap(self._pending.pop(request_id))

    def call(self, op: str, **params: Any) -> dict:
        return self.receive(self.send(op, **params))

    # -- convenience API -------------------------------------------------

    def hello(self) -> dict:
        return self.call("hello")

    def handshake(self, features: tuple[str, ...] | list[str] = ()) -> dict:
        """Version-checked ``hello``: announce our protocol version and
        the ``features`` we require.  An incompatible server answers
        with the stable ``unsupported_version`` code (surfaced as a
        :class:`ClientError`); a *newer* server that still accepted us
        is rejected client-side the same way."""
        result = self.call("hello", **wire.hello_request(features))
        if result.get("protocol") != wire.PROTOCOL_VERSION:
            raise ClientError(
                wire.E_UNSUPPORTED_VERSION,
                f"server speaks protocol {result.get('protocol')!r}, "
                f"client speaks {wire.PROTOCOL_VERSION}",
                {"result": result},
            )
        return result

    def ping(self) -> dict:
        return self.call("ping")

    def query(self, xpath: str, document: str | None = None,
              use_indexes: bool | str = True,
              view: int | None = None,
              as_of: int | None = None) -> list[int]:
        params: dict[str, Any] = {"xpath": xpath, "use_indexes": use_indexes}
        if document is not None:
            params["document"] = document
        if view is not None:
            params["view"] = view
        if as_of is not None:
            params["as_of"] = as_of
        return self.call("query", **params)["nids"]

    def query_rows(self, xpath: str, document: str | None = None,
                   use_indexes: bool | str = True,
                   view: int | None = None,
                   as_of: int | None = None) -> list[list]:
        """Query returning ``[document, pre, nid]`` rows (the
        placement-independent shape the shard coordinator merges)."""
        params: dict[str, Any] = {"xpath": xpath, "use_indexes": use_indexes,
                                  "rows": True}
        if document is not None:
            params["document"] = document
        if view is not None:
            params["view"] = view
        if as_of is not None:
            params["as_of"] = as_of
        return self.call("query", **params)["rows"]

    def epochs(self) -> dict:
        """The server's retained time-travel window: ``epochs`` (oldest
        first) and ``current`` (docs/replication.md)."""
        return self.call("epochs")

    def lookup(self, mode: str, **params: Any) -> list[int]:
        return self.call("lookup", mode=mode, **params)["nids"]

    def explain(self, xpath: str, execute: bool = False) -> dict:
        return self.call("explain", xpath=xpath, execute=execute)

    def update_text(self, nid: int, text: str,
                    busy_retries: int = 0) -> dict:
        """Update one text node; optionally retry ``busy`` rejections
        after the server's ``retry_after_ms`` hint."""
        attempts = 0
        while True:
            try:
                return self.call("update", action="update_text",
                                 nid=nid, text=text)
            except ClientError as exc:
                if exc.code != wire.E_BUSY or attempts >= busy_retries:
                    raise
                attempts += 1
                time.sleep((exc.retry_after_ms or 25.0) / 1000.0)

    def insert_xml(self, nid: int, fragment: str,
                   before: int | None = None) -> dict:
        params: dict[str, Any] = {"action": "insert_xml", "nid": nid,
                                  "fragment": fragment}
        if before is not None:
            params["before"] = before
        return self.call("update", **params)

    def delete_subtree(self, nid: int) -> dict:
        return self.call("update", action="delete_subtree", nid=nid)

    def open_view(self) -> dict:
        """Pin a session view; returns ``{"view": token, "epoch": E}``."""
        return self.call("view.open")

    def close_view(self, view: int) -> dict:
        return self.call("view.close", view=view)

    def metrics(self) -> dict:
        return self.call("metrics")["metrics"]

    def checkpoint(self) -> dict:
        return self.call("checkpoint")

    # -- elasticity (shard migration; docs/sharding.md) ------------------

    def set_placement(self, version: int) -> dict:
        """Tell the shard about a newer cluster layout version."""
        return self.call("placement", version=version)

    def document_stats(self) -> dict:
        """Per-document ``{nodes, bytes}`` stats (rebalance inputs)."""
        return self.call("doc.stats")["documents"]

    def export_document(self, name: str,
                        chunk_bytes: int = 4 << 20) -> bytes:
        """Fetch one document's snapshot encoding in chunks."""
        payload = bytearray()
        offset = 0
        while True:
            result = self.call("doc.export", name=name, offset=offset,
                               length=chunk_bytes)
            payload.extend(base64.b64decode(result["data"]))
            offset = len(payload)
            if result["eof"]:
                return bytes(payload)

    def import_document(self, name: str, payload: bytes,
                        chunk_bytes: int = 4 << 20) -> dict:
        """Ship a document's snapshot encoding in chunks; the final
        (``eof``) chunk adopts and indexes it on the receiving shard."""
        offset = 0
        result: dict = {}
        while True:
            chunk = payload[offset:offset + chunk_bytes]
            eof = offset + len(chunk) >= len(payload)
            result = self.call(
                "doc.import", name=name, offset=offset,
                data=base64.b64encode(chunk).decode("ascii"), eof=eof,
            )
            offset += len(chunk)
            if eof:
                return result


class AsyncClient:
    """Pipelined asyncio client: concurrent ``call`` awaiters share
    one connection; responses are matched to callers by request id."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._next_id = 1
        self._waiters: dict[int, asyncio.Future] = {}
        self._reader_task: asyncio.Task | None = None

    async def connect(self, host: str, port: int) -> "AsyncClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        self._reader_task = asyncio.ensure_future(self._read_loop())
        return self

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_waiters(ClientError(
            "disconnected", "connection closed", {}))

    def _fail_waiters(self, exc: Exception) -> None:
        for future in self._waiters.values():
            if not future.done():
                future.set_exception(exc)
        self._waiters.clear()

    async def _read_loop(self) -> None:
        try:
            while True:
                header = await self._reader.readexactly(4)
                length = wire.decode_header(header)
                body = await self._reader.readexactly(length)
                response = json.loads(body)
                future = self._waiters.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_waiters(ClientError(
                "disconnected", f"connection lost: {exc}", {}))

    async def call(self, op: str, **params: Any) -> dict:
        request_id = self._next_id
        self._next_id += 1
        message = {"id": request_id, "op": op}
        message.update(params)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[request_id] = future
        self._writer.write(wire.encode_frame(message))
        await self._writer.drain()
        return _unwrap(await future)

    async def query(self, xpath: str, view: int | None = None,
                    use_indexes: bool | str = True) -> list[int]:
        params: dict[str, Any] = {"xpath": xpath, "use_indexes": use_indexes}
        if view is not None:
            params["view"] = view
        return (await self.call("query", **params))["nids"]

    async def update_text(self, nid: int, text: str,
                          busy_retries: int = 0) -> dict:
        attempts = 0
        while True:
            try:
                return await self.call("update", action="update_text",
                                       nid=nid, text=text)
            except ClientError as exc:
                if exc.code != wire.E_BUSY or attempts >= busy_retries:
                    raise
                attempts += 1
                await asyncio.sleep((exc.retry_after_ms or 25.0) / 1000.0)

    async def metrics(self) -> dict:
        return (await self.call("metrics"))["metrics"]
