"""Counters and timer histograms with no external dependencies.

Design goals, in order:

* **cheap on the hot path** — incrementing a counter is one attribute
  add; observing a timer is a few arithmetic operations (no locks on
  the record path: CPython's GIL makes the individual operations safe
  enough for monitoring data, where a lost increment under extreme
  contention is acceptable);
* **structured snapshots** — :meth:`MetricsRegistry.snapshot` returns
  plain dicts ready for JSON/CLI rendering;
* **log-scale latency resolution** — timer histograms bucket by powers
  of two microseconds, so one histogram covers sub-millisecond index
  lookups and multi-second bulk builds alike.
"""

from __future__ import annotations

import threading
import time

__all__ = ["Counter", "TimerHistogram", "ValueHistogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class _Timing:
    """Context manager recording one duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "TimerHistogram"):
        self._histogram = histogram

    def __enter__(self) -> "_Timing":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


#: Number of power-of-two microsecond buckets (covers 1 µs .. ~67 s).
_BUCKETS = 27


class TimerHistogram:
    """Latency histogram over power-of-two microsecond buckets.

    Bucket ``i`` counts observations whose whole-microsecond duration
    is in ``[2**(i-1) µs, 2**i µs)`` (the bit length of the value);
    bucket 0 holds sub-microsecond durations and the last bucket is
    open-ended.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.buckets = [0] * _BUCKETS

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.minimum:
            self.minimum = seconds
        if seconds > self.maximum:
            self.maximum = seconds
        micros = int(seconds * 1e6)
        index = micros.bit_length() if micros > 0 else 0
        if index >= _BUCKETS:
            index = _BUCKETS - 1
        self.buckets[index] += 1

    def time(self) -> _Timing:
        """``with timer.time(): ...`` records the block's duration."""
        return _Timing(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Structured summary; bucket labels are exclusive upper bounds."""
        filled = {
            f"<{2 ** i}us": count
            for i, count in enumerate(self.buckets)
            if count
        }
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": 0.0 if self.count == 0 else self.minimum,
            "max_s": self.maximum,
            "buckets": filled,
        }


class ValueHistogram:
    """Distribution of plain numeric observations (not durations).

    Same power-of-two bucketing as :class:`TimerHistogram`, but over
    the raw value: bucket ``i`` counts observations whose integer part
    has bit length ``i`` (``[2**(i-1), 2**i)``), bucket 0 holds values
    below 1, and the last bucket is open-ended.  Used for size-shaped
    metrics such as group-commit batch occupancy
    (``wal.group.batch_size``).
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = 0.0
        self.buckets = [0] * _BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        whole = int(value)
        index = whole.bit_length() if whole > 0 else 0
        if index >= _BUCKETS:
            index = _BUCKETS - 1
        self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """Structured summary; bucket labels are exclusive upper bounds."""
        filled = {
            f"<{2 ** i}": count
            for i, count in enumerate(self.buckets)
            if count
        }
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": 0.0 if self.count == 0 else self.minimum,
            "max": self.maximum,
            "buckets": filled,
        }


class MetricsRegistry:
    """A named collection of counters, timers and value histograms.

    Creation is locked (first use of a name races between threads);
    the record paths on the returned objects are lock-free.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, TimerHistogram] = {}
        self._histograms: dict[str, ValueHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter(name))
        return counter

    def timer(self, name: str) -> TimerHistogram:
        timer = self._timers.get(name)
        if timer is None:
            with self._lock:
                timer = self._timers.setdefault(name, TimerHistogram(name))
        return timer

    def histogram(self, name: str) -> ValueHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, ValueHistogram(name)
                )
        return histogram

    def snapshot(self) -> dict:
        """All metrics as plain dicts (JSON/CLI friendly)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "timers": {
                name: timer.snapshot()
                for name, timer in sorted(self._timers.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop all recorded values (keeps registered names)."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for name in list(self._timers):
                self._timers[name] = TimerHistogram(name)
            for name in list(self._histograms):
                self._histograms[name] = ValueHistogram(name)
