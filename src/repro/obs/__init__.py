"""Runtime observability: zero-dependency counters and timer histograms.

The metrics layer is threaded through the query executor, the index
manager's build/update paths and the write-ahead log.  Every
:class:`~repro.core.manager.IndexManager` owns one
:class:`MetricsRegistry`; :meth:`repro.database.Database.metrics`
exposes a structured snapshot, and the CLI ``stats`` subcommand prints
it.
"""

from .metrics import Counter, MetricsRegistry, TimerHistogram, ValueHistogram

__all__ = ["Counter", "MetricsRegistry", "TimerHistogram", "ValueHistogram"]
