"""Read replicas: snapshot restore, WAL tailing, promotion, serving.

A :class:`Follower` owns a directory and a live
:class:`~repro.shard.engine.ShardEngine` built from the primary's
shipped checkpoint snapshot.  Shipped WAL frames are applied through
the engine's **logged** update path — the follower writes its own WAL
and takes its own checkpoints, so a promoted follower (or one
restarted after a crash) recovers exactly like any stand-alone engine.
The replication cursor is held in memory only and always in the
*primary's* terms; a follower restart simply resyncs from the latest
snapshot, which sidesteps every cursor/state atomicity problem.

Replication is asynchronous: the primary acknowledges writers without
waiting for followers, so a promoted follower serves the *shipped
prefix* — bounded staleness equal to the replication lag, never a torn
or reordered state (frames apply in log order).  The dead primary's
directory still holds every acknowledged record; restarting an engine
on it recovers the full set via ordinary WAL replay.
"""

from __future__ import annotations

import base64
import os
import threading
import time

from ..client import Client, ClientError
from ..shard.engine import ShardEngine
from ..storage.wal import decode_frames
from . import primary as _primary

__all__ = ["Follower", "FollowerServer", "ReplicationError"]


class ReplicationError(Exception):
    """Replication stream or sync failure (after internal retries)."""


class Follower:
    """Tail one primary into a local engine.

    Args:
        path: Local directory for the restored snapshot + own WAL.
        primary: ``(host, port)`` of the primary's server.
        poll_interval: Tail-thread sleep between ``repl.wal`` polls.
        retain_epochs: Time-travel window on the local engine
            (``repro-xml query --as-of`` against this follower).
        engine_kwargs: Extra :class:`ShardEngine` arguments.
    """

    def __init__(self, path: str, primary: tuple[str, int],
                 poll_interval: float = 0.02, retain_epochs: int = 0,
                 **engine_kwargs):
        self.path = path
        self.primary_addr = primary
        self.poll_interval = poll_interval
        self._retain = retain_epochs
        self._engine_kwargs = dict(engine_kwargs)
        self._engine_kwargs.setdefault("concurrent", True)
        # The follower replays one stream; auto-checkpointing stays
        # available but group commit buys nothing for a single applier.
        self._engine_kwargs.setdefault("group_commit", False)
        self.engine: ShardEngine | None = None
        self.promoted = False
        #: Replication cursor, in the primary's terms.
        self._cursor_epoch = 0
        self._cursor_offset = 0
        self._basis_epoch = 0
        self._bulk_stamp = -1
        self.applied_records = 0
        self.resyncs = 0
        self._client: Client | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()  # serializes sync/poll/promote
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Snapshot restore
    # ------------------------------------------------------------------

    def _connect(self) -> Client:
        if self._client is None:
            host, port = self.primary_addr
            self._client = Client(host, port)
        return self._client

    def _disconnect(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except OSError:
                pass
            self._client = None

    def _fetch_file(self, client: Client, name: str) -> bytes:
        parts: list[bytes] = []
        offset = 0
        while True:
            chunk = client.call("repl.fetch", name=name, offset=offset)
            data = base64.b64decode(chunk["data"])
            parts.append(data)
            offset += len(data)
            if chunk["eof"]:
                return b"".join(parts)

    def sync(self, attempts: int = 5) -> None:
        """Full resync: restore the primary's committed snapshot and
        reopen the local engine on it.

        A checkpoint on the primary GCs the files of superseded
        epochs, so a transfer can lose a file mid-fetch; the whole
        fetch retries against the then-current manifest (bounded by
        ``attempts``).
        """
        with self._lock:
            self._sync_locked(attempts)

    def _sync_locked(self, attempts: int) -> None:
        client = self._connect()
        failure: BaseException | None = None
        for _attempt in range(attempts):
            info = client.call("repl.manifest")
            try:
                blobs = {
                    name: self._fetch_file(client, name)
                    for name in info["files"]
                }
            except (ClientError, OSError) as exc:
                failure = exc
                continue
            # The snapshot is consistent only if no checkpoint landed
            # mid-transfer; re-read the epoch to be sure.
            if client.call("repl.manifest")["epoch"] != info["epoch"]:
                failure = ReplicationError("checkpoint raced the fetch")
                continue
            self._install(info, blobs)
            self.resyncs += 1
            return
        raise ReplicationError(
            f"snapshot sync failed after {attempts} attempts"
        ) from failure

    def _install(self, info: dict, blobs: dict[str, bytes]) -> None:
        # Keep ``self.engine`` pointing at the old (closed, but still
        # readable in memory) engine until the replacement is built:
        # unsynchronized readers polling ``follower.engine`` across a
        # resync see a stale snapshot — ordinary replication staleness
        # — never an AttributeError on a transient None.
        if self.engine is not None:
            self.engine.close(checkpoint=False)
        os.makedirs(self.path, exist_ok=True)
        # Drop every stale artifact (old snapshot files AND the local
        # WAL — its records are already folded into the fetched
        # snapshot or superseded by it).
        for entry in os.listdir(self.path):
            full = os.path.join(self.path, entry)
            if os.path.isfile(full):
                os.unlink(full)
        for name, blob in blobs.items():
            with open(os.path.join(self.path, name), "wb") as fh:
                fh.write(blob)
        self.engine = ShardEngine(
            self.path, retain_epochs=self._retain, **self._engine_kwargs
        )
        self._basis_epoch = info["epoch"]
        self._cursor_epoch = info["wal_epoch"]
        self._cursor_offset = info["wal_offset"]
        self._bulk_stamp = info["bulk_stamp"]

    # ------------------------------------------------------------------
    # Tailing
    # ------------------------------------------------------------------

    def poll_once(self) -> int:
        """One ``repl.wal`` round trip; returns records applied."""
        with self._lock:
            if self.promoted:
                return 0
            return self._poll_locked()

    def _poll_locked(self) -> int:
        client = self._connect()
        reply = client.call(
            "repl.wal",
            epoch=self._cursor_epoch,
            offset=self._cursor_offset,
        )
        if reply["bulk_stamp"] != self._bulk_stamp:
            # A load/unload happened: invisible to the frame stream by
            # design, so the snapshot is the only honest source.
            self._sync_locked(attempts=5)
            return 0
        status = reply["status"]
        if status == "retry":
            return 0
        if status == "reset":
            self._cursor_epoch = reply["epoch"]
            self._cursor_offset = reply["next"]
            return 0
        if status == "resync":
            self._sync_locked(attempts=5)
            return 0
        blob = base64.b64decode(reply["data"])
        applied = 0
        for record in decode_frames(blob):
            if record.epoch < self._basis_epoch:
                # Folded into the snapshot we restored from.
                continue
            self.engine.apply_logged(record)
            applied += 1
        self._cursor_offset = reply["next"]
        self.applied_records += applied
        return applied

    def start(self) -> "Follower":
        """Initial sync + background tail thread."""
        if self.engine is None:
            self.sync()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._tail_loop, name="repro-repl-tail", daemon=True
        )
        self._thread.start()
        return self

    def _tail_loop(self) -> None:
        while not self._stop.is_set():
            try:
                applied = self.poll_once()
            except (ClientError, ReplicationError, OSError) as exc:
                # Primary gone (or mid-restart): remember why, drop the
                # dead socket and keep trying — promotion or a revived
                # primary both resolve this.
                self.last_error = exc
                self._disconnect()
                applied = 0
            if self.promoted:
                return
            if not applied:
                self._stop.wait(self.poll_interval)

    def stop_tailing(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        self._disconnect()

    def promote(self) -> ShardEngine:
        """Stop tailing and open the engine for local writes.

        The follower's own WAL and checkpoints already cover every
        applied record, so no recovery work happens here — the engine
        simply stops being read-only at the serving layer.
        """
        with self._lock:
            self.promoted = True
        self.stop_tailing()
        return self.engine

    def close(self) -> None:
        self.stop_tailing()
        if self.engine is not None:
            self.engine.close()
            self.engine = None


class FollowerServer:
    """Serve a follower over TCP: local reads, proxied writes.

    Wraps a :class:`~repro.server.ServerThread` over the follower's
    engine — reads (including pinned views and ``as_of``) run against
    the local snapshot-isolated engine exactly as on a primary.  The
    update-shaped ops (``update``, ``load``, ``unload``,
    ``checkpoint``) are intercepted: until promotion they are
    forwarded to the primary over one lock-guarded client connection
    (the primary's reply, including error codes, passes through
    verbatim); after :meth:`Follower.promote` they execute locally.
    """

    def __init__(self, follower: Follower, **server_kwargs):
        from ..server import DatabaseServer, RequestError

        self.follower = follower
        self._proxy_lock = threading.Lock()
        self._proxy_client: Client | None = None
        outer = self

        class _FollowerFacingServer(DatabaseServer):
            async def _proxied(self, op, message):
                """Forward one update-shaped op to the primary; None
                means "run it locally" (follower was promoted)."""
                if outer.follower.promoted:
                    return None
                import asyncio

                params = {
                    k: v for k, v in message.items()
                    if k not in ("id", "op")
                }
                loop = asyncio.get_running_loop()
                try:
                    return await loop.run_in_executor(
                        self._write_pool,
                        lambda: outer._forward(op, params),
                    )
                except ClientError as exc:
                    extra = {}
                    if exc.retry_after_ms is not None:
                        extra["retry_after_ms"] = exc.retry_after_ms
                    raise RequestError(
                        exc.code, f"primary: {exc.message}", **extra
                    ) from exc
                except (ConnectionError, OSError) as exc:
                    raise RequestError(
                        "primary_unreachable",
                        f"cannot reach primary: {exc}",
                    ) from exc

            async def _op_update(self, session, message):
                proxied = await self._proxied("update", message)
                if proxied is None:
                    proxied = await super()._op_update(session, message)
                return proxied

            async def _op_load(self, session, message):
                proxied = await self._proxied("load", message)
                if proxied is None:
                    proxied = await super()._op_load(session, message)
                return proxied

            async def _op_unload(self, session, message):
                proxied = await self._proxied("unload", message)
                if proxied is None:
                    proxied = await super()._op_unload(session, message)
                return proxied

            async def _op_checkpoint(self, session, message):
                proxied = await self._proxied("checkpoint", message)
                if proxied is None:
                    proxied = await super()._op_checkpoint(session, message)
                return proxied

            # Dispatch goes through the class-level table, not method
            # resolution — rebind the intercepted ops.
            _OPS = dict(DatabaseServer._OPS)
            _OPS["update"] = _op_update
            _OPS["load"] = _op_load
            _OPS["unload"] = _op_unload
            _OPS["checkpoint"] = _op_checkpoint

        self._server_cls = _FollowerFacingServer
        self._server_thread = None
        self._server_kwargs = server_kwargs

    def _forward(self, op: str, params: dict) -> dict:
        with self._proxy_lock:
            host, port = self.follower.primary_addr
            if self._proxy_client is None:
                self._proxy_client = Client(host, port)
            try:
                return self._proxy_client.call(op, **params)
            except (ConnectionError, OSError):
                # One reconnect attempt: the primary may have restarted.
                try:
                    self._proxy_client.close()
                except OSError:
                    pass
                self._proxy_client = Client(host, port)
                return self._proxy_client.call(op, **params)

    def start(self) -> tuple[str, int]:
        from ..server import ServerThread

        if self.follower.engine is None:
            raise ReplicationError(
                "follower has no engine; run Follower.start()/sync() first"
            )
        self._server_thread = ServerThread(
            self.follower.engine, server_cls=self._server_cls,
            **self._server_kwargs,
        )
        return self._server_thread.start()

    def stop(self, timeout: float = 60.0) -> None:
        if self._server_thread is not None:
            self._server_thread.stop(timeout=timeout)
            self._server_thread = None
        with self._proxy_lock:
            if self._proxy_client is not None:
                try:
                    self._proxy_client.close()
                except OSError:
                    pass
                self._proxy_client = None
