"""Client-side read fan-out over a primary and its followers.

:class:`ReplicaSet` is the deployment shape the replication tier
exists for: one writable primary, N followers serving snapshot-
isolated reads.  Reads round-robin across the follower pool (the
primary joins the pool only when it is the sole member); updates
always go to the primary.  A follower that fails a read is retried on
the next member and quarantined for the rest of this process's
rotation — crude but honest fail-away, measured by
``repro.bench.repl``.

Reads against followers are *eventually consistent*: a follower
answers at its last applied epoch, which trails the primary by the
replication lag.  Sessions that need read-your-writes pin the primary
(``primary_reads=True``) instead.
"""

from __future__ import annotations

import itertools
import threading

from ..client import Client, ClientError

__all__ = ["ReplicaSet"]


class ReplicaSet:
    """Route queries over ``[primary] + followers`` client connections.

    Args:
        primary: ``(host, port)`` of the writable primary.
        followers: Addresses of follower servers (may be empty — the
            set then degenerates to a plain primary connection).
        primary_reads: Route reads to the primary too (read-your-writes
            at the cost of scale-out).
    """

    def __init__(self, primary: tuple[str, int],
                 followers: list[tuple[str, int]] = (),
                 primary_reads: bool = False):
        self.primary_addr = tuple(primary)
        self.follower_addrs = [tuple(addr) for addr in followers]
        self._primary = Client(*self.primary_addr)
        self._followers = [Client(*addr) for addr in self.follower_addrs]
        self._dead: set[int] = set()
        self._lock = threading.Lock()
        read_pool = self._followers if (self._followers
                                        and not primary_reads) else []
        self._rotation = itertools.cycle(range(len(read_pool))) \
            if read_pool else None
        self._read_pool = read_pool

    # -- reads -----------------------------------------------------------

    def _read_client(self) -> Client:
        if self._rotation is None:
            return self._primary
        with self._lock:
            for _ in range(len(self._read_pool)):
                idx = next(self._rotation)
                if idx not in self._dead:
                    return self._read_pool[idx]
        return self._primary  # every follower quarantined

    def _quarantine(self, client: Client) -> None:
        with self._lock:
            for idx, member in enumerate(self._read_pool):
                if member is client:
                    self._dead.add(idx)

    def _read(self, fn):
        attempts = 1 + len(self._read_pool)
        last: Exception | None = None
        for _ in range(attempts):
            client = self._read_client()
            try:
                return fn(client)
            except (ConnectionError, OSError, ClientError) as exc:
                if isinstance(exc, ClientError) and exc.code not in (
                    "disconnected", "shutting_down",
                ):
                    raise  # a real answer (bad query, missing epoch...)
                last = exc
                if client is not self._primary:
                    self._quarantine(client)
                    continue
                raise
        raise last  # pragma: no cover - loop always returns or raises

    def query(self, xpath: str, **kwargs) -> list[int]:
        return self._read(lambda c: c.query(xpath, **kwargs))

    def query_rows(self, xpath: str, **kwargs) -> list[list]:
        return self._read(lambda c: c.query_rows(xpath, **kwargs))

    def epochs(self) -> dict:
        return self._read(lambda c: c.epochs())

    # -- writes (primary only) -------------------------------------------

    def update_text(self, nid: int, text: str, **kwargs) -> dict:
        return self._primary.update_text(nid, text, **kwargs)

    def load(self, name: str, xml: str) -> dict:
        return self._primary.call("load", name=name, xml=xml)

    def checkpoint(self) -> dict:
        return self._primary.checkpoint()

    def close(self) -> None:
        for client in [self._primary, *self._followers]:
            try:
                client.close()
            except OSError:
                pass
