"""Log-shipping replication: primary → follower over the wire protocol.

The CRC-framed, epoch-stamped WAL (docs/durability.md) is already a
replication stream; this package ships it:

* :mod:`repro.repl.primary` — stateless server-side handlers behind
  the ``repl.manifest`` / ``repl.fetch`` / ``repl.wal`` ops: expose
  the committed checkpoint snapshot for initial sync and serve
  complete WAL frames from a byte cursor for tailing.
* :mod:`repro.repl.follower` — :class:`Follower` restores the
  snapshot into its own directory, replays shipped frames through the
  engine's *logged* update path (so promotion recovers via ordinary
  WAL replay) and keeps tailing on a poll thread;
  :class:`FollowerServer` serves snapshot-isolated reads locally and
  proxies updates to the primary until :meth:`Follower.promote`.
* :mod:`repro.repl.fanout` — :class:`ReplicaSet`, the client-side
  read scale-out: reads round-robin over followers, writes go to the
  primary.

``docs/replication.md`` is the protocol and semantics spec;
``repro.bench.repl`` measures the read-scale-out and lag claims.
"""

from .fanout import ReplicaSet
from .follower import Follower, FollowerServer

__all__ = ["Follower", "FollowerServer", "ReplicaSet"]
