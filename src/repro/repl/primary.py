"""Primary-side log shipping: snapshot manifests and WAL frame serving.

These are the engine-level bodies of the server's ``repl.*`` ops.
They are stateless — the *follower* owns its replication cursor
``(wal_epoch, offset)`` and presents it on every ``repl.wal`` call, so
a primary restart loses nothing and any number of followers can tail
independently.

Catch-up protocol (docs/replication.md):

* ``manifest_info`` — the committed checkpoint snapshot: its epoch,
  the data files to fetch, and the WAL cursor the snapshot pairs with
  (the *basis*).  Initial sync and full resync both start here.
* ``fetch_chunk`` — ranged reads of one snapshot file, base64-framed.
  Checkpoints GC files of superseded epochs, so a fetcher re-validates
  the manifest epoch when a file disappears mid-transfer and retries.
* ``wal_chunk`` — the tail path.  A cursor at the live WAL's epoch
  gets complete frames from its offset.  A cursor equal to the log's
  recorded ``last_truncate`` mark had consumed *everything* the last
  checkpoint folded, so it fast-forwards ("reset") to the fresh log —
  no file transfer.  Anything else (lagged more than one checkpoint,
  primary restarted, bulk load/unload happened) answers "resync".

Bulk loads/unloads are checkpoint-sized events, not WAL records —
they are invisible to the frame stream.  The engine's ``bulk_stamp``
counts them; it rides in every response and a mismatch with the
follower's recorded stamp forces a resync instead of a silently
incomplete fast-forward.
"""

from __future__ import annotations

import base64
import os

from ..storage.persist import manifest_epoch, read_manifest
from ..storage.persist import _stem_of_data_file  # shared layout rule
from ..storage.wal import WAL_HEADER_SIZE, tail_frames

__all__ = [
    "MANIFEST_FILE",
    "manifest_info",
    "fetch_chunk",
    "wal_chunk",
    "DEFAULT_CHUNK",
]

MANIFEST_FILE = "MANIFEST.json"

#: Default ranged-read size; comfortably under MAX_FRAME_BYTES after
#: base64 expansion (4/3) plus JSON envelope.
DEFAULT_CHUNK = 4 << 20


def snapshot_files(path: str) -> list[str]:
    """Files of the *committed* snapshot: the manifest plus every data
    file its stems reference (stale epochs' files are GC'd and never
    listed)."""
    manifest = read_manifest(path)
    if manifest is None:
        raise FileNotFoundError(f"no committed snapshot in {path!r}")
    referenced = set(manifest.get("documents", {}).values())
    files = [MANIFEST_FILE]
    for entry in sorted(os.listdir(path)):
        stem = _stem_of_data_file(entry)
        if stem is not None and stem in referenced:
            files.append(entry)
    return files


def manifest_info(engine) -> dict:
    """The ``repl.manifest`` response body for ``engine``."""
    manifest = read_manifest(engine.path)
    files = snapshot_files(engine.path)
    sizes = {
        name: os.path.getsize(os.path.join(engine.path, name))
        for name in files
    }
    return {
        "epoch": manifest_epoch(manifest),
        "files": files,
        "sizes": sizes,
        # The WAL cursor this snapshot pairs with: replay the current
        # log from its start, skipping records below the snapshot epoch
        # (same rule as local recovery).
        "wal_epoch": engine._wal.epoch,
        "wal_offset": WAL_HEADER_SIZE,
        "bulk_stamp": engine.bulk_stamp,
    }


def fetch_chunk(engine, name: str, offset: int,
                length: int = DEFAULT_CHUNK) -> dict:
    """A ranged read of one snapshot file (``repl.fetch``)."""
    if os.sep in name or (os.altsep and os.altsep in name) or name == "..":
        raise ValueError(f"illegal snapshot file name {name!r}")
    if name != MANIFEST_FILE and _stem_of_data_file(name) is None:
        raise ValueError(f"not a snapshot file: {name!r}")
    path = os.path.join(engine.path, name)
    length = max(0, min(int(length), DEFAULT_CHUNK))
    with open(path, "rb") as fh:
        fh.seek(int(offset))
        data = fh.read(length)
        size = os.fstat(fh.fileno()).st_size
    return {
        "data": base64.b64encode(data).decode("ascii"),
        "eof": int(offset) + len(data) >= size,
        "size": size,
    }


def wal_chunk(engine, epoch: int, offset: int,
              max_bytes: int = DEFAULT_CHUNK) -> dict:
    """Serve WAL frames at a follower's cursor (``repl.wal``).

    Response ``status``:

    * ``"frames"`` — base64 frames from ``offset``; advance the cursor
      to ``next`` (possibly no progress when the primary is idle).
    * ``"reset"`` — the cursor had fully consumed the pre-checkpoint
      log; fast-forward to ``(epoch, next)`` on the fresh log.
    * ``"resync"`` — the cursor is unusable (lagged past one
      checkpoint, primary restarted, or a bulk load/unload happened);
      go back to ``repl.manifest``.

    Every response carries the primary's ``bulk_stamp``; the *caller*
    compares it with the stamp its snapshot basis recorded and treats
    any difference as ``resync`` (see module docstring).
    """
    wal = engine._wal
    max_bytes = max(0, min(int(max_bytes), DEFAULT_CHUNK))
    current = wal.epoch
    stamp = engine.bulk_stamp
    if epoch == current:
        blob, next_offset = tail_frames(wal.path, int(offset), max_bytes)
        if wal.epoch != current:
            # A checkpoint truncated the file mid-read: the bytes may
            # belong to the fresh log.  The epoch always changes across
            # a truncate, so this check is sufficient; the follower
            # simply retries at the same cursor.
            return {"status": "retry", "bulk_stamp": stamp}
        return {
            "status": "frames",
            "data": base64.b64encode(blob).decode("ascii"),
            "next": next_offset,
            "epoch": current,
            "bulk_stamp": stamp,
        }
    mark = wal.last_truncate
    if mark is not None and (int(epoch), int(offset)) == tuple(mark):
        return {
            "status": "reset",
            "epoch": current,
            "next": WAL_HEADER_SIZE,
            "bulk_stamp": stamp,
        }
    return {"status": "resync", "bulk_stamp": stamp}
