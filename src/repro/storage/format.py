"""Low-level binary file format helpers.

The on-disk format is deliberately simple and self-describing:

* every file starts with the magic ``RXDB`` and a format version;
* the body is a sequence of *sections*: a 4-byte ASCII tag, a little-
  endian ``u64`` payload length, and the payload bytes;
* integer columns are stored as little-endian numpy arrays; variable
  payloads use LEB128 varints.

No pickle anywhere: the files contain only data, never code.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator

import numpy as np

from ..errors import ReproError

__all__ = [
    "FormatError",
    "MAGIC",
    "VERSION",
    "SUPPORTED_VERSIONS",
    "write_header",
    "read_header",
    "write_section",
    "read_sections",
    "pack_array",
    "unpack_array",
    "encode_varint",
    "decode_varint",
]

MAGIC = b"RXDB"
VERSION = 1

#: Header versions this reader understands.  Version 1 is the original
#: section format (documents, indices, unframed WAL records); version 2
#: marks a CRC-framed WAL body.  Data files keep writing version 1 (the
#: section layout is unchanged); readers accept both.
SUPPORTED_VERSIONS = frozenset({1, 2})


class FormatError(ReproError):
    """Raised on malformed or incompatible files."""


def write_header(fh: BinaryIO, version: int = VERSION) -> None:
    fh.write(MAGIC)
    fh.write(struct.pack("<I", version))


def read_header(fh: BinaryIO) -> int:
    magic = fh.read(4)
    if magic != MAGIC:
        raise FormatError(f"bad magic {magic!r}; not a repro database file")
    raw = fh.read(4)
    if len(raw) != 4:
        raise FormatError("truncated header")
    (version,) = struct.unpack("<I", raw)
    if version not in SUPPORTED_VERSIONS:
        raise FormatError(f"unsupported format version {version}")
    return version


def write_section(fh: BinaryIO, tag: str, payload: bytes) -> None:
    encoded = tag.encode("ascii")
    if len(encoded) != 4:
        raise ValueError(f"section tag must be 4 ASCII bytes, got {tag!r}")
    fh.write(encoded)
    fh.write(struct.pack("<Q", len(payload)))
    fh.write(payload)


def read_sections(fh: BinaryIO) -> Iterator[tuple[str, bytes]]:
    """Yield (tag, payload) until end of file."""
    while True:
        tag = fh.read(4)
        if not tag:
            return
        if len(tag) != 4:
            raise FormatError("truncated section tag")
        raw_len = fh.read(8)
        if len(raw_len) != 8:
            raise FormatError("truncated section length")
        (length,) = struct.unpack("<Q", raw_len)
        payload = fh.read(length)
        if len(payload) != length:
            raise FormatError(f"truncated section {tag!r}")
        yield tag.decode("ascii"), payload


def pack_array(values, dtype: str) -> bytes:
    """Pack a Python sequence as a little-endian numpy array."""
    return np.asarray(values, dtype=np.dtype(dtype).newbyteorder("<")).tobytes()


def unpack_array(payload: bytes, dtype: str) -> list:
    """Inverse of :func:`pack_array` (returns a Python list)."""
    return np.frombuffer(payload, dtype=np.dtype(dtype).newbyteorder("<")).tolist()


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer of any size."""
    if value < 0:
        raise ValueError("varints are unsigned")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(payload: bytes, offset: int) -> tuple[int, int]:
    """Decode a varint at ``offset``; returns (value, next offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(payload):
            raise FormatError("truncated varint")
        byte = payload[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
