"""Write-ahead log for the persistent database facade.

Checkpoints (full :func:`~repro.storage.persist.save_manager` snapshots)
are expensive; the WAL makes individual updates durable between them.
Each record describes one logical update; recovery replays the log over
the last snapshot through the ordinary maintenance path, which is
deterministic (node-id allocation is a plain counter restored by the
snapshot, so replayed structural updates re-create identical nids).

Wire format (version 2, framed): the file carries the standard
``RXDB`` header with version 2, then a sequence of frames::

    u32 body length | u32 CRC32(body) | body

where the body is a varint **checkpoint epoch** followed by the record
payload — ``u8`` record type, then type-specific fields (varint
integers and varint-length-prefixed UTF-8 strings).  The length prefix
and checksum mean a torn or bit-flipped tail can never decode as a
valid shorter record; the epoch lets recovery skip records that a
committed snapshot already folded in (see ``docs/durability.md``).

Version-1 files (no frames, no epochs) still replay; their records
report epoch 0, which every snapshot epoch guard treats as
"not yet folded".
"""

from __future__ import annotations

import os
import struct
import sys
import zlib
from dataclasses import dataclass, replace
from typing import BinaryIO, Iterator

from . import faults
from .format import (
    FormatError,
    decode_varint,
    encode_varint,
    read_header,
    write_header,
)

__all__ = [
    "WalRecord",
    "ReplayStats",
    "TEXT_UPDATE",
    "INSERT_XML",
    "DELETE_SUBTREE",
    "INSERT_ATTRIBUTE",
    "DELETE_ATTRIBUTE",
    "RENAME",
    "WAL_VERSION",
    "WAL_HEADER_SIZE",
    "WriteAheadLog",
    "replay_records",
    "decode_frames",
    "tail_frames",
]

TEXT_UPDATE = 1
INSERT_XML = 2
DELETE_SUBTREE = 3
INSERT_ATTRIBUTE = 4
RENAME = 5
DELETE_ATTRIBUTE = 6

_KNOWN_TYPES = {
    TEXT_UPDATE,
    INSERT_XML,
    DELETE_SUBTREE,
    INSERT_ATTRIBUTE,
    RENAME,
    DELETE_ATTRIBUTE,
}

#: Header version marking a CRC-framed log body.
WAL_VERSION = 2

#: Bytes of the ``RXDB`` header that precede the first frame — the
#: start-of-stream offset a log shipper's cursor begins at.
WAL_HEADER_SIZE = 8

_FRAME = struct.Struct("<II")


@dataclass(frozen=True)
class WalRecord:
    """One logged update.  Field use varies by ``kind``:

    * TEXT_UPDATE:      nid, text
    * INSERT_XML:       nid (parent), text (fragment), extra (before_nid + 1, 0 = none)
    * DELETE_SUBTREE:   nid
    * INSERT_ATTRIBUTE: nid (owner), name, text (value)
    * RENAME:           nid, name
    * DELETE_ATTRIBUTE: nid (replay re-checks the attribute node kind;
      logs from before this record kind carry DELETE_SUBTREE instead and
      still replay)

    ``epoch`` is the checkpoint epoch the record was appended under
    (0 for records read back from a version-1 log).
    """

    kind: int
    nid: int
    text: str = ""
    name: str = ""
    extra: int = 0
    epoch: int = 0


@dataclass
class ReplayStats:
    """What :func:`replay_records` saw while scanning a log."""

    records: int = 0
    torn_tail: int = 0
    rejected_crc: int = 0
    format_version: int = WAL_VERSION


def _encode_string(value: str) -> bytes:
    data = value.encode("utf-8")
    return encode_varint(len(data)) + data


def _decode_string(payload: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(payload, offset)
    end = offset + length
    if end > len(payload):
        raise FormatError("truncated string")
    return payload[offset:end].decode("utf-8"), end


def encode_record(record: WalRecord) -> bytes:
    out = bytearray([record.kind])
    out += encode_varint(record.nid)
    out += _encode_string(record.text)
    out += _encode_string(record.name)
    out += encode_varint(record.extra)
    return bytes(out)


def decode_record(payload: bytes, offset: int) -> tuple[WalRecord, int]:
    kind = payload[offset]
    if kind not in _KNOWN_TYPES:
        raise FormatError(f"unknown WAL record type {kind}")
    offset += 1
    nid, offset = decode_varint(payload, offset)
    text, offset = _decode_string(payload, offset)
    name, offset = _decode_string(payload, offset)
    extra, offset = decode_varint(payload, offset)
    return WalRecord(kind, nid, text, name, extra), offset


def encode_frame(record: WalRecord, epoch: int) -> bytes:
    """Frame a record for a version-2 log."""
    body = encode_varint(epoch) + encode_record(record)
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


class WriteAheadLog:
    """Append-only log file.

    Args:
        path: Log file path (created framed when absent).
        sync: ``"none"`` (buffered), ``"flush"`` (flush per append) or
            ``"fsync"`` (flush + fsync per append).
        metrics: Optional :class:`repro.obs.MetricsRegistry`; appends
            and truncations are counted and append latency is timed.
        epoch: Checkpoint epoch stamped on appended records; updated by
            :meth:`truncate` after each checkpoint.

    ``needs_upgrade`` is true when the file on disk predates the framed
    format (or has an unreadable header); the owner should
    :meth:`truncate` after replaying it so new writes are framed.
    """

    def __init__(self, path: str, sync: str = "flush", metrics=None,
                 epoch: int = 0):
        if sync not in ("none", "flush", "fsync"):
            raise ValueError("sync must be 'none', 'flush' or 'fsync'")
        self.path = path
        self._sync = sync
        self._metrics = metrics
        self.epoch = epoch
        #: ``(epoch, final_size)`` of the previous log file at its last
        #: :meth:`truncate` — lets a log shipper prove a follower had
        #: consumed the old file completely before switching it to the
        #: fresh one (see ``repro.repl``).
        self.last_truncate: tuple[int, int] | None = None
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self.needs_upgrade = False
        if not fresh:
            try:
                with open(path, "rb") as fh:
                    self.needs_upgrade = read_header(fh) != WAL_VERSION
            except FormatError:
                self.needs_upgrade = True
        self._fh: BinaryIO = open(path, "ab")
        if fresh:
            write_header(self._fh, version=WAL_VERSION)
            self._flush()

    def _flush(self) -> None:
        if self._fh.closed:
            return  # idempotent close/flush: nothing left to sync
        self._fh.flush()
        if self._sync == "fsync":
            os.fsync(self._fh.fileno())
            if self._metrics is not None:
                self._metrics.counter("wal.fsyncs").inc()

    def _append(self, record: WalRecord) -> None:
        faults.fault_write(
            self._fh, encode_frame(record, self.epoch), "wal.append"
        )
        if self._sync != "none":
            self._flush()
        faults.crashpoint("wal.appended")

    def append(self, record: WalRecord) -> None:
        if self._metrics is None:
            self._append(record)
            return
        with self._metrics.timer("wal.append").time():
            self._append(record)
        self._metrics.counter("wal.appends").inc()

    def append_many(self, records: list[WalRecord]) -> None:
        """Append a batch of records with ONE write and one flush/fsync.

        This is the group-commit primitive: the frames are
        concatenated and handed to the OS as a single write, so the
        whole batch costs the same durable-media round trip as a
        single record.  Frames are still individually CRC-guarded, so
        a crash mid-batch recovers the longest valid prefix — exactly
        the acknowledgment contract of
        :class:`repro.storage.groupcommit.GroupCommitLog`.
        """
        if not records:
            return
        payload = b"".join(
            encode_frame(record, self.epoch) for record in records
        )
        timer = (
            self._metrics.timer("wal.append").time()
            if self._metrics is not None
            else None
        )
        if timer is not None:
            timer.__enter__()
        try:
            faults.fault_write(self._fh, payload, "wal.append")
            if self._sync != "none":
                self._flush()
            faults.crashpoint("wal.appended")
        finally:
            if timer is not None:
                # Forward the real exception triple (mirrors the
                # ReadView.__exit__ fix): a crashed write must not be
                # recorded as a successful append timing.
                timer.__exit__(*sys.exc_info())
        if self._metrics is not None:
            self._metrics.counter("wal.appends").inc(len(records))

    def truncate(self, epoch: int | None = None) -> None:
        """Reset the log after a checkpoint.

        The fresh header honors the configured sync level (an unsynced
        empty header after a crash would replay as "no log at all",
        which is safe, but the file must never look like the *old* log).
        """
        self._flush()
        try:
            final_size = os.path.getsize(self.path)
        except OSError:  # pragma: no cover - fresh file races only
            final_size = WAL_HEADER_SIZE
        self.last_truncate = (self.epoch, final_size)
        if epoch is not None:
            self.epoch = epoch
        self._fh.close()
        self._fh = open(self.path, "wb")
        write_header(self._fh, version=WAL_VERSION)
        self._flush()
        self._fh.close()
        self._fh = open(self.path, "ab")
        self.needs_upgrade = False
        faults.crashpoint("wal.truncated")
        if self._metrics is not None:
            self._metrics.counter("wal.truncates").inc()

    def position(self) -> int:
        """Byte offset of the current end of the visible log.

        This is the cursor a log shipper resumes from: everything
        before it is complete, flushed frames (when ``sync`` is not
        ``"none"``, in which case buffered bytes may still be pending —
        shipping then lags the buffer, never races it).
        """
        try:
            return os.path.getsize(self.path)
        except OSError:  # pragma: no cover - log removed underneath us
            return WAL_HEADER_SIZE

    def close(self) -> None:
        """Flush and release the handle.  Idempotent: a second close
        (e.g. the drain path after a failed checkpoint already closed
        the log) is a no-op instead of ``ValueError: I/O operation on
        closed file``."""
        if self._fh.closed:
            return
        self._flush()
        self._fh.close()


def _replay_framed(payload: bytes, stats: ReplayStats) -> Iterator[WalRecord]:
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + _FRAME.size > size:
            stats.torn_tail += 1
            return
        length, crc = _FRAME.unpack_from(payload, offset)
        body = payload[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(body) < length:
            stats.torn_tail += 1
            return
        if zlib.crc32(body) != crc:
            stats.rejected_crc += 1
            return  # everything after a corrupt frame is unreliable
        try:
            epoch, body_offset = decode_varint(body, 0)
            record, body_offset = decode_record(body, body_offset)
            if body_offset != length:
                raise FormatError("trailing bytes in WAL frame")
        except (FormatError, IndexError):
            # The checksum matched but the body is undecodable: treat
            # as corruption, not as a clean end of log.
            stats.rejected_crc += 1
            return
        stats.records += 1
        yield replace(record, epoch=epoch)
        offset += _FRAME.size + length


def _replay_legacy(payload: bytes, stats: ReplayStats) -> Iterator[WalRecord]:
    offset = 0
    while offset < len(payload):
        try:
            record, offset = decode_record(payload, offset)
        except (FormatError, IndexError):
            stats.torn_tail += 1
            return  # torn final record from a crash mid-append
        stats.records += 1
        yield record


def _frame_boundary(payload: bytes) -> int:
    """Length of the longest prefix of ``payload`` made of complete
    frames (by length prefix; CRCs are the receiver's job)."""
    offset = 0
    size = len(payload)
    while offset + _FRAME.size <= size:
        length, _crc = _FRAME.unpack_from(payload, offset)
        if offset + _FRAME.size + length > size:
            break
        offset += _FRAME.size + length
    return offset


def tail_frames(path: str, offset: int,
                max_bytes: int = 1 << 22) -> tuple[bytes, int]:
    """Read complete frames from a live version-2 log for shipping.

    Returns ``(blob, next_offset)`` where ``blob`` holds zero or more
    whole frames starting at ``offset`` and ``next_offset`` is where
    the next call should resume.  A concurrent append can leave a
    half-visible frame at the end of the file; it is trimmed here so a
    shipped blob always decodes cleanly — the torn bytes are re-read
    once the writer finishes them.  Offsets are only meaningful against
    one log incarnation (checkpoint epoch); :class:`WriteAheadLog`
    truncation invalidates them, which the shipper detects via the
    epoch carried alongside (see ``repro.repl``).
    """
    if offset < WAL_HEADER_SIZE:
        offset = WAL_HEADER_SIZE
    with open(path, "rb") as fh:
        fh.seek(offset)
        chunk = fh.read(max_bytes)
    consumed = _frame_boundary(chunk)
    return chunk[:consumed], offset + consumed


def decode_frames(blob: bytes) -> list[WalRecord]:
    """Decode a shipped blob of complete frames into records.

    Unlike local replay, a torn or CRC-rejected frame here means the
    transport delivered damaged data — that is an error, not a clean
    end of log, so it raises :class:`FormatError` instead of silently
    truncating the batch.
    """
    stats = ReplayStats()
    records = list(_replay_framed(blob, stats))
    if stats.torn_tail or stats.rejected_crc:
        raise FormatError(
            "damaged replication frame "
            f"(torn={stats.torn_tail} crc={stats.rejected_crc})"
        )
    return records


def replay_records(path: str,
                   stats: ReplayStats | None = None) -> Iterator[WalRecord]:
    """Read back all complete records; a torn or corrupt tail stops the
    scan (and is counted in ``stats`` when given).  Handles both framed
    version-2 logs and legacy version-1 logs."""
    if stats is None:
        stats = ReplayStats()
    if not os.path.exists(path):
        return
    with open(path, "rb") as fh:
        try:
            version = read_header(fh)
        except FormatError:
            return  # empty/garbage log: nothing to replay
        payload = faults.filter_read(fh.read(), "wal.replay")
    stats.format_version = version
    if version == WAL_VERSION:
        yield from _replay_framed(payload, stats)
    else:
        yield from _replay_legacy(payload, stats)
