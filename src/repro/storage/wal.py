"""Write-ahead log for the persistent database facade.

Checkpoints (full :func:`~repro.storage.persist.save_manager` snapshots)
are expensive; the WAL makes individual updates durable between them.
Each record describes one logical update; recovery replays the log over
the last snapshot through the ordinary maintenance path, which is
deterministic (node-id allocation is a plain counter restored by the
snapshot, so replayed structural updates re-create identical nids).

Wire format (version 2, framed): the file carries the standard
``RXDB`` header with version 2, then a sequence of frames::

    u32 body length | u32 CRC32(body) | body

where the body is a varint **checkpoint epoch** followed by the record
payload — ``u8`` record type, then type-specific fields (varint
integers and varint-length-prefixed UTF-8 strings).  The length prefix
and checksum mean a torn or bit-flipped tail can never decode as a
valid shorter record; the epoch lets recovery skip records that a
committed snapshot already folded in (see ``docs/durability.md``).

Version-1 files (no frames, no epochs) still replay; their records
report epoch 0, which every snapshot epoch guard treats as
"not yet folded".
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, replace
from typing import BinaryIO, Iterator

from . import faults
from .format import (
    FormatError,
    decode_varint,
    encode_varint,
    read_header,
    write_header,
)

__all__ = [
    "WalRecord",
    "ReplayStats",
    "TEXT_UPDATE",
    "INSERT_XML",
    "DELETE_SUBTREE",
    "INSERT_ATTRIBUTE",
    "DELETE_ATTRIBUTE",
    "RENAME",
    "WAL_VERSION",
    "WriteAheadLog",
    "replay_records",
]

TEXT_UPDATE = 1
INSERT_XML = 2
DELETE_SUBTREE = 3
INSERT_ATTRIBUTE = 4
RENAME = 5
DELETE_ATTRIBUTE = 6

_KNOWN_TYPES = {
    TEXT_UPDATE,
    INSERT_XML,
    DELETE_SUBTREE,
    INSERT_ATTRIBUTE,
    RENAME,
    DELETE_ATTRIBUTE,
}

#: Header version marking a CRC-framed log body.
WAL_VERSION = 2

_FRAME = struct.Struct("<II")


@dataclass(frozen=True)
class WalRecord:
    """One logged update.  Field use varies by ``kind``:

    * TEXT_UPDATE:      nid, text
    * INSERT_XML:       nid (parent), text (fragment), extra (before_nid + 1, 0 = none)
    * DELETE_SUBTREE:   nid
    * INSERT_ATTRIBUTE: nid (owner), name, text (value)
    * RENAME:           nid, name
    * DELETE_ATTRIBUTE: nid (replay re-checks the attribute node kind;
      logs from before this record kind carry DELETE_SUBTREE instead and
      still replay)

    ``epoch`` is the checkpoint epoch the record was appended under
    (0 for records read back from a version-1 log).
    """

    kind: int
    nid: int
    text: str = ""
    name: str = ""
    extra: int = 0
    epoch: int = 0


@dataclass
class ReplayStats:
    """What :func:`replay_records` saw while scanning a log."""

    records: int = 0
    torn_tail: int = 0
    rejected_crc: int = 0
    format_version: int = WAL_VERSION


def _encode_string(value: str) -> bytes:
    data = value.encode("utf-8")
    return encode_varint(len(data)) + data


def _decode_string(payload: bytes, offset: int) -> tuple[str, int]:
    length, offset = decode_varint(payload, offset)
    end = offset + length
    if end > len(payload):
        raise FormatError("truncated string")
    return payload[offset:end].decode("utf-8"), end


def encode_record(record: WalRecord) -> bytes:
    out = bytearray([record.kind])
    out += encode_varint(record.nid)
    out += _encode_string(record.text)
    out += _encode_string(record.name)
    out += encode_varint(record.extra)
    return bytes(out)


def decode_record(payload: bytes, offset: int) -> tuple[WalRecord, int]:
    kind = payload[offset]
    if kind not in _KNOWN_TYPES:
        raise FormatError(f"unknown WAL record type {kind}")
    offset += 1
    nid, offset = decode_varint(payload, offset)
    text, offset = _decode_string(payload, offset)
    name, offset = _decode_string(payload, offset)
    extra, offset = decode_varint(payload, offset)
    return WalRecord(kind, nid, text, name, extra), offset


def encode_frame(record: WalRecord, epoch: int) -> bytes:
    """Frame a record for a version-2 log."""
    body = encode_varint(epoch) + encode_record(record)
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


class WriteAheadLog:
    """Append-only log file.

    Args:
        path: Log file path (created framed when absent).
        sync: ``"none"`` (buffered), ``"flush"`` (flush per append) or
            ``"fsync"`` (flush + fsync per append).
        metrics: Optional :class:`repro.obs.MetricsRegistry`; appends
            and truncations are counted and append latency is timed.
        epoch: Checkpoint epoch stamped on appended records; updated by
            :meth:`truncate` after each checkpoint.

    ``needs_upgrade`` is true when the file on disk predates the framed
    format (or has an unreadable header); the owner should
    :meth:`truncate` after replaying it so new writes are framed.
    """

    def __init__(self, path: str, sync: str = "flush", metrics=None,
                 epoch: int = 0):
        if sync not in ("none", "flush", "fsync"):
            raise ValueError("sync must be 'none', 'flush' or 'fsync'")
        self.path = path
        self._sync = sync
        self._metrics = metrics
        self.epoch = epoch
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self.needs_upgrade = False
        if not fresh:
            try:
                with open(path, "rb") as fh:
                    self.needs_upgrade = read_header(fh) != WAL_VERSION
            except FormatError:
                self.needs_upgrade = True
        self._fh: BinaryIO = open(path, "ab")
        if fresh:
            write_header(self._fh, version=WAL_VERSION)
            self._flush()

    def _flush(self) -> None:
        self._fh.flush()
        if self._sync == "fsync":
            os.fsync(self._fh.fileno())
            if self._metrics is not None:
                self._metrics.counter("wal.fsyncs").inc()

    def _append(self, record: WalRecord) -> None:
        faults.fault_write(
            self._fh, encode_frame(record, self.epoch), "wal.append"
        )
        if self._sync != "none":
            self._flush()
        faults.crashpoint("wal.appended")

    def append(self, record: WalRecord) -> None:
        if self._metrics is None:
            self._append(record)
            return
        with self._metrics.timer("wal.append").time():
            self._append(record)
        self._metrics.counter("wal.appends").inc()

    def append_many(self, records: list[WalRecord]) -> None:
        """Append a batch of records with ONE write and one flush/fsync.

        This is the group-commit primitive: the frames are
        concatenated and handed to the OS as a single write, so the
        whole batch costs the same durable-media round trip as a
        single record.  Frames are still individually CRC-guarded, so
        a crash mid-batch recovers the longest valid prefix — exactly
        the acknowledgment contract of
        :class:`repro.storage.groupcommit.GroupCommitLog`.
        """
        if not records:
            return
        payload = b"".join(
            encode_frame(record, self.epoch) for record in records
        )
        timer = (
            self._metrics.timer("wal.append").time()
            if self._metrics is not None
            else None
        )
        if timer is not None:
            timer.__enter__()
        try:
            faults.fault_write(self._fh, payload, "wal.append")
            if self._sync != "none":
                self._flush()
            faults.crashpoint("wal.appended")
        finally:
            if timer is not None:
                timer.__exit__(None, None, None)
        if self._metrics is not None:
            self._metrics.counter("wal.appends").inc(len(records))

    def truncate(self, epoch: int | None = None) -> None:
        """Reset the log after a checkpoint.

        The fresh header honors the configured sync level (an unsynced
        empty header after a crash would replay as "no log at all",
        which is safe, but the file must never look like the *old* log).
        """
        if epoch is not None:
            self.epoch = epoch
        self._fh.close()
        self._fh = open(self.path, "wb")
        write_header(self._fh, version=WAL_VERSION)
        self._flush()
        self._fh.close()
        self._fh = open(self.path, "ab")
        self.needs_upgrade = False
        faults.crashpoint("wal.truncated")
        if self._metrics is not None:
            self._metrics.counter("wal.truncates").inc()

    def close(self) -> None:
        self._flush()
        self._fh.close()


def _replay_framed(payload: bytes, stats: ReplayStats) -> Iterator[WalRecord]:
    offset = 0
    size = len(payload)
    while offset < size:
        if offset + _FRAME.size > size:
            stats.torn_tail += 1
            return
        length, crc = _FRAME.unpack_from(payload, offset)
        body = payload[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(body) < length:
            stats.torn_tail += 1
            return
        if zlib.crc32(body) != crc:
            stats.rejected_crc += 1
            return  # everything after a corrupt frame is unreliable
        try:
            epoch, body_offset = decode_varint(body, 0)
            record, body_offset = decode_record(body, body_offset)
            if body_offset != length:
                raise FormatError("trailing bytes in WAL frame")
        except (FormatError, IndexError):
            # The checksum matched but the body is undecodable: treat
            # as corruption, not as a clean end of log.
            stats.rejected_crc += 1
            return
        stats.records += 1
        yield replace(record, epoch=epoch)
        offset += _FRAME.size + length


def _replay_legacy(payload: bytes, stats: ReplayStats) -> Iterator[WalRecord]:
    offset = 0
    while offset < len(payload):
        try:
            record, offset = decode_record(payload, offset)
        except (FormatError, IndexError):
            stats.torn_tail += 1
            return  # torn final record from a crash mid-append
        stats.records += 1
        yield record


def replay_records(path: str,
                   stats: ReplayStats | None = None) -> Iterator[WalRecord]:
    """Read back all complete records; a torn or corrupt tail stops the
    scan (and is counted in ``stats`` when given).  Handles both framed
    version-2 logs and legacy version-1 logs."""
    if stats is None:
        stats = ReplayStats()
    if not os.path.exists(path):
        return
    with open(path, "rb") as fh:
        try:
            version = read_header(fh)
        except FormatError:
            return  # empty/garbage log: nothing to replay
        payload = faults.filter_read(fh.read(), "wal.replay")
    stats.format_version = version
    if version == WAL_VERSION:
        yield from _replay_framed(payload, stats)
    else:
        yield from _replay_legacy(payload, stats)
